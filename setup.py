"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that the package can be installed in environments without the
``wheel`` package (offline editable installs fall back to
``setup.py develop``).
"""

from setuptools import setup

setup()
