"""Unit tests for the lint framework: sources, config, driver, rendering."""

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    Finding,
    LintConfig,
    ModuleSource,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    load_config,
    run_lint,
)
from repro.analysis.framework import (
    PARSE_ERROR_RULE,
    _module_name,
    _parse_suppressions,
    attribute_chain,
    parse_modules,
    register,
)


class TestSuppressions:
    def test_bare_ignore_silences_every_rule(self):
        sup = _parse_suppressions("x = 1  # lint: ignore\n")
        assert sup == {1: None}

    def test_bracketed_ignore_lists_rule_ids(self):
        sup = _parse_suppressions("x = 1  # lint: ignore[CHR001, CHR002] reason\n")
        assert sup == {1: frozenset({"CHR001", "CHR002"})}

    def test_unrelated_comments_are_not_suppressions(self):
        assert _parse_suppressions("x = 1  # lint is great\n") == {}

    def test_is_suppressed(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "a = 1  # lint: ignore[CHR003]\n"
            "b = 2  # lint: ignore\n"
            "c = 3\n"
        )
        module = ModuleSource.parse(path)
        assert module.is_suppressed("CHR003", 1)
        assert not module.is_suppressed("CHR002", 1)
        assert module.is_suppressed("CHR002", 2)  # bare ignore covers all
        assert not module.is_suppressed("CHR003", 3)


class TestModuleNames:
    def test_package_layout_yields_dotted_name(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        target = tmp_path / "pkg" / "sub" / "mod.py"
        target.write_text("x = 1\n")
        assert _module_name(target) == "pkg.sub.mod"
        assert _module_name(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"

    def test_loose_file_maps_to_stem(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("x = 1\n")
        assert _module_name(target) == "loose"


class TestFinding:
    def _finding(self):
        return Finding(
            rule_id="CHR999",
            path="src/x.py",
            line=7,
            col=4,
            message="something drifted",
            hint="fix it like so",
        )

    def test_format_includes_location_rule_and_hint(self):
        text = self._finding().format()
        assert "src/x.py:7:4" in text
        assert "CHR999" in text
        assert "fix it like so" in text
        assert "fix it like so" not in self._finding().format(show_hint=False)

    def test_to_json_shape(self):
        doc = self._finding().to_json()
        assert doc == {
            "rule": "CHR999",
            "path": "src/x.py",
            "line": 7,
            "col": 4,
            "message": "something drifted",
            "hint": "fix it like so",
        }

    def test_sort_key_orders_by_path_then_line(self):
        first = Finding(rule_id="CHR002", path="a.py", line=3, message="m")
        second = Finding(rule_id="CHR001", path="a.py", line=9, message="m")
        third = Finding(rule_id="CHR001", path="b.py", line=1, message="m")
        assert sorted([third, second, first], key=Finding.sort_key) == [
            first,
            second,
            third,
        ]


class TestRegistry:
    def test_all_rules_contains_the_six_shipped_rules(self):
        ids = set(all_rules())
        assert {"CHR001", "CHR002", "CHR003", "CHR004", "CHR005", "CHR006"} <= ids

    def test_get_rule_unknown_id_raises(self):
        with pytest.raises(KeyError, match="CHR942"):
            get_rule("CHR942")

    def test_register_rejects_duplicate_ids(self):
        class Imposter(Rule):
            rule_id = "CHR001"

        with pytest.raises(ValueError, match="duplicate"):
            register(Imposter)

    def test_register_rejects_missing_id(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule_id"):
            register(Anonymous)


class TestConfig:
    def test_defaults_select_every_rule(self):
        selected = {rule.rule_id for rule in LintConfig().selected_rules()}
        assert selected == set(all_rules())

    def test_ignore_removes_rules(self):
        config = LintConfig(ignore=("CHR005",))
        assert "CHR005" not in {r.rule_id for r in config.selected_rules()}

    def test_unknown_enable_entry_raises(self):
        with pytest.raises(KeyError, match="CHR942"):
            LintConfig(enable=("CHR942",)).selected_rules()

    def test_exclude_is_substring_match(self):
        config = LintConfig(exclude=("tests/analysis/fixtures",))
        assert config.is_excluded("tests/analysis/fixtures/chr001_violation.py")
        assert not config.is_excluded("src/repro/errors.py")

    def test_load_config_reads_pyproject_when_tomllib_available(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.charles-lint]
                ignore = ["CHR006"]
                exclude = ["somewhere/else"]

                [tool.charles-lint.rules.CHR001]
                forbidden_names = ["Nope"]
                """
            )
        )
        config = load_config(tmp_path)
        try:
            import tomllib  # noqa: F401
        except ImportError:
            # Python 3.10: no parser, defaults by design (pyproject restates them).
            assert config == LintConfig()
        else:
            assert config.ignore == ("CHR006",)
            assert config.exclude == ("somewhere/else",)
            assert config.rule_options["CHR001"] == {"forbidden_names": ["Nope"]}

    def test_load_config_without_pyproject_returns_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()


class TestDriver:
    def test_syntax_error_becomes_chr000_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n")
        modules, errors = parse_modules([bad])
        assert modules == {}
        assert [f.rule_id for f in errors] == [PARSE_ERROR_RULE]
        assert errors[0].line == 1

    def test_lint_paths_filters_suppressed_findings(self, tmp_path):
        target = tmp_path / "tallies.py"
        target.write_text(
            "def f(counter):\n"
            "    counter.evaluations += 1\n"
            "    counter.cache_hits += 1  # lint: ignore[CHR003]\n"
        )
        findings = lint_paths([target], rules=[get_rule("CHR003")()])
        assert [f.line for f in findings] == [2]

    def test_lint_paths_respects_exclude(self, tmp_path):
        target = tmp_path / "skipme" / "tallies.py"
        target.parent.mkdir()
        target.write_text("def f(counter):\n    counter.evaluations += 1\n")
        config = LintConfig(exclude=("skipme",))
        assert lint_paths([tmp_path], config, rules=[get_rule("CHR003")()]) == []

    def test_attribute_chain(self):
        import ast

        expr = ast.parse("self._entries[key].inner", mode="eval").body
        assert attribute_chain(expr) == ("self", "_entries", "inner")
        assert attribute_chain(ast.parse("f().x", mode="eval").body) is None


class TestRunLint:
    def test_exit_zero_on_clean_tree(self, tmp_path):
        (tmp_path / "fine.py").write_text("x = 1\n")
        code, report = run_lint([str(tmp_path)])
        assert code == 0
        assert "0 findings" in report

    def test_exit_one_with_findings_and_json_shape(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "def f(counter):\n    counter.evaluations += 1\n"
        )
        code, report = run_lint([str(tmp_path)], as_json=True)
        assert code == 1
        document = json.loads(report)
        assert document["version"] == 1
        assert document["files"] == 1
        assert [f["rule"] for f in document["findings"]] == ["CHR003"]

    def test_exit_two_on_unknown_rule(self, tmp_path):
        code, report = run_lint([str(tmp_path)], rules=["CHR942"])
        assert code == 2
        assert "unknown rule" in report

    def test_rules_narrows_the_run(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "def f(counter, cache, key):\n"
            "    counter.evaluations += 1\n"
            "    return cache.get(key)\n"
        )
        code, report = run_lint([str(tmp_path)], rules=["CHR004"])
        assert code == 1
        assert "CHR004" in report and "CHR003" not in report
