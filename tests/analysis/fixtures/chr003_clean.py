"""CHR003 true negatives: add()/merge() and unrelated augmented assignment."""


def tally(counter, other, trace):
    counter.add(count_calls=1, cache_hits=2)
    counter.merge(other)
    trace.pair_cache_rounds += 1  # not a counter tally, not a counter receiver
    total = 0
    total += 1
    return total
