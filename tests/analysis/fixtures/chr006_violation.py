"""CHR006 true positives: unordered iteration in a codec dump path."""


def encode_set(values: frozenset) -> dict:
    return {"$set": [v for v in values if v]} | {  # not flagged: bare name
        "$also": [str(v) for v in set(values)]  # line 6: bare set(...) call
    }


def dump_keys(mapping: dict) -> list:
    out = []
    for key in mapping.keys():  # line 12: bare dict.keys()
        out.append(key)
    for tag in {"b", "a"}:  # line 14: set literal
        out.append(tag)
    return out
