"""CHR001 true positive: concrete engine imports outside the allowed layers."""

from repro.storage.engine import QueryEngine  # line 3: forbidden class import
import repro.backends.sqlite  # line 4: forbidden module import


def build(table):
    return QueryEngine(table), repro.backends.sqlite
