"""CHR005 fixture (drifted): the declared ``trace`` extension is only
half-carried — Request has no slot and never emits it, Response decodes
envelopes without ever reading it back."""

ENVELOPE_EXTENSIONS = ("trace",)


class Request:
    __slots__ = ("op",)  # no trace slot

    def __init__(self, op):
        self.op = op

    def to_wire(self):
        return {"op": self.op}  # never emits the extension

    @classmethod
    def from_wire(cls, payload):
        payload.get("trace")  # read but discarded; the mention satisfies
        return cls(payload["op"])


class Response:
    __slots__ = ("ok", "trace")

    def __init__(self, ok, trace=None):
        self.ok = ok
        self.trace = trace

    def to_wire(self):
        payload = {"ok": self.ok}
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_wire(cls, payload):
        return cls(payload["ok"])  # drops the extension on decode
