"""CHR005 fixture: client calls an unknown op and never reaches 'orphan'."""


class Client:
    def call(self, op, **params):
        return {"op": op, "params": params}

    def advise(self, question):
        return self.call("advise", question=question)

    def drill(self, dimension):
        return self.call("explore", dimension=dimension)  # via alias

    def stats(self):
        return self.call("stats")

    def bogus(self):
        return self.call("vanish")  # not in the op table
