"""CHR005 fixture: error hierarchy with a missing and a re-used wire code."""


class WireError(Exception):
    code = "wire.error"


class TimeoutError_(WireError):
    code = "wire.timeout"


class MissingCodeError(WireError):
    """Declares no code of its own: envelopes would report the parent's."""


class UsesTakenCodeError(WireError):
    code = "wire.timeout"  # already owned by TimeoutError_
