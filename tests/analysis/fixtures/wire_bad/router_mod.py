"""CHR005 fixture: routing sets that drift from the op table every way.

``teleport`` is not an operation, ``advise`` is routed twice, ``explore``
is an alias (the router sees canonical names only), and ``drill`` /
``orphan`` are operations no set classifies.
"""

SESSION_OPS = frozenset({"advise", "teleport"})
TABLE_OPS = frozenset({"advise", "explore"})
FANOUT_OPS = frozenset({"stats"})
