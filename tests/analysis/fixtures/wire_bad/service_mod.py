"""CHR005 fixture: service handlers out of step with the op table."""


class Service:
    def _op_advise(self, payload):
        return {"answer": payload["question"]}

    def _op_drill(self, payload):
        return {"dimension": payload["dimension"]}

    def _op_stats(self, payload):
        return {}

    def _op_legacy(self, payload):  # no OPERATIONS entry
        return {}
