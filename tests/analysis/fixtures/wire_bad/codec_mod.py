"""CHR005 fixture: asymmetric codec tables.

Defects: ``_encode_blob`` emits no ``$type`` tag; tag ``mark`` encodes but
never decodes; tag ``point`` decodes but nothing encodes it.
"""


def _encode_span(value):
    return {"$type": "span", "lo": value.lo, "hi": value.hi}


def _encode_blob(value):
    return {"bytes": list(value)}


def _encode_mark(value):
    return {"$type": "mark", "at": value.at}


def _decode_span(payload):
    return (payload["lo"], payload["hi"])


def _decode_point(payload):
    return payload["at"]


_OBJECT_ENCODERS = {
    "Span": _encode_span,
    "Blob": _encode_blob,
    "Mark": _encode_mark,
}

_OBJECT_DECODERS = {
    "span": _decode_span,
    "point": _decode_point,
}
