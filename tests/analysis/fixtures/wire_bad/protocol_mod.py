"""CHR005 fixture: op table with a handler-less op and broken aliases."""

OPERATIONS = {
    "advise": {"params": ("question",)},
    "drill": {"params": ("dimension",)},
    "stats": {"params": ()},
    "orphan": {"params": ()},  # no handler and no client caller
}

OPERATION_ALIASES = {
    "explore": "drill",
    "inspect": "missing_op",  # targets an op that does not exist
    "drill": "advise",  # shadows a canonical operation name
}
