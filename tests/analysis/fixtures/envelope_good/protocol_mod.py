"""CHR005 fixture (clean): the declared envelope extension rides both
envelope classes — slot, ``to_wire`` and ``from_wire`` all carry it."""

ENVELOPE_EXTENSIONS = ("trace",)


class Request:
    __slots__ = ("op", "trace")

    def __init__(self, op, trace=None):
        self.op = op
        self.trace = trace

    def to_wire(self):
        payload = {"op": self.op}
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_wire(cls, payload):
        return cls(payload["op"], trace=payload.get("trace"))


class Response:
    __slots__ = ("ok", "trace")

    def __init__(self, ok, trace=None):
        self.ok = ok
        self.trace = trace

    def to_wire(self):
        payload = {"ok": self.ok}
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_wire(cls, payload):
        return cls(payload["ok"], trace=payload.get("trace"))
