"""CHR006 true negatives: every unordered source goes through sorted()."""


def encode_set(values: frozenset) -> dict:
    return {"$set": [v for v in sorted(values, key=str)]}


def dump_keys(mapping: dict) -> list:
    out = []
    for key in sorted(mapping.keys()):
        out.append(key)
    for key, value in mapping.items():  # insertion-ordered: fine
        out.append((key, value))
    return out
