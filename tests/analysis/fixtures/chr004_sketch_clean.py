"""CHR004 true negatives on sketch receivers.

Version-keyed sketch-cache traffic, plain-dict sketch memos and
unrelated receiver names must all pass.
"""

from typing import Any, Dict


class Engine:
    def summary(self, key, build, version):
        hit = self._sketches.get(key, version)  # version positional
        self._sketches.put(key, build(), version=version)
        return hit or self._sketches.get_or_compute(
            key, build, version=version
        )

    def memo(self, sketches: Dict[str, Any], key, build):
        # A plain dict of sketches is a memo, not a ResultCache.
        found = sketches.get(key)
        return found if found is not None else build()

    def unrelated(self, sketchpad, key):
        # Receiver names not matching the patterns are out of scope.
        return sketchpad.get(key)
