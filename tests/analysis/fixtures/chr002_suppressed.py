"""CHR002 suppression honoured: a deliberate atomic reference swap."""

import threading


class AtomicSwap:
    def __init__(self):
        self._lock = threading.Lock()
        self._state = ()

    def publish(self, state):
        self._state = tuple(state)  # lint: ignore[CHR002] atomic reference swap
