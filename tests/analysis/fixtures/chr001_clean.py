"""CHR001 true negative: programs against the backend protocol only."""

from repro.backends.base import ExecutionBackend
from repro.backends.registry import open_backend


def build(spec: str) -> ExecutionBackend:
    return open_backend(spec)
