"""CHR004 true positives on sketch receivers: version-less sketch-cache traffic."""


class Engine:
    def summary(self, sketches, key, build):
        merged = self._sketches.get(key)  # line 6
        self._sketches.put(key, build())  # line 7
        return merged or sketches.get_or_compute(key, build)  # line 8
