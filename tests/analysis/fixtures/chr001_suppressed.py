"""CHR001 suppression honoured: an acknowledged concrete-engine import."""

from repro.storage.engine import QueryEngine  # lint: ignore[CHR001] fixture exercises the escape hatch

__all__ = ["QueryEngine"]
