"""CHR004 true positives: version-less ResultCache traffic."""


def lookup(cache, advice_cache, key, value):
    hit = cache.get(key)  # line 5
    advice_cache.put(key, value)  # line 6
    return hit or cache.get_or_compute(key, lambda: value)  # line 7
