"""CHR004 true negatives: versioned calls, positional versions, plain dicts."""

from typing import Any, Dict, Optional


def lookup(cache, key: str, value: Any, version: int) -> Any:
    cache.put(key, value, version=version)
    cache.put(key, value, version)  # version passed positionally
    if cache.peek(key, version=None) is None:  # static table, explicit None
        return cache.get_or_compute(key, lambda: value, version=version)
    return cache.get(key, version=version)


def memoise(cache: Dict[str, Any], key: str) -> Optional[Any]:
    # A plain dict annotated as such is not a ResultCache: exempt.
    return cache.get(key)


def forward(cache, key, **options):
    return cache.get(key, **options)  # **kwargs may carry version: exempt
