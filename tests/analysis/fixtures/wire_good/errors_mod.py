"""CHR005 fixture (clean): every error owns a unique wire code."""


class WireError(Exception):
    code = "wire.error"


class TimeoutError_(WireError):
    code = "wire.timeout"


class BusyError(TimeoutError_):
    code = "wire.busy"
