"""CHR005 fixture (clean): routing sets partition the op table exactly."""

SESSION_OPS = frozenset({"advise", "drill"})
FANOUT_OPS = frozenset({"stats"})
