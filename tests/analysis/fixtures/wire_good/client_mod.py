"""CHR005 fixture (clean): the client reaches every op (one via alias)."""


class Client:
    def call(self, op, **params):
        return {"op": op, "params": params}

    def advise(self, question):
        return self.call("advise", question=question)

    def drill(self, dimension):
        return self.call("explore", dimension=dimension)  # alias for drill

    def stats(self):
        return self.call("stats")
