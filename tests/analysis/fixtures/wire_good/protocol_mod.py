"""CHR005 fixture (clean): op table and aliases are consistent."""

OPERATIONS = {
    "advise": {"params": ("question",)},
    "drill": {"params": ("dimension",)},
    "stats": {"params": ()},
}

OPERATION_ALIASES = {
    "explore": "drill",
}
