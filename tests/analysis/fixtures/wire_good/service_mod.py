"""CHR005 fixture (clean): one handler per table entry, no strays."""


class Service:
    def _op_advise(self, payload):
        return {"answer": payload["question"]}

    def _op_drill(self, payload):
        return {"dimension": payload["dimension"]}

    def _op_stats(self, payload):
        return {}
