"""CHR005 fixture (clean): encoder and decoder tables are symmetric."""


def _encode_span(value):
    return {"$type": "span", "lo": value.lo, "hi": value.hi}


def _encode_mark(value):
    return {"$type": "mark", "at": value.at}


def _decode_span(payload):
    return (payload["lo"], payload["hi"])


def _decode_mark(payload):
    return payload["at"]


_OBJECT_ENCODERS = {
    "Span": _encode_span,
    "Mark": _encode_mark,
}

_OBJECT_DECODERS = {
    "span": _decode_span,
    "mark": _decode_mark,
}
