"""CHR002 true positives: unlocked mutations in a lock-owning class."""

import threading


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._entries = {}

    def record(self):
        self._hits += 1  # line 13: augmented assignment outside the lock

    def stash(self, key, value):
        self._entries[key] = value  # line 16: subscript store outside the lock

    def evict(self, key):
        self._entries.pop(key, None)  # line 19: mutator call outside the lock

    def closure(self):
        with self._lock:
            def later():
                self._hits = 0  # line 24: nested def may outlive the lock
            return later
