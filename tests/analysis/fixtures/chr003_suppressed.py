"""CHR003 suppression honoured."""


def tally(counter):
    counter.evaluations += 1  # lint: ignore[CHR003] single-threaded bench harness
