"""CHR004 suppression honoured."""


def lookup(cache, key):
    return cache.get(key)  # lint: ignore[CHR004] table is immutable here
