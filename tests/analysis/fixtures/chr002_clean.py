"""CHR002 true negatives: guarded mutations, _locked helpers, lock-free classes."""

import threading


class Disciplined:
    def __init__(self):
        self._lock = threading.RLock()
        self._hits = 0
        self._entries = {}

    def record(self):
        with self._lock:
            self._hits += 1
            self._drop_locked("stale")

    def _drop_locked(self, key):
        self._entries.pop(key, None)  # contract: caller holds the lock

    def snapshot(self):
        with self._lock:
            return dict(self._entries)


class Unsynchronised:
    """No lock owned: plain mutation is fine (single-threaded by design)."""

    def __init__(self):
        self._hits = 0

    def record(self):
        self._hits += 1
