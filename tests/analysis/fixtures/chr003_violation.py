"""CHR003 true positives: bare += on counter tallies."""


def tally(counter, engine):
    counter.count_calls += 1  # line 5: named tally field
    engine.counter.whatever += 2  # line 6: receiver named counter
