"""Meta-tests: the shipped tree itself satisfies charles-lint.

These are the tests CI leans on: if a change reintroduces an unlocked
mutation, a bare counter ``+=`` or an unversioned cache call anywhere
under ``src/``, the suite fails with the lint report in the assertion
message — the same contract as the ``static-analysis`` CI job, but
reachable with plain pytest.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import get_rule, lint_paths, load_config
from repro.analysis.rules import CounterDisciplineRule, WireSyncRule

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
LINT = REPO_ROOT / "scripts" / "lint.py"


def run_script(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(LINT), *argv],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class TestRepoIsClean:
    def test_src_tree_has_zero_findings_in_process(self):
        findings = lint_paths([SRC], load_config(REPO_ROOT))
        report = "\n".join(f.format() for f in findings)
        assert findings == [], f"charles-lint findings in src:\n{report}"

    def test_lint_script_exits_zero_on_src(self):
        result = run_script("src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_lint_script_json_reports_zero_findings(self):
        result = run_script("src", "--json")
        assert result.returncode == 0, result.stdout + result.stderr
        document = json.loads(result.stdout)
        assert document["findings"] == []
        assert document["files"] > 0

    def test_cli_subcommand_matches_script(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "src"],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


class TestPlantedViolationsAreCaught:
    """The ISSUE's acceptance check: reintroducing a known bug class fails lint."""

    def test_unlocked_mutation_and_bare_increment_fail(self, tmp_path):
        bad = tmp_path / "regression.py"
        bad.write_text(
            "import threading\n"
            "\n"
            "\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._hits = 0\n"
            "\n"
            "    def record(self, counter):\n"
            "        self._hits += 1\n"
            "        counter.evaluations += 1\n"
        )
        result = run_script(str(bad))
        assert result.returncode == 1
        assert "CHR002" in result.stdout and f"{bad}:10" in result.stdout
        assert "CHR003" in result.stdout and f"{bad}:11" in result.stdout

    def test_versionless_cache_call_fails(self, tmp_path):
        bad = tmp_path / "regression.py"
        bad.write_text("def f(cache, key):\n    return cache.get(key)\n")
        result = run_script(str(bad))
        assert result.returncode == 1
        assert "CHR004" in result.stdout


class TestRuleDefaultsTrackTheCode:
    def test_chr003_fields_match_operation_counter(self):
        from repro.storage.engine import OperationCounter

        assert tuple(CounterDisciplineRule.DEFAULT_FIELDS) == OperationCounter._FIELDS

    def test_chr005_defaults_point_at_real_modules(self):
        import importlib

        defaults = WireSyncRule.DEFAULTS
        for key in (
            "errors_module",
            "codec_module",
            "protocol_module",
            "service_module",
            "client_module",
        ):
            module = importlib.import_module(defaults[key])
            if key == "errors_module":
                assert hasattr(module, defaults["base_error"])
            if key == "codec_module":
                assert hasattr(module, defaults["encoders_name"])
                assert hasattr(module, defaults["decoders_name"])
            if key == "protocol_module":
                assert hasattr(module, defaults["operations_name"])
                assert hasattr(module, defaults["aliases_name"])
            if key == "service_module":
                assert hasattr(module, defaults["service_class"])

    def test_pyproject_chr001_options_equal_rule_defaults(self):
        """The pyproject restates CHR001's defaults so Python 3.10 (no
        tomllib: config falls back to defaults) lints identically to 3.11+.
        This test guards the restatement against drift — but only where a
        toml parser exists to read it."""
        tomllib = pytest.importorskip("tomllib")
        from repro.analysis.rules import BackendPurityRule as R

        with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
            data = tomllib.load(handle)
        options = data["tool"]["charles-lint"]["rules"]["CHR001"]
        assert tuple(options["forbidden_modules"]) == R.DEFAULT_FORBIDDEN_MODULES
        assert tuple(options["forbidden_names"]) == R.DEFAULT_FORBIDDEN_NAMES
        assert tuple(options["allowed_packages"]) == R.DEFAULT_ALLOWED_PACKAGES
        assert tuple(options["allowed_modules"]) == R.DEFAULT_ALLOWED_MODULES


class TestStrictTypingGate:
    def test_mypy_strict_gate_passes(self):
        """Runs only where mypy is installed (the CI static-analysis job)."""
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
