"""Per-rule tests against the fixture snippets in ``fixtures/``.

Each rule gets a true-positive file (exact lines asserted), a
true-negative file (no findings) and — for the per-module rules — a
suppression file (the violation is acknowledged inline).  CHR005 runs
over the ``wire_bad``/``wire_good`` mini-projects with its module
options retargeted at the fixture stems.
"""

import pathlib

from repro.analysis import LintConfig, get_rule, lint_paths

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

#: Fixture paths contain "tests/analysis/fixtures", which the *default*
#: config excludes (so the repo lint never trips over planted bugs);
#: tests must opt back in.
INCLUDE_FIXTURES = LintConfig(exclude=())


def run_rule(rule_id, target, options=None):
    rule = get_rule(rule_id)(options)
    return lint_paths([target], INCLUDE_FIXTURES, rules=[rule])


def lines(findings):
    return [f.line for f in findings]


class TestBackendPurity:
    def test_flags_concrete_engine_imports(self):
        findings = run_rule("CHR001", FIXTURES / "chr001_violation.py")
        assert [f.rule_id for f in findings] == ["CHR001", "CHR001"]
        assert lines(findings) == [3, 4]

    def test_protocol_imports_are_clean(self):
        assert run_rule("CHR001", FIXTURES / "chr001_clean.py") == []

    def test_suppression_is_honoured(self):
        assert run_rule("CHR001", FIXTURES / "chr001_suppressed.py") == []

    def test_storage_layer_is_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "storage"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        inside = pkg / "helper.py"
        inside.write_text("from repro.storage.engine import QueryEngine\n")
        assert run_rule("CHR001", inside) == []


class TestLockDiscipline:
    def test_flags_unlocked_mutations(self):
        findings = run_rule("CHR002", FIXTURES / "chr002_violation.py")
        assert {f.rule_id for f in findings} == {"CHR002"}
        assert lines(findings) == [13, 16, 19, 24]

    def test_guarded_and_lock_free_classes_are_clean(self):
        assert run_rule("CHR002", FIXTURES / "chr002_clean.py") == []

    def test_suppression_is_honoured(self):
        assert run_rule("CHR002", FIXTURES / "chr002_suppressed.py") == []


class TestCounterDiscipline:
    def test_flags_bare_augmented_assignment(self):
        findings = run_rule("CHR003", FIXTURES / "chr003_violation.py")
        assert {f.rule_id for f in findings} == {"CHR003"}
        assert lines(findings) == [5, 6]

    def test_add_merge_and_unrelated_attrs_are_clean(self):
        assert run_rule("CHR003", FIXTURES / "chr003_clean.py") == []

    def test_suppression_is_honoured(self):
        assert run_rule("CHR003", FIXTURES / "chr003_suppressed.py") == []


class TestVersionedCache:
    def test_flags_versionless_cache_traffic(self):
        findings = run_rule("CHR004", FIXTURES / "chr004_violation.py")
        assert {f.rule_id for f in findings} == {"CHR004"}
        assert lines(findings) == [5, 6, 7]

    def test_versioned_calls_and_plain_dicts_are_clean(self):
        assert run_rule("CHR004", FIXTURES / "chr004_clean.py") == []

    def test_flags_versionless_sketch_cache_traffic(self):
        findings = run_rule("CHR004", FIXTURES / "chr004_sketch_violation.py")
        assert {f.rule_id for f in findings} == {"CHR004"}
        assert lines(findings) == [6, 7, 8]

    def test_versioned_sketch_calls_and_memos_are_clean(self):
        assert run_rule("CHR004", FIXTURES / "chr004_sketch_clean.py") == []

    def test_receivers_option_retargets_the_patterns(self):
        findings = run_rule(
            "CHR004",
            FIXTURES / "chr004_sketch_violation.py",
            options={"receivers": ["*_cache"]},
        )
        assert findings == []

    def test_suppression_is_honoured(self):
        assert run_rule("CHR004", FIXTURES / "chr004_suppressed.py") == []


class TestWireSync:
    OPTIONS = {
        "errors_module": "errors_mod",
        "base_error": "WireError",
        "codec_module": "codec_mod",
        "protocol_module": "protocol_mod",
        "service_module": "service_mod",
        "service_class": "Service",
        "client_module": "client_mod",
        "router_module": "router_mod",
    }

    def test_bad_wire_project_surfaces_every_drift(self):
        findings = run_rule("CHR005", FIXTURES / "wire_bad", self.OPTIONS)
        assert {f.rule_id for f in findings} == {"CHR005"}
        messages = "\n".join(f.message for f in findings)
        # errors: one missing code, one re-used code
        assert "'MissingCodeError' does not declare" in messages
        assert "'UsesTakenCodeError' re-uses wire code 'wire.timeout'" in messages
        # codec: tag-less encoder, one-sided tags both ways
        assert "'_encode_blob' is registered but emits no" in messages
        assert "'mark' has an encoder but no decoder" in messages
        assert "'point' has a decoder but no registered encoder" in messages
        # protocol: broken alias target, alias shadowing a canonical name
        assert "alias 'inspect' targets unknown operation 'missing_op'" in messages
        assert "alias 'drill' shadows a canonical operation name" in messages
        # service: table entry without handler, handler without table entry
        assert "no _op_orphan handler" in messages
        assert "handler _op_legacy has no entry" in messages
        # client: unknown op, op unreachable from the client
        assert "unknown operation 'vanish'" in messages
        assert "'orphan' is in the op table but no client method" in messages
        # router: unknown op, double classification, alias in a routing
        # set, and two operations no routing set classifies
        assert "routes unknown operation 'teleport'" in messages
        assert "classified by both SESSION_OPS and TABLE_OPS" in messages
        assert "routing set TABLE_OPS lists alias 'explore'" in messages
        assert "'drill' is in the op table but no routing set" in messages
        assert "'orphan' is in the op table but no routing set" in messages
        # 2 error-code + 3 codec + 2 alias + 2 service + 2 client
        # + 5 router findings
        assert len(findings) == 16

    def test_good_wire_project_is_clean(self):
        assert run_rule("CHR005", FIXTURES / "wire_good", self.OPTIONS) == []

    def test_checks_skip_when_modules_are_absent(self):
        # Linting only the clean protocol module: no service/client/errors/codec
        # in the module set, so the cross-checks stand down rather than firing
        # false "missing handler" findings on a partial run.
        findings = run_rule(
            "CHR005", FIXTURES / "wire_good" / "protocol_mod.py", self.OPTIONS
        )
        assert findings == []


class TestEnvelopeExtensions:
    OPTIONS = {"protocol_module": "protocol_mod"}

    def test_half_carried_extension_surfaces_on_each_side(self):
        findings = run_rule("CHR005", FIXTURES / "envelope_bad", self.OPTIONS)
        assert {f.rule_id for f in findings} == {"CHR005"}
        messages = "\n".join(f.message for f in findings)
        assert "Request has no 'trace' slot" in messages
        assert "Request.to_wire never names it" in messages
        assert "Response.from_wire never names it" in messages
        # missing slot + silent to_wire (Request) + silent from_wire (Response)
        assert len(findings) == 3

    def test_fully_carried_extension_is_clean(self):
        assert run_rule("CHR005", FIXTURES / "envelope_good", self.OPTIONS) == []

    def test_stands_down_without_a_declared_extension_table(self):
        # The wire_good protocol declares no ENVELOPE_EXTENSIONS at all —
        # older protocol layouts must not be forced to grow one.
        findings = run_rule(
            "CHR005",
            FIXTURES / "wire_good" / "protocol_mod.py",
            self.OPTIONS,
        )
        assert findings == []


class TestCodecDeterminism:
    OPTIONS = {"module": "chr006_violation"}

    def test_flags_unordered_iteration_in_codec(self):
        findings = run_rule("CHR006", FIXTURES / "chr006_violation.py", self.OPTIONS)
        assert {f.rule_id for f in findings} == {"CHR006"}
        assert lines(findings) == [6, 12, 14]

    def test_sorted_iteration_is_clean(self):
        findings = run_rule(
            "CHR006", FIXTURES / "chr006_clean.py", {"module": "chr006_clean"}
        )
        assert findings == []

    def test_rule_only_applies_to_the_codec_module(self):
        # Same violating file, but the rule is scoped to another module name.
        assert run_rule("CHR006", FIXTURES / "chr006_violation.py") == []
