"""Tests for VersionedTable: versioning, isolation, re-sharding, profiles."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.errors import SchemaError, StorageError
from repro.live import VersionedTable
from repro.storage import QueryEngine, Table, profile_table
from repro.storage.sql import parse_where
from repro.workloads import batched, generate_voc


@pytest.fixture()
def table():
    return generate_voc(rows=300, seed=21)


@pytest.fixture()
def source(table):
    return VersionedTable(table)


class TestVersioning:
    def test_starts_at_version_one(self, source, table):
        assert source.version == 1
        assert source.table is table
        assert source.num_rows == table.num_rows

    def test_append_bumps_version_and_grows(self, source, table):
        version = source.append_batch([table.row(0), table.row(1)])
        assert version == 2
        assert source.version == 2
        assert source.num_rows == table.num_rows + 2

    def test_empty_append_is_a_no_op(self, source):
        assert source.append_batch([]) == 1
        assert source.version == 1

    def test_delete_bumps_version_and_shrinks(self, source, table):
        deleted, version = source.delete_where(parse_where("tonnage < 2000"))
        assert deleted > 0
        assert version == 2
        assert source.num_rows == table.num_rows - deleted

    def test_empty_delete_keeps_version(self, source):
        deleted, version = source.delete_where(parse_where("tonnage < 0"))
        assert (deleted, version) == (0, 1)

    def test_append_matches_cold_concatenation(self, source, table):
        batch = [table.row(i) for i in range(30)]
        source.append_batch(batch)
        cold = table.append_rows(batch)
        assert source.table.to_dict() == cold.to_dict()

    def test_appended_values_are_coerced(self, source):
        before = source.num_rows
        source.append_batch(
            [{"tonnage": "900", "type_of_boat": "pinas"}]
        )
        row = source.table.row(before)
        assert row["tonnage"] == 900
        assert row["master"] is None  # missing key -> missing value

    def test_date_columns_round_trip_through_append(self):
        dated = Table.from_dict(
            {"day": [dt.date(1700, 1, 1), dt.date(1700, 6, 1)], "v": [1, 2]},
            name="dated",
        )
        source = VersionedTable(dated)
        source.append_batch([{"day": "1701-05-02", "v": 3}])
        assert source.table.row(2)["day"] == dt.date(1701, 5, 2)
        assert source.profile() == profile_table(source.table)

    def test_unknown_column_is_rejected(self, source):
        with pytest.raises(SchemaError):
            source.append_batch([{"no_such_column": 1}])
        assert source.version == 1


class TestSnapshotIsolation:
    def test_old_snapshots_are_not_mutated(self, source, table):
        old = source.table
        source.append_batch([table.row(0)])
        assert old.num_rows == table.num_rows
        assert source.table.num_rows == table.num_rows + 1

    def test_pin_retains_superseded_version(self, source, table):
        with source.pin() as pin:
            assert pin.version == 1
            source.append_batch([table.row(0)])
            assert source.snapshot(1) is pin.table
            assert pin.table.num_rows == table.num_rows
        # Released on exit: the superseded snapshot is gone.
        with pytest.raises(StorageError):
            source.snapshot(1)

    def test_unpinned_superseded_version_is_dropped(self, source, table):
        source.append_batch([table.row(0)])
        with pytest.raises(StorageError):
            source.snapshot(1)

    def test_release_is_idempotent(self, source, table):
        pin = source.pin()
        source.append_batch([table.row(0)])
        pin.release()
        pin.release()
        assert source.retained_versions() == []


class TestLazyResharding:
    def test_shards_are_memoised_per_version(self, source):
        assert source.partitioned(4) is source.partitioned(4)

    def test_growth_reshards_lazily(self, source, table):
        before = source.partitioned(4)
        assert before.bounds[-1][1] == table.num_rows
        source.append_batch([table.row(i) for i in range(10)])
        after = source.partitioned(4)
        assert after is not before
        assert after.bounds[-1][1] == table.num_rows + 10
        # The old shard set still covers the old snapshot.
        assert before.bounds[-1][1] == table.num_rows

    def test_engines_share_reshard_through_source(self, source):
        engine = QueryEngine(source, partitions=3)
        sibling = engine.sibling()
        source.append_batch([source.table.row(0)])
        assert engine.partitioned_table is sibling.partitioned_table
        assert engine.partitioned_table.num_rows == source.num_rows


class TestIncrementalProfile:
    def test_matches_cold_profile_after_appends(self, source, table):
        source.profile()  # seed the incremental statistics
        for batch in batched(table, 37, start=120):
            source.append_batch(batch)
        assert source.profile() == profile_table(source.table)

    def test_matches_cold_profile_after_deletes(self, source):
        source.profile()
        source.delete_where(parse_where("tonnage < 1800"))
        source.delete_where(parse_where("type_of_boat IN ('pinas')"))
        assert source.profile() == profile_table(source.table)

    def test_matches_cold_profile_after_mixed_mutations(self, source, table):
        source.profile()
        source.append_batch([table.row(i) for i in range(25)])
        source.delete_where(parse_where("tonnage > 4200"))
        source.append_batch([table.row(i) for i in range(25, 40)])
        assert source.profile() == profile_table(source.table)

    def test_profile_without_mutations_matches(self, source, table):
        assert source.profile() == profile_table(table)


class TestBatchedGenerator:
    def test_batches_cover_the_table_in_order(self, table):
        batches = list(batched(table, 90))
        assert sum(len(b) for b in batches) == table.num_rows
        assert [len(b) for b in batches[:-1]] == [90] * (len(batches) - 1)
        rebuilt = [row for batch in batches for row in batch]
        assert rebuilt[0] == table.row(0)
        assert rebuilt[-1] == table.row(table.num_rows - 1)

    def test_start_skips_a_seed_prefix(self, table):
        batches = list(batched(table, 100, start=250))
        assert sum(len(b) for b in batches) == table.num_rows - 250
        assert batches[0][0] == table.row(250)

    def test_exhausted_range_yields_nothing(self, table):
        assert list(batched(table, 10, start=table.num_rows)) == []

    def test_invalid_batch_size_is_rejected(self, table):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            next(batched(table, 0))

    def test_stream_rebuilds_the_table(self, table):
        seed = table.slice_rows(0, 100)
        source = VersionedTable(seed)
        for batch in batched(table, 64, start=100):
            source.append_batch(batch)
        assert source.table.to_dict() == table.to_dict()
