"""Live data through the service and wire layers: the acceptance loop.

The end-to-end criterion of the live subsystem: a remote session's advice
is marked stale after a wire-level ``ingest``, ``advise(refresh=True)``
returns advice byte-identical to a fresh engine on the post-ingest data,
and version-keyed eviction removes only superseded cache entries
(asserted via cache statistics).
"""

from __future__ import annotations

import pytest

from repro.api import AdvisorHTTPServer, RemoteAdvisor, Request, dumps
from repro.core.advisor import Charles
from repro.core.session import ExplorationSession
from repro.errors import ProtocolError, StorageError
from repro.service import AdvisorService
from repro.storage import QueryEngine, SampledEngine
from repro.workloads import generate_voc

_ROWS = 320
_SEED = 23
_CONTEXT = ["tonnage", "type_of_boat"]


def _advice_wire(advice):
    return dumps({"context": advice.context, "answers": advice.answers})


@pytest.fixture()
def table():
    return generate_voc(rows=_ROWS, seed=_SEED)


@pytest.fixture()
def batch(table):
    return [table.row(i) for i in range(40)]


class TestSessionStaleness:
    def test_exploration_session_tracks_versions(self, table, batch):
        advisor = Charles(table)
        session = ExplorationSession(advisor)
        session.start(_CONTEXT)
        assert not session.is_stale()
        assert session.current.data_version == 1

        advisor.ingest(batch)
        assert session.is_stale()
        assert "stale" in session.describe()

        refreshed = session.advise(refresh=True)
        assert not session.is_stale()
        assert session.current.data_version == 2
        fresh = Charles(table.append_rows(batch)).advise(
            _CONTEXT, max_answers=session.max_answers
        )
        assert _advice_wire(refreshed) == _advice_wire(fresh)

    def test_drill_stack_survives_refresh(self, table, batch):
        advisor = Charles(table)
        session = ExplorationSession(advisor)
        session.start(_CONTEXT)
        session.drill(0, 0)
        advisor.ingest(batch)
        assert session.is_stale()
        session.advise(refresh=True)
        assert session.depth == 1  # refresh never pops the stack
        assert not session.is_stale()

    def test_sampled_backends_refuse_mutation(self, table):
        sampled = SampledEngine(table, fraction=0.5, seed=1)
        with pytest.raises(StorageError):
            sampled.ingest([table.row(0)])
        with pytest.raises(StorageError):
            sampled.delete_where(None)


class TestServiceIngest:
    def test_ingest_marks_sessions_stale_and_refresh_clears(self, table, batch):
        service = AdvisorService(table, batch_window=0.0)
        session = service.open_session("alice", context=_CONTEXT)
        assert session.stale is False

        result = service.ingest(rows=batch)
        assert result["appended"] == len(batch)
        assert result["data_version"] == 2
        assert result["rows"] == _ROWS + len(batch)
        assert result["cache_entries_invalidated"] > 0
        assert session.stale is True
        assert session.stats()["stale"] is True

        refreshed = service.advise("alice", refresh=True)
        assert session.stale is False
        fresh = Charles(table.append_rows(batch)).advise(
            _CONTEXT, max_answers=10
        )
        assert _advice_wire(refreshed) == _advice_wire(fresh)

    def test_eviction_is_per_table(self, table):
        other = generate_voc(rows=150, seed=4)
        service = AdvisorService(
            {"voc": table, "other": other}, batch_window=0.0
        )
        service.open_session("a", table="voc", context=_CONTEXT)
        service.open_session("b", table="other", context=_CONTEXT)
        stats_before = service.stats()["tables"]["other"]
        service.ingest(rows=[table.row(0)], table="voc")
        stats_after = service.stats()["tables"]["other"]
        # Surgical invalidation: the untouched table's caches are intact
        # (a flush-the-world strategy would have emptied them too).
        assert stats_after["result_cache"]["entries"] == (
            stats_before["result_cache"]["entries"]
        )
        assert stats_after["result_cache"]["invalidations"] == 0
        assert stats_after["advice_cache"]["entries"] == (
            stats_before["advice_cache"]["entries"]
        )
        assert service.stats()["tables"]["voc"]["data_version"] == 2
        assert stats_after["data_version"] == 1

    def test_delete_requires_a_constrained_query(self, table):
        service = AdvisorService(table, batch_window=0.0)
        with pytest.raises(ProtocolError):
            service.ingest(delete=["tonnage"])

    def test_ingest_requires_rows_or_delete(self, table):
        service = AdvisorService(table, batch_window=0.0)
        with pytest.raises(ProtocolError):
            service.ingest()

    def test_submit_validates_ingest_params(self, table):
        service = AdvisorService(table, batch_window=0.0)
        for bad_rows in (3, "abc", {"tonnage": 1}):
            response = service.submit(
                Request(op="ingest", params={"rows": bad_rows})
            )
            assert not response.ok
            assert response.error_code == "protocol"

    def test_unknown_columns_reported_identically_across_backends(self, table):
        from repro.backends import open_backend
        from repro.errors import SchemaError

        batch = [{"bogus_a": 1}, {"bogus_b": 2}]
        messages = []
        for spec in ("memory", "sqlite"):
            backend = open_backend(spec, table)
            with pytest.raises(SchemaError) as excinfo:
                backend.ingest(batch)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "['bogus_a', 'bogus_b']" in messages[0]

    def test_ingest_applies_appends_before_deletes(self, table):
        service = AdvisorService(table, batch_window=0.0)
        result = service.ingest(
            rows=[{"tonnage": 123, "type_of_boat": "pinas"}],
            delete="tonnage <= 123",
        )
        assert result["appended"] == 1
        assert result["deleted"] >= 1  # the appended row is deletable
        assert result["data_version"] == 3


class TestConcurrentMutation:
    def test_readers_race_ingest_without_corruption(self, table):
        """Counts observed during concurrent ingests are always *some*
        version's truth — never a crash, never a mixed-version value."""
        import threading

        engine = QueryEngine(table, cache_aggregates=True, partitions=2)
        query = Charles(engine).resolve_context("tonnage >= 0")
        base = engine.count(query)
        batches = 12
        per_batch = 5
        errors = []
        observed = []

        def reader():
            try:
                for _ in range(120):
                    observed.append(engine.sibling().count(query))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for _ in range(batches):
            engine.ingest(
                [{"tonnage": 1000, "type_of_boat": "pinas"}] * per_batch
            )
        for thread in threads:
            thread.join()

        assert not errors
        valid = {base + i * per_batch for i in range(batches + 1)}
        assert set(observed) <= valid
        assert engine.count(query) == base + batches * per_batch

    def test_pinned_reader_keeps_its_snapshot(self, table, batch):
        engine = QueryEngine(table)
        query = Charles(engine).resolve_context("tonnage >= 0")
        with engine.source.pin() as pin:
            engine.ingest(batch)
            # The pinned snapshot still answers with pre-ingest data.
            frozen = QueryEngine(pin.table)
            assert frozen.count(query) == _ROWS
        assert engine.count(query) == _ROWS + len(batch)


class TestWireLevelRoundTrip:
    def test_remote_ingest_staleness_and_refresh(self, table, batch):
        service = AdvisorService(table, batch_window=0.0)
        with AdvisorHTTPServer(service, port=0) as server:
            client = RemoteAdvisor(server.url)
            session = client.open_session("probe", context=_CONTEXT)
            stale_advice = session.advise(_CONTEXT)
            assert session.stale is False
            assert session.data_version == 1

            result = client.ingest(rows=batch)
            assert result["appended"] == len(batch)
            assert result["data_version"] == 2
            assert session.stale is True

            refreshed = session.advise(refresh=True)
            assert session.stale is False
            assert session.data_version == 2
            fresh = Charles(table.append_rows(batch)).advise(
                _CONTEXT, max_answers=10
            )
            assert _advice_wire(refreshed) == _advice_wire(fresh)
            assert _advice_wire(refreshed) != _advice_wire(stale_advice)

    def test_remote_delete_round_trip(self, table):
        service = AdvisorService(table, batch_window=0.0)
        with AdvisorHTTPServer(service, port=0) as server:
            client = RemoteAdvisor(server.url)
            before = client.count("tonnage >= 0")
            result = client.ingest(delete="tonnage < 1500")
            assert result["deleted"] > 0
            assert client.count("tonnage >= 0") == before - result["deleted"]

    def test_rows_with_dates_survive_the_codec(self):
        import datetime as dt

        from repro.storage import Table

        dated = Table.from_dict(
            {"day": [dt.date(1700, 1, 1), dt.date(1700, 6, 1)], "v": [1, 2]},
            name="dated",
        )
        service = AdvisorService(dated, batch_window=0.0)
        with AdvisorHTTPServer(service, port=0) as server:
            client = RemoteAdvisor(server.url)
            result = client.ingest(
                rows=[{"day": dt.date(1701, 5, 2), "v": 3}]
            )
            assert result["appended"] == 1
            assert result["rows"] == 3
            # The date decoded on the server as a real date: a constrained
            # count over the date column selects the appended row.
            assert client.count("day BETWEEN '1701-01-01' AND '1800-01-01'") == 1
