"""Warm-vs-cold parity: incremental ingestion must be invisible.

The live subsystem's correctness bar: counts, medians and whole HB-cuts
advise runs on an engine that *ingested its data incrementally* (batch by
batch, with queries interleaved so caches warm up and are invalidated)
must be **bit-for-bit identical** to a cold engine built directly on the
final data — for the memory and SQLite backends, across the
partitions × workers grid.
"""

from __future__ import annotations

import pytest

from repro.api.codec import dumps
from repro.backends import open_backend
from repro.core.advisor import Charles
from repro.storage.expression import query_mask
from repro.storage.sql import parse_where
from repro.workloads import batched, generate_voc

_SEED_ROWS = 120
_CONTEXT = ["tonnage", "type_of_boat", "departure_harbour"]
_QUERIES = (
    "tonnage BETWEEN 1000 AND 3000",
    "type_of_boat IN ('pinas', 'fluit')",
    "tonnage >= 2500",
)

#: (backend spec, engine context) cells of the parity grid.
_GRID = [
    ("memory", {}),
    ("memory", {"partitions": 2, "workers": 2}),
    ("memory", {"partitions": 3, "workers": 2}),
    ("sqlite", {}),
]


@pytest.fixture(scope="module")
def full_table():
    return generate_voc(rows=360, seed=17)


def _advice_wire(advice):
    """Canonical bytes of what the user sees (timing fields excluded)."""
    return dumps({"context": advice.context, "answers": advice.answers})


def _warm_backend(full_table, spec, context):
    """A backend seeded with a prefix that ingests the rest in batches,
    with queries interleaved so the caches have something to invalidate."""
    backend = open_backend(
        spec, full_table.slice_rows(0, _SEED_ROWS), cache_aggregates=True,
        **context,
    )
    probe = parse_where(_QUERIES[0])
    for index, batch in enumerate(batched(full_table, 75, start=_SEED_ROWS)):
        backend.count(probe)
        backend.median("tonnage", probe)
        version_before = backend.data_version
        backend.ingest(batch)
        assert backend.data_version == version_before + 1
    return backend


@pytest.mark.parametrize(
    "spec,context", _GRID, ids=[f"{s}-{c or 'seq'}" for s, c in _GRID]
)
class TestWarmColdParity:
    def test_counts_and_medians_are_identical(self, full_table, spec, context):
        warm = _warm_backend(full_table, spec, context)
        cold = open_backend(spec, full_table, cache_aggregates=True, **context)
        assert warm.num_rows == cold.num_rows == full_table.num_rows
        for text in _QUERIES:
            query = parse_where(text)
            assert warm.count(query) == cold.count(query)
            assert warm.median("tonnage", query) == cold.median("tonnage", query)
            assert warm.minmax("tonnage", query) == cold.minmax("tonnage", query)
        assert warm.value_frequencies("type_of_boat") == (
            cold.value_frequencies("type_of_boat")
        )

    def test_advise_is_byte_identical(self, full_table, spec, context):
        warm = _warm_backend(full_table, spec, context)
        cold = open_backend(spec, full_table, cache_aggregates=True, **context)
        warm_advice = Charles(warm).advise(_CONTEXT, max_answers=8)
        cold_advice = Charles(cold).advise(_CONTEXT, max_answers=8)
        assert _advice_wire(warm_advice) == _advice_wire(cold_advice)

    def test_delete_parity(self, full_table, spec, context):
        warm = _warm_backend(full_table, spec, context)
        delete = parse_where("tonnage < 1500")
        deleted = warm.delete_where(delete)
        expected_table = full_table.filter(~query_mask(full_table, delete))
        assert deleted == full_table.num_rows - expected_table.num_rows
        cold = open_backend(
            spec, expected_table, cache_aggregates=True, **context
        )
        assert warm.num_rows == cold.num_rows
        for text in _QUERIES:
            query = parse_where(text)
            assert warm.count(query) == cold.count(query)
        warm_advice = Charles(warm).advise(_CONTEXT, max_answers=8)
        cold_advice = Charles(cold).advise(_CONTEXT, max_answers=8)
        assert _advice_wire(warm_advice) == _advice_wire(cold_advice)
