"""Version-keyed cache invalidation: tagged entries, surgical eviction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import QueryEngine, ResultCache
from repro.storage.sql import parse_where
from repro.workloads import generate_voc


@pytest.fixture()
def table():
    return generate_voc(rows=250, seed=5)


class TestVersionedResultCache:
    def test_untagged_entries_behave_classically(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.get("k", version=7) == 1  # untagged matches any version

    def test_version_match_hits(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=3)
        assert cache.get("k", version=3) == 1

    def test_version_mismatch_misses_and_invalidate(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        assert cache.get("k", version=2) is None
        stats = cache.stats()
        assert stats.entries == 0  # the stale entry was dropped on the spot
        assert stats.invalidations == 1
        assert stats.hits + stats.misses == stats.lookups

    def test_unversioned_get_serves_tagged_entry(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        assert cache.get("k") == 1

    def test_evict_superseded_is_surgical(self):
        cache = ResultCache(capacity=16)
        cache.put("old-a", 1, version=1)
        cache.put("old-b", 2, version=1)
        cache.put("current", 3, version=2)
        cache.put("untagged", 4)
        removed = cache.evict_superseded(2)
        assert removed == 2
        assert "old-a" not in cache and "old-b" not in cache
        assert cache.get("current", version=2) == 3
        assert cache.get("untagged") == 4
        assert cache.stats().invalidations == 2

    def test_get_or_compute_recomputes_for_new_version(self):
        cache = ResultCache(capacity=8)
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert cache.get_or_compute("k", compute, version=1) == 1
        assert cache.get_or_compute("k", compute, version=1) == 1
        assert cache.get_or_compute("k", compute, version=2) == 2

    def test_snapshot_reports_invalidations(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        cache.evict_superseded(5)
        assert cache.stats().snapshot()["invalidations"] == 1


class TestEngineInvalidationPrecision:
    def test_ingest_evicts_only_superseded_entries(self, table):
        cache = ResultCache(capacity=512, name="shared")
        engine = QueryEngine(table, cache=cache, cache_aggregates=True)
        sibling = engine.sibling()

        stale_query = parse_where("tonnage BETWEEN 1000 AND 3000")
        engine.count(stale_query)
        # Entries the mutation must NOT touch: untagged ones, and entries
        # already recomputed at the post-ingest version by a racing
        # sibling (simulated by tagging ahead).
        cache.put("untagged-probe", "keep", version=None)
        cache.put("ahead-probe", "keep", version=engine.data_version + 1)

        entries_before = cache.stats().entries
        engine.ingest([table.row(0), table.row(1)])

        stats = cache.stats()
        # The superseded mask + count entries are gone...
        assert stats.invalidations >= 2
        assert stats.entries < entries_before
        # ...but everything not superseded survived, for every sibling.
        assert cache.get("untagged-probe") == "keep"
        assert cache.get("ahead-probe", version=sibling.data_version) == "keep"

    def test_stale_mask_never_answers_new_version(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        count_before = engine.count(query)
        engine.ingest([{"tonnage": 1500, "type_of_boat": "pinas"}])
        assert engine.count(query) == count_before + 1
        assert engine.median("tonnage", query) == QueryEngine(
            engine.table
        ).median("tonnage", query)

    def test_noop_mutations_keep_the_cache_warm(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        engine.count(query)
        engine.ingest([])
        assert engine.delete_where(parse_where("tonnage < 0")) == 0
        hits_before = engine.cache.stats().hits
        engine.count(query)
        assert engine.cache.stats().hits > hits_before

    def test_delete_invalidates_and_recomputes(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        engine.count(query)
        deleted = engine.delete_where(parse_where("tonnage > 4000"))
        assert deleted > 0
        fresh = QueryEngine(engine.table)
        assert engine.count(query) == fresh.count(query)
        assert engine.cache.stats().invalidations > 0


class TestIndexedLiveParity:
    """Skipping indexes under mutation: no stale index can answer.

    A fully indexed, partitioned engine absorbs a random interleaving of
    ingests, predicate deletes and queries; after *every* step its
    answers are compared against a fresh unindexed engine built from its
    current snapshot.  Any zone map, bitmap or cached mask surviving a
    version bump would show up as a divergence here.
    """

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_indexed_engine_never_serves_stale_answers(self, data):
        import numpy as np

        from repro.sdl import RangePredicate, SDLQuery, SetPredicate
        from repro.storage import Table

        harbours = ["Bantam", "Surat", "Zeeland"]
        rows = [
            {"n": index if index % 7 else None, "s": harbours[index % 3]}
            for index in range(40)
        ]
        engine = QueryEngine(
            Table.from_rows(rows, name="live"), use_index="all", partitions=3
        )
        steps = data.draw(st.integers(min_value=3, max_value=8), label="steps")
        for _ in range(steps):
            op = data.draw(st.sampled_from(["ingest", "delete", "noop"]), label="op")
            if op == "ingest":
                batch = data.draw(
                    st.lists(
                        st.fixed_dictionaries(
                            {
                                "n": st.one_of(
                                    st.none(),
                                    st.integers(min_value=-5, max_value=60),
                                ),
                                "s": st.sampled_from(harbours + ["Texel"]),
                            }
                        ),
                        max_size=6,
                    ),
                    label="batch",
                )
                engine.ingest(batch)
            elif op == "delete":
                low = data.draw(st.integers(min_value=-5, max_value=60), label="low")
                span = data.draw(st.integers(min_value=0, max_value=10), label="span")
                engine.delete_where(SDLQuery([RangePredicate("n", low, low + span)]))
            low = data.draw(st.integers(min_value=-5, max_value=60), label="qlow")
            span = data.draw(st.integers(min_value=0, max_value=30), label="qspan")
            queries = [
                SDLQuery([RangePredicate("n", low, low + span)]),
                SDLQuery(
                    [
                        SetPredicate(
                            "s",
                            frozenset(
                                data.draw(
                                    st.sets(
                                        st.sampled_from(harbours + ["Texel"]),
                                        min_size=1,
                                        max_size=2,
                                    ),
                                    label="members",
                                )
                            ),
                        )
                    ]
                ),
            ]
            oracle = QueryEngine(engine.table)
            for query in queries:
                assert engine.count(query) == oracle.count(query)
                assert np.array_equal(engine.evaluate(query), oracle.evaluate(query))
            assert engine.data_version == engine.source.version
