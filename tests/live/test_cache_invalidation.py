"""Version-keyed cache invalidation: tagged entries, surgical eviction."""

from __future__ import annotations

import pytest

from repro.storage import QueryEngine, ResultCache
from repro.storage.sql import parse_where
from repro.workloads import generate_voc


@pytest.fixture()
def table():
    return generate_voc(rows=250, seed=5)


class TestVersionedResultCache:
    def test_untagged_entries_behave_classically(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.get("k", version=7) == 1  # untagged matches any version

    def test_version_match_hits(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=3)
        assert cache.get("k", version=3) == 1

    def test_version_mismatch_misses_and_invalidate(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        assert cache.get("k", version=2) is None
        stats = cache.stats()
        assert stats.entries == 0  # the stale entry was dropped on the spot
        assert stats.invalidations == 1
        assert stats.hits + stats.misses == stats.lookups

    def test_unversioned_get_serves_tagged_entry(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        assert cache.get("k") == 1

    def test_evict_superseded_is_surgical(self):
        cache = ResultCache(capacity=16)
        cache.put("old-a", 1, version=1)
        cache.put("old-b", 2, version=1)
        cache.put("current", 3, version=2)
        cache.put("untagged", 4)
        removed = cache.evict_superseded(2)
        assert removed == 2
        assert "old-a" not in cache and "old-b" not in cache
        assert cache.get("current", version=2) == 3
        assert cache.get("untagged") == 4
        assert cache.stats().invalidations == 2

    def test_get_or_compute_recomputes_for_new_version(self):
        cache = ResultCache(capacity=8)
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert cache.get_or_compute("k", compute, version=1) == 1
        assert cache.get_or_compute("k", compute, version=1) == 1
        assert cache.get_or_compute("k", compute, version=2) == 2

    def test_snapshot_reports_invalidations(self):
        cache = ResultCache(capacity=8)
        cache.put("k", 1, version=1)
        cache.evict_superseded(5)
        assert cache.stats().snapshot()["invalidations"] == 1


class TestEngineInvalidationPrecision:
    def test_ingest_evicts_only_superseded_entries(self, table):
        cache = ResultCache(capacity=512, name="shared")
        engine = QueryEngine(table, cache=cache, cache_aggregates=True)
        sibling = engine.sibling()

        stale_query = parse_where("tonnage BETWEEN 1000 AND 3000")
        engine.count(stale_query)
        # Entries the mutation must NOT touch: untagged ones, and entries
        # already recomputed at the post-ingest version by a racing
        # sibling (simulated by tagging ahead).
        cache.put("untagged-probe", "keep", version=None)
        cache.put("ahead-probe", "keep", version=engine.data_version + 1)

        entries_before = cache.stats().entries
        engine.ingest([table.row(0), table.row(1)])

        stats = cache.stats()
        # The superseded mask + count entries are gone...
        assert stats.invalidations >= 2
        assert stats.entries < entries_before
        # ...but everything not superseded survived, for every sibling.
        assert cache.get("untagged-probe") == "keep"
        assert cache.get("ahead-probe", version=sibling.data_version) == "keep"

    def test_stale_mask_never_answers_new_version(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        count_before = engine.count(query)
        engine.ingest([{"tonnage": 1500, "type_of_boat": "pinas"}])
        assert engine.count(query) == count_before + 1
        assert engine.median("tonnage", query) == QueryEngine(
            engine.table
        ).median("tonnage", query)

    def test_noop_mutations_keep_the_cache_warm(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        engine.count(query)
        engine.ingest([])
        assert engine.delete_where(parse_where("tonnage < 0")) == 0
        hits_before = engine.cache.stats().hits
        engine.count(query)
        assert engine.cache.stats().hits > hits_before

    def test_delete_invalidates_and_recomputes(self, table):
        engine = QueryEngine(table, cache_aggregates=True)
        query = parse_where("tonnage >= 1000")
        engine.count(query)
        deleted = engine.delete_where(parse_where("tonnage > 4000"))
        assert deleted > 0
        fresh = QueryEngine(engine.table)
        assert engine.count(query) == fresh.count(query)
        assert engine.cache.stats().invalidations > 0
