"""Unit tests for the per-segment distribution renderers."""

from __future__ import annotations

import pytest

from repro.core import cut_query
from repro.errors import VisualizationError
from repro.sdl import RangePredicate, SDLQuery
from repro.storage import QueryEngine, Table
from repro.viz import numeric_sparkline, segment_distributions, value_histogram


@pytest.fixture()
def engine() -> QueryEngine:
    table = Table.from_dict(
        {
            "category": ["a"] * 50 + ["b"] * 30 + ["c"] * 20,
            "value": list(range(100)),
        },
        name="data",
    )
    return QueryEngine(table)


class TestValueHistogram:
    def test_lists_values_with_counts(self, engine):
        text = value_histogram(engine, "category")
        assert "a" in text and "50" in text
        assert text.splitlines()[0].startswith("category")

    def test_bars_proportional(self, engine):
        lines = value_histogram(engine, "category", width=20).splitlines()
        bar_lengths = [line.count("▇") for line in lines[1:]]
        assert bar_lengths == sorted(bar_lengths, reverse=True)

    def test_respects_query_restriction(self, engine):
        query = SDLQuery([RangePredicate("value", 0, 49)])
        text = value_histogram(engine, "category", query)
        assert "b" not in text.replace("▇", "")

    def test_long_tail_is_collapsed(self, engine):
        text = value_histogram(engine, "value", max_values=5)
        assert "more values" in text

    def test_empty_selection(self, engine):
        query = SDLQuery([RangePredicate("value", 1000, 2000)])
        assert "(no values)" in value_histogram(engine, "category", query)

    def test_invalid_width(self, engine):
        with pytest.raises(VisualizationError):
            value_histogram(engine, "category", width=1)


class TestNumericSparkline:
    def test_fixed_length_output(self, engine):
        spark = numeric_sparkline(engine, "value", bins=12)
        assert len(spark) == 12

    def test_uniform_data_is_flat_ish(self, engine):
        spark = numeric_sparkline(engine, "value", bins=10)
        assert len(set(spark)) <= 3

    def test_constant_data(self):
        engine = QueryEngine(Table.from_dict({"x": [5.0] * 20}))
        spark = numeric_sparkline(engine, "x", bins=8)
        assert len(spark) == 8

    def test_requires_numeric_column(self, engine):
        with pytest.raises(VisualizationError):
            numeric_sparkline(engine, "category")

    def test_invalid_bins(self, engine):
        with pytest.raises(VisualizationError):
            numeric_sparkline(engine, "value", bins=1)

    def test_empty_selection(self, engine):
        query = SDLQuery([RangePredicate("value", 1000, 2000)])
        assert numeric_sparkline(engine, "value", query) == "(empty)"


class TestSegmentDistributions:
    def test_nominal_probe_shows_context_and_every_segment(self, engine):
        context = SDLQuery.over(["category", "value"])
        segmentation = cut_query(engine, context, "value")
        text = segment_distributions(engine, segmentation, "category")
        lines = text.splitlines()
        assert "context" in lines[1]
        assert len(lines) == 2 + segmentation.depth

    def test_numeric_probe_uses_sparklines(self, engine):
        context = SDLQuery.over(["category", "value"])
        segmentation = cut_query(engine, context, "category")
        text = segment_distributions(engine, segmentation, "value")
        assert "▁" in text or "█" in text

    def test_shifted_distribution_is_visible(self, engine):
        # Cutting on value at the median puts all of category 'c' in the
        # upper half; its share should read 0% in one row and >0% in another.
        context = SDLQuery.over(["category", "value"])
        segmentation = cut_query(engine, context, "value")
        text = segment_distributions(engine, segmentation, "category")
        assert "0%" in text
