"""Unit tests for the text tree-map renderer."""

from __future__ import annotations

import pytest

from repro.errors import VisualizationError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, Segment, Segmentation
from repro.viz import treemap, treemap_layout


def _segmentation(counts) -> Segmentation:
    context = SDLQuery([NoConstraint("x")])
    segments = []
    low = 0
    for count in counts:
        segments.append(Segment(context.refine(RangePredicate("x", low, low + 9)), count))
        low += 10
    return Segmentation(context, segments, cut_attributes=("x",))


class TestTreemapLayout:
    def test_cells_tile_the_whole_grid(self):
        cells = treemap_layout([3, 2, 1], width=12, height=6)
        assert sum(cell.area for cell in cells) == 72
        # No overlaps: every grid point belongs to exactly one cell.
        occupancy = {}
        for cell in cells:
            for y in range(cell.y0, cell.y1):
                for x in range(cell.x0, cell.x1):
                    assert (x, y) not in occupancy
                    occupancy[(x, y)] = cell.segment_index
        assert len(occupancy) == 72

    def test_areas_roughly_proportional_to_weights(self):
        cells = treemap_layout([3, 1], width=16, height=8)
        by_index = {cell.segment_index: cell.area for cell in cells}
        assert by_index[0] > by_index[1]
        assert by_index[0] == pytest.approx(96, abs=16)

    def test_zero_weight_entries_get_no_cell(self):
        cells = treemap_layout([5, 0, 5], width=10, height=4)
        assert {cell.segment_index for cell in cells} == {0, 2}

    def test_single_weight_fills_everything(self):
        cells = treemap_layout([7], width=5, height=3)
        assert len(cells) == 1
        assert cells[0].area == 15

    def test_invalid_dimensions(self):
        with pytest.raises(VisualizationError):
            treemap_layout([1], width=0, height=5)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(VisualizationError):
            treemap_layout([0, 0], width=4, height=4)

    def test_every_cell_is_non_degenerate(self):
        cells = treemap_layout([10, 5, 3, 1, 1], width=20, height=8)
        for cell in cells:
            assert cell.width >= 1
            assert cell.height >= 1


class TestTreemapRendering:
    def test_grid_dimensions(self):
        text = treemap(_segmentation([60, 40]), width=30, height=6, show_legend=False)
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 30 for line in lines)

    def test_legend_lists_every_segment(self):
        text = treemap(_segmentation([60, 30, 10]), width=30, height=6)
        legend_lines = [line for line in text.splitlines() if "%" in line]
        assert len(legend_lines) == 3

    def test_larger_segments_get_more_cells(self):
        text = treemap(_segmentation([90, 10]), width=20, height=10, show_legend=False)
        glyph_counts = {}
        for line in text.splitlines():
            for char in line:
                glyph_counts[char] = glyph_counts.get(char, 0) + 1
        counts = sorted(glyph_counts.values(), reverse=True)
        assert counts[0] > counts[-1]

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(VisualizationError):
            treemap(_segmentation([10]), width=2, height=1)

    def test_empty_segmentation_rejected(self):
        with pytest.raises(VisualizationError):
            treemap(_segmentation([0, 0]))
