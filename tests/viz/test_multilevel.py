"""Unit tests for the multi-level pie renderer."""

from __future__ import annotations

import pytest

from repro.core import Charles, compose, cut_query
from repro.errors import VisualizationError
from repro.sdl import SDLQuery, Segment, Segmentation
from repro.storage import QueryEngine
from repro.viz import hierarchy_of, multilevel_pie
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1200, seed=12))


@pytest.fixture(scope="module")
def composed(engine):
    context = SDLQuery.over(["type_of_boat", "tonnage"])
    by_type = cut_query(engine, context, "type_of_boat")
    by_tonnage = cut_query(engine, context, "tonnage")
    return compose(engine, by_type, by_tonnage)


class TestHierarchy:
    def test_root_covers_all_segments(self, composed):
        root = hierarchy_of(composed)
        assert root.count == composed.covered_count
        assert sorted(
            index for child in root.children for index in child.segment_indexes
        ) == list(range(composed.depth))

    def test_first_ring_groups_by_first_cut_attribute(self, composed):
        root = hierarchy_of(composed)
        # Two boat-type groups at the outer ring, each split by tonnage below.
        assert len(root.children) == 2
        for child in root.children:
            assert child.depth == 1
            assert len(child.children) == 2
            assert all(grandchild.is_leaf for grandchild in child.children)

    def test_child_counts_sum_to_parent(self, composed):
        root = hierarchy_of(composed)
        for child in root.children:
            assert sum(grandchild.count for grandchild in child.children) == child.count
        assert sum(child.count for child in root.children) == root.count

    def test_children_ordered_by_count(self, composed):
        root = hierarchy_of(composed)
        counts = [child.count for child in root.children]
        assert counts == sorted(counts, reverse=True)

    def test_explicit_attribute_order(self, composed):
        root = hierarchy_of(composed, attribute_order=["tonnage", "type_of_boat"])
        # Nesting by tonnage first yields tonnage labels at the outer ring.
        assert all("tonnage" in child.label for child in root.children)

    def test_requires_cut_attributes(self, engine):
        context = SDLQuery.over(["type_of_boat"])
        bare = Segmentation(context, [Segment(context, engine.count(context))])
        with pytest.raises(VisualizationError):
            hierarchy_of(bare)


class TestMultilevelPie:
    def test_one_line_per_sector_plus_header(self, composed):
        text = multilevel_pie(composed)
        # 1 header + 2 outer sectors + 4 leaf sectors.
        assert len(text.splitlines()) == 7

    def test_indentation_encodes_the_ring(self, composed):
        lines = multilevel_pie(composed).splitlines()[1:]
        outer = [line for line in lines if not line.startswith("    ")]
        inner = [line for line in lines if line.startswith("    ")]
        assert len(outer) == 2
        assert len(inner) == 4

    def test_counts_and_percentages_present(self, composed):
        text = multilevel_pie(composed, show_counts=True)
        assert "%" in text
        assert "(" in text
        without_counts = multilevel_pie(composed, show_counts=False)
        assert "(" not in without_counts.splitlines()[1].split("  ")[-2]

    def test_invalid_width(self, composed):
        with pytest.raises(VisualizationError):
            multilevel_pie(composed, width=4)

    def test_works_on_advisor_output(self, engine):
        advisor = Charles(engine)
        advice = advisor.advise(
            ["type_of_boat", "departure_harbour", "tonnage"], max_answers=1
        )
        text = multilevel_pie(advice.best().segmentation)
        assert "multi-level pie" in text
        assert len(text.splitlines()) > advice.best().segmentation.depth
