"""Unit tests for the ranked-answer report renderer."""

from __future__ import annotations

import pytest

from repro.core import Charles
from repro.viz import render_advice, render_answer, render_answer_list, render_context


@pytest.fixture(scope="module")
def advice(voc_table):
    advisor = Charles(voc_table)
    return advisor.advise(["type_of_boat", "departure_harbour", "tonnage"], max_answers=4)


class TestRenderContext:
    def test_lists_every_context_predicate(self, advice):
        text = render_context(advice)
        assert "type_of_boat:" in text
        assert "departure_harbour:" in text
        assert "tonnage:" in text

    def test_reports_database_operations(self, advice):
        assert "database operations" in render_context(advice)


class TestRenderAnswerList:
    def test_one_line_per_answer(self, advice):
        lines = render_answer_list(advice).splitlines()
        assert len(lines) == len(advice.answers) + 1

    def test_lines_mention_rank_and_entropy(self, advice):
        text = render_answer_list(advice)
        assert "#1" in text
        assert "E=" in text


class TestRenderAnswer:
    def test_pie_style(self, advice):
        text = render_answer(advice.best(), style="pie")
        assert "pie:" in text

    def test_treemap_style(self, advice):
        text = render_answer(advice.best(), style="treemap", width=30, height=6)
        assert "%" in text

    def test_table_style(self, advice):
        text = render_answer(advice.best(), style="table")
        assert "Segmentation on" in text


class TestRenderAdvice:
    def test_contains_all_three_panels(self, advice):
        text = render_advice(advice)
        assert "context:" in text
        assert "ranked answers" in text
        assert "selected answer" in text

    def test_selected_index_is_clamped(self, advice):
        text = render_advice(advice, selected=99)
        assert f"selected answer #{advice.answers[-1].rank}" in text

    def test_max_answers_truncates_list(self, advice):
        full = render_answer_list(advice)
        truncated = render_advice(advice, max_answers=1)
        assert "#2" in full
        assert "#2 " not in truncated

    def test_style_is_forwarded(self, advice):
        assert "pie:" in render_advice(advice, style="pie")
        assert "pie:" not in render_advice(advice, style="table")
