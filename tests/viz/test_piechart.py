"""Unit tests for the textual pie chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import VisualizationError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, Segment, Segmentation
from repro.viz import compact_pie, pie_chart, slice_fractions


def _segmentation(counts) -> Segmentation:
    context = SDLQuery([NoConstraint("x")])
    segments = []
    low = 0
    for count in counts:
        segments.append(Segment(context.refine(RangePredicate("x", low, low + 9)), count))
        low += 10
    return Segmentation(context, segments, cut_attributes=("x",))


class TestSliceFractions:
    def test_matches_covers(self):
        segmentation = _segmentation([75, 25])
        assert slice_fractions(segmentation) == [0.75, 0.25]


class TestPieChart:
    def test_one_line_per_slice_plus_header(self):
        text = pie_chart(_segmentation([60, 40]))
        assert len(text.splitlines()) == 3

    def test_slices_sorted_by_cover(self):
        text = pie_chart(_segmentation([10, 90]))
        lines = text.splitlines()
        assert "90" in lines[1]
        assert "10" in lines[2]

    def test_unsorted_option_preserves_order(self):
        text = pie_chart(_segmentation([10, 90]), sort_by_cover=False)
        assert "10" in text.splitlines()[1]

    def test_bar_length_proportional_to_cover(self):
        text = pie_chart(_segmentation([80, 20]), width=20)
        lines = text.splitlines()
        assert lines[1].count("█") == 16
        assert lines[2].count("█") == 4

    def test_max_slices_collapses_the_tail(self):
        text = pie_chart(_segmentation([40, 30, 20, 5, 5]), max_slices=3)
        assert "other slices" in text
        assert len(text.splitlines()) == 5  # header + 3 + collapsed line

    def test_percentages_and_counts_present(self):
        text = pie_chart(_segmentation([50, 50]))
        assert "50.0%" in text
        assert "(50)" in text

    def test_labels_can_be_hidden(self):
        with_labels = pie_chart(_segmentation([50, 50]), show_labels=True)
        without_labels = pie_chart(_segmentation([50, 50]), show_labels=False)
        assert "x:" in with_labels
        assert "x:" not in without_labels

    def test_invalid_width_rejected(self):
        with pytest.raises(VisualizationError):
            pie_chart(_segmentation([10]), width=2)


class TestCompactPie:
    def test_fixed_width_output(self):
        strip = compact_pie(_segmentation([50, 30, 20]), width=24)
        assert strip.startswith("[") and strip.endswith("]")
        assert len(strip) == 26

    def test_every_slice_gets_at_least_one_cell(self):
        strip = compact_pie(_segmentation([97, 1, 1, 1]), width=20)
        # Four distinct glyph kinds must appear despite the skew.
        body = strip[1:-1].strip()
        assert len(set(body)) >= 2

    def test_width_expands_for_many_slices(self):
        strip = compact_pie(_segmentation([1] * 30), width=4)
        assert len(strip) >= 30
