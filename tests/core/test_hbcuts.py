"""Unit tests for the HB-cuts heuristic (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core import (
    HBCuts,
    HBCutsConfig,
    entropy,
    hb_cuts,
)
from repro.errors import AdvisorError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import (
    generate_voc,
    make_dependent_pair_table,
    make_independent_table,
    make_wide_table,
)


@pytest.fixture(scope="module")
def voc_engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1500, seed=3))


class TestConfigValidation:
    def test_defaults_follow_the_paper(self):
        config = HBCutsConfig()
        assert config.max_indep == pytest.approx(0.99)
        assert config.max_depth == 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_indep": 0.0},
            {"max_indep": 1.5},
            {"max_depth": 1},
            {"stopping": "unknown"},
            {"alpha": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(AdvisorError):
            HBCutsConfig(**kwargs)


class TestInitialisation:
    def test_one_candidate_per_cuttable_attribute(self):
        table = Table.from_dict(
            {"x": list(range(20)), "t": ["a", "b"] * 10, "constant": ["same"] * 20}
        )
        engine = QueryEngine(table)
        result = HBCuts().run(engine, SDLQuery.over(["x", "t", "constant"]))
        assert set(result.trace.initial_candidates) == {"x", "t"}
        assert result.trace.uncuttable_attributes == ["constant"]

    def test_no_cuttable_attribute_returns_empty(self):
        table = Table.from_dict({"constant": ["same"] * 5})
        engine = QueryEngine(table)
        result = HBCuts().run(engine, SDLQuery.over(["constant"]))
        assert len(result) == 0
        assert result.trace.stop_reason == "no_candidates"

    def test_empty_context_rejected(self):
        table = Table.from_dict({"x": [1, 2]})
        with pytest.raises(AdvisorError):
            HBCuts().run(QueryEngine(table), SDLQuery())


class TestComposition:
    def test_dependent_attributes_are_composed(self):
        engine = QueryEngine(
            make_dependent_pair_table(rows=2000, strength=0.9, cardinality=2, seed=2)
        )
        result = HBCuts().run(engine, SDLQuery.over(["x", "y", "z"]))
        composed_sets = [set(attributes) for attributes in result.trace.compositions]
        assert {"x", "y"} in composed_sets

    def test_independent_attributes_are_not_composed(self):
        engine = QueryEngine(make_independent_table(rows=2000, cardinalities=(4, 4, 4), seed=2))
        config = HBCutsConfig(max_indep=0.99)
        result = HBCuts(config).run(engine, SDLQuery.over(["a0", "a1", "a2"]))
        assert result.trace.compositions == []
        assert result.trace.stop_reason == "indep"
        # Only the three single-attribute candidates are returned.
        assert len(result) == 3

    def test_every_output_is_a_valid_partition(self, voc_engine):
        context = SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])
        result = HBCuts().run(voc_engine, context)
        assert len(result) >= 3
        for segmentation in result:
            assert check_partition(voc_engine, segmentation).is_partition

    def test_output_sorted_by_entropy(self, voc_engine):
        context = SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])
        result = HBCuts().run(voc_engine, context)
        entropies = [entropy(segmentation) for segmentation in result]
        assert entropies == sorted(entropies, reverse=True)

    def test_intermediate_candidates_are_kept(self, voc_engine):
        # Figure 3: composed candidates are returned alongside their parents.
        context = SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])
        result = HBCuts().run(voc_engine, context)
        depths = sorted(segmentation.depth for segmentation in result)
        assert depths[0] == 2          # a plain binary cut survives
        assert depths[-1] >= 4         # and at least one composition happened

    def test_max_depth_limits_segmentation_size(self, voc_engine):
        context = SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage", "yard"])
        config = HBCutsConfig(max_depth=4)
        result = HBCuts(config).run(voc_engine, context)
        assert all(segmentation.depth <= 4 for segmentation in result)

    def test_best_raises_on_empty_result(self):
        table = Table.from_dict({"constant": ["same"] * 5})
        result = HBCuts().run(QueryEngine(table), SDLQuery.over(["constant"]))
        with pytest.raises(AdvisorError):
            result.best()


class TestStoppingRules:
    def test_chi2_stopping_rule_runs(self):
        engine = QueryEngine(make_independent_table(rows=1500, cardinalities=(3, 3, 3), seed=4))
        config = HBCutsConfig(stopping="chi2", alpha=0.01)
        result = HBCuts(config).run(engine, SDLQuery.over(["a0", "a1", "a2"]))
        # Independent columns: the chi-square rule refuses to compose.
        assert result.trace.compositions == []

    def test_chi2_still_composes_dependent_columns(self):
        engine = QueryEngine(
            make_dependent_pair_table(rows=2000, strength=0.9, cardinality=2, seed=2)
        )
        config = HBCutsConfig(stopping="chi2", alpha=0.01)
        result = HBCuts(config).run(engine, SDLQuery.over(["x", "y", "z"]))
        assert [set(c) for c in result.trace.compositions] == [{"x", "y"}]


class TestTraceAndReuse:
    def test_pair_cache_reduces_evaluations(self):
        table = make_wide_table(rows=1000, attributes=6, dependent_pairs=2, seed=3)
        context = SDLQuery.over(table.column_names)
        with_reuse = HBCuts(HBCutsConfig(reuse_indep=True)).run(QueryEngine(table), context)
        without_reuse = HBCuts(HBCutsConfig(reuse_indep=False)).run(QueryEngine(table), context)
        assert with_reuse.trace.pair_evaluations < without_reuse.trace.pair_evaluations
        assert with_reuse.trace.pair_cache_hits > 0
        # The answers themselves are identical.
        assert len(with_reuse) == len(without_reuse)

    def test_trace_runtime_recorded(self, voc_engine):
        result = HBCuts().run(voc_engine, SDLQuery.over(["type_of_boat", "tonnage"]))
        assert result.trace.runtime_seconds > 0.0
        assert result.trace.iterations >= 1

    def test_attributes_argument_restricts_exploration(self, voc_engine):
        context = SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])
        result = HBCuts().run(voc_engine, context, attributes=["tonnage"])
        assert result.trace.initial_candidates == ["tonnage"]
        assert all(segmentation.cut_attributes == ("tonnage",) for segmentation in result)


class TestFunctionalWrapper:
    def test_hb_cuts_signature(self, voc_engine):
        result = hb_cuts(
            voc_engine,
            SDLQuery.over(["type_of_boat", "tonnage"]),
            max_indep=0.95,
            max_depth=8,
        )
        assert len(result) >= 2
        assert result.best().depth <= 8

    def test_result_is_indexable_and_iterable(self, voc_engine):
        result = hb_cuts(voc_engine, SDLQuery.over(["type_of_boat", "tonnage"]))
        assert result[0] is list(iter(result))[0]
