"""Unit tests for the CUT primitive (Definitions 5 and 6)."""

from __future__ import annotations

import pytest

from repro.core import can_cut, cut_query, cut_segmentation
from repro.errors import CannotCutError
from repro.sdl import RangePredicate, SDLQuery, check_partition
from repro.storage import QueryEngine, Table


def _engine(data: dict) -> QueryEngine:
    return QueryEngine(Table.from_dict(data, name="t"))


class TestCutQuery:
    def test_produces_two_pieces(self):
        engine = _engine({"x": list(range(10))})
        segmentation = cut_query(engine, SDLQuery.over(["x"]), "x")
        assert segmentation.depth == 2
        assert segmentation.cut_attributes == ("x",)

    def test_partition_is_valid(self):
        engine = _engine({"x": [5, 3, 9, 1, 7, 2, 8, 6]})
        segmentation = cut_query(engine, SDLQuery.over(["x"]), "x")
        assert check_partition(engine, segmentation).is_partition

    def test_counts_cover_the_context(self):
        engine = _engine({"x": list(range(11))})
        segmentation = cut_query(engine, SDLQuery.over(["x"]), "x")
        assert sum(segmentation.counts) == 11

    def test_roughly_equal_pieces_on_uniform_data(self):
        engine = _engine({"x": list(range(100))})
        segmentation = cut_query(engine, SDLQuery.over(["x"]), "x")
        assert abs(segmentation.counts[0] - segmentation.counts[1]) <= 1

    def test_nominal_cut(self):
        engine = _engine({"t": ["a"] * 6 + ["b"] * 3 + ["c"] * 1})
        segmentation = cut_query(engine, SDLQuery.over(["t"]), "t")
        assert segmentation.depth == 2
        assert check_partition(engine, segmentation).is_partition

    def test_cut_within_constrained_context(self):
        engine = _engine({"x": list(range(20)), "y": ["a", "b"] * 10})
        context = SDLQuery([RangePredicate("x", 0, 9), SDLQuery.over(["y"]).predicates[0]])
        segmentation = cut_query(engine, context, "x")
        assert segmentation.context_count == 10
        assert sum(segmentation.counts) == 10

    def test_uncuttable_attribute_raises(self):
        engine = _engine({"x": [1, 1, 1]})
        with pytest.raises(CannotCutError):
            cut_query(engine, SDLQuery.over(["x"]), "x")

    def test_can_cut_helper(self):
        engine = _engine({"x": [1, 2, 3], "c": ["same"] * 3})
        context = SDLQuery.over(["x", "c"])
        assert can_cut(engine, context, "x")
        assert not can_cut(engine, context, "c")


class TestCutSegmentation:
    def test_doubles_the_pieces_when_possible(self):
        engine = _engine(
            {
                "x": list(range(16)),
                "y": [i % 4 for i in range(16)],
            }
        )
        context = SDLQuery.over(["x", "y"])
        first = cut_query(engine, context, "x")
        second = cut_segmentation(engine, first, "y")
        assert second.depth == 4
        assert second.cut_attributes == ("x", "y")

    def test_result_is_still_a_partition(self):
        engine = _engine(
            {
                "x": [1, 2, 3, 4, 5, 6, 7, 8],
                "y": ["a", "a", "b", "b", "a", "b", "a", "b"],
            }
        )
        context = SDLQuery.over(["x", "y"])
        segmentation = cut_segmentation(engine, cut_query(engine, context, "x"), "y")
        assert check_partition(engine, segmentation).is_partition

    def test_uncuttable_pieces_kept_whole(self):
        # After cutting on x, the lower piece holds a single y value and
        # cannot be cut again; it must survive unchanged.
        engine = _engine(
            {
                "x": [1, 1, 1, 10, 10, 10],
                "y": ["only", "only", "only", "p", "q", "r"],
            }
        )
        context = SDLQuery.over(["x", "y"])
        first = cut_query(engine, context, "x")
        second = cut_segmentation(engine, first, "y")
        assert second.depth == 3
        assert check_partition(engine, second).is_partition

    def test_strict_mode_raises_when_nothing_can_be_cut(self):
        engine = _engine({"x": [1, 1, 2, 2], "y": ["a"] * 4})
        first = cut_query(engine, SDLQuery.over(["x", "y"]), "x")
        with pytest.raises(CannotCutError):
            cut_segmentation(engine, first, "y", strict=True)

    def test_non_strict_mode_keeps_partition_when_nothing_can_be_cut(self):
        engine = _engine({"x": [1, 1, 2, 2], "y": ["a"] * 4})
        first = cut_query(engine, SDLQuery.over(["x", "y"]), "x")
        unchanged = cut_segmentation(engine, first, "y")
        assert unchanged.depth == first.depth
        assert unchanged.cut_attributes == ("x",)

    def test_repeated_cut_on_same_attribute_refines_ranges(self):
        engine = _engine({"x": list(range(32))})
        context = SDLQuery.over(["x"])
        once = cut_query(engine, context, "x")
        twice = cut_segmentation(engine, once, "x")
        assert twice.depth == 4
        assert check_partition(engine, twice).is_partition
        # Each piece must be a strictly narrower range than its parent.
        widths = []
        for segment in twice.segments:
            predicate = segment.query.predicate_for("x")
            widths.append(predicate.high - predicate.low)
        assert max(widths) < 31
