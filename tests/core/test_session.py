"""Unit tests for interactive exploration sessions."""

from __future__ import annotations

import pytest

from repro.core import Charles, ExplorationSession, ExplorationStep
from repro.errors import SessionError


@pytest.fixture()
def session(voc_table) -> ExplorationSession:
    return ExplorationSession(Charles(voc_table), max_answers=5)


class TestLifecycle:
    def test_current_before_start_raises(self, session):
        with pytest.raises(SessionError):
            _ = session.current
        assert not session.started

    def test_start_returns_advice(self, session):
        advice = session.start(["type_of_boat", "departure_harbour", "tonnage"])
        assert len(advice) >= 1
        assert session.started
        assert session.depth == 0

    def test_advise_is_cached_per_step(self, session):
        session.start(["type_of_boat", "tonnage"])
        first = session.advise()
        second = session.advise()
        assert first is second

    def test_restart_resets_the_stack(self, session):
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 0)
        session.start(["type_of_boat", "tonnage"])
        assert session.depth == 0


class TestDrill:
    def test_drill_narrows_the_context(self, session):
        session.start(["type_of_boat", "departure_harbour", "tonnage"])
        root_count = session.advisor.count(session.context)
        advice = session.advise()
        session.drill(0, 0)
        assert session.depth == 1
        drilled_count = session.advisor.count(session.context)
        assert drilled_count < root_count
        expected = advice.answers[0].segmentation.segments[0].count
        assert drilled_count == expected

    def test_drill_records_choice(self, session):
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 1)
        history = session.history()
        assert history[0].chosen_answer == 0
        assert history[0].chosen_segment == 1

    def test_drill_out_of_range_answer(self, session):
        session.start(["type_of_boat", "tonnage"])
        with pytest.raises(SessionError):
            session.drill(99, 0)

    def test_drill_out_of_range_segment(self, session):
        session.start(["type_of_boat", "tonnage"])
        with pytest.raises(SessionError):
            session.drill(0, 99)

    def test_repeated_drill_goes_deeper(self, session):
        session.start(["type_of_boat", "departure_harbour", "tonnage"])
        session.drill(0, 0)
        session.drill(0, 0)
        assert session.depth == 2
        assert len(session.breadcrumbs()) == 3


class TestBack:
    def test_back_restores_previous_context(self, session):
        session.start(["type_of_boat", "tonnage"])
        root_context = session.context
        session.drill(0, 0)
        restored = session.back()
        assert restored == root_context
        assert session.depth == 0

    def test_back_clears_the_recorded_choice(self, session):
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 0)
        session.back()
        assert session.current.chosen_answer is None

    def test_back_at_root_raises(self, session):
        session.start(["type_of_boat", "tonnage"])
        with pytest.raises(SessionError):
            session.back()


class TestReporting:
    def test_breadcrumbs_start_at_root(self, session):
        session.start(["type_of_boat", "tonnage"])
        assert session.breadcrumbs() == ["(root)"]
        session.drill(0, 0)
        crumbs = session.breadcrumbs()
        assert len(crumbs) == 2
        assert crumbs[1] != "(root)"

    def test_describe_lists_levels(self, session):
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 0)
        text = session.describe()
        assert "level 0" in text
        assert "level 1" in text

    def test_describe_before_start(self):
        session = ExplorationSession.__new__(ExplorationSession)
        session.advisor = None  # type: ignore[assignment]
        session.max_answers = 5
        session._stack = []
        assert "not started" in session.describe()


class TestDescribeCountRouting:
    """Satellite regression: describe() must not bypass the service path."""

    def test_counts_served_from_advice_without_engine_calls(self, voc_table):
        from repro.core import Charles

        advisor = Charles(voc_table)
        session = ExplorationSession(advisor, max_answers=5)
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 0)
        before = advisor.engine.counter.count_calls
        first = session.describe()
        second = session.describe()
        # Every step carries advice, whose context_count answers describe();
        # repeated calls are cached per step, so no count is ever issued.
        assert advisor.engine.counter.count_calls == before
        assert first == second

    def test_count_fn_routes_counts_when_no_advice_exists(self, voc_table):
        from repro.core import Charles
        from repro.sdl import SDLQuery

        advisor = Charles(voc_table)
        routed = []

        def count_fn(context: SDLQuery) -> int:
            routed.append(context)
            return advisor.engine.count(context)

        session = ExplorationSession(advisor, max_answers=5, count_fn=count_fn)
        session._stack = [ExplorationStep(context=advisor.resolve_context(["tonnage"]))]
        text = session.describe()
        assert "level 0" in text
        assert len(routed) == 1
        session.describe()
        assert len(routed) == 1  # cached on the step

    def test_service_sessions_route_describe_through_shared_engine(self, voc_table):
        from repro.service import AdvisorService

        service = AdvisorService(voc_table)
        session = service.open_session("cli", context=["type_of_boat", "tonnage"])
        exploration = session.exploration
        assert exploration.count_fn is not None
        private_before = session.advisor.engine.counter.count_calls
        session.describe()
        # The session's private engine is never consulted for describe().
        assert session.advisor.engine.counter.count_calls == private_before
