"""Unit tests for the baseline segmentation strategies (E9 comparators)."""

from __future__ import annotations

import pytest

from repro.core import (
    all_facet_segmentations,
    breadth,
    clique_like_segmentation,
    entropy,
    facet_segmentation,
    full_product_segmentation,
    random_segmentation,
    simplicity,
)
from repro.errors import CannotCutError, SegmentationError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1200, seed=4))


@pytest.fixture(scope="module")
def context() -> SDLQuery:
    return SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])


class TestFacetSegmentation:
    def test_nominal_facet_one_segment_per_value(self, engine, context):
        segmentation = facet_segmentation(engine, context, "type_of_boat")
        frequencies = engine.value_frequencies("type_of_boat", context)
        assert segmentation.depth == len(frequencies)
        assert check_partition(engine, segmentation).is_partition

    def test_nominal_facet_merges_long_tail(self, engine, context):
        segmentation = facet_segmentation(engine, context, "type_of_boat", max_groups=3)
        assert segmentation.depth == 3
        assert check_partition(engine, segmentation).is_partition

    def test_numeric_facet_uses_equal_width_bins(self, engine, context):
        segmentation = facet_segmentation(engine, context, "tonnage", max_groups=5)
        assert 2 <= segmentation.depth <= 5
        assert check_partition(engine, segmentation).is_partition

    def test_facet_simplicity_is_one(self, engine, context):
        segmentation = facet_segmentation(engine, context, "departure_harbour")
        assert simplicity(segmentation) == 1
        assert breadth(segmentation) == 1

    def test_constant_column_rejected(self):
        engine = QueryEngine(Table.from_dict({"c": ["x"] * 5, "y": [1, 2, 3, 4, 5]}))
        with pytest.raises(CannotCutError):
            facet_segmentation(engine, SDLQuery.over(["c", "y"]), "c")

    def test_all_facets_skip_unusable_columns(self):
        engine = QueryEngine(
            Table.from_dict({"c": ["x"] * 6, "y": [1, 2, 3, 4, 5, 6], "t": list("aabbcc")})
        )
        segmentations = all_facet_segmentations(engine, SDLQuery.over(["c", "y", "t"]))
        assert {s.cut_attributes[0] for s in segmentations} == {"y", "t"}


class TestRandomSegmentation:
    def test_reaches_requested_depth(self, engine, context):
        segmentation = random_segmentation(engine, context, depth=4, seed=1)
        assert segmentation.depth >= 4
        assert check_partition(engine, segmentation).is_partition

    def test_deterministic_given_seed(self, engine, context):
        first = random_segmentation(engine, context, depth=4, seed=42)
        second = random_segmentation(engine, context, depth=4, seed=42)
        assert first.cut_attributes == second.cut_attributes
        assert first.counts == second.counts

    def test_no_cuttable_attribute_raises(self):
        engine = QueryEngine(Table.from_dict({"c": ["x"] * 5}))
        with pytest.raises(SegmentationError):
            random_segmentation(engine, SDLQuery.over(["c"]), seed=1)


class TestFullProduct:
    def test_grows_exponentially_with_attributes(self, engine, context):
        product_segmentation = full_product_segmentation(engine, context)
        # Three binary cuts: up to 8 cells, at least more than one cut's worth.
        assert product_segmentation.depth > 4
        assert check_partition(engine, product_segmentation).is_partition

    def test_max_depth_aborts_growth(self, engine):
        wide_context = SDLQuery.over(
            ["type_of_boat", "departure_harbour", "tonnage", "built", "yard"]
        )
        bounded = full_product_segmentation(engine, wide_context, max_depth=8)
        unbounded = full_product_segmentation(engine, wide_context)
        assert bounded.depth <= unbounded.depth

    def test_no_cuttable_attribute_raises(self):
        engine = QueryEngine(Table.from_dict({"c": ["x"] * 5}))
        with pytest.raises(SegmentationError):
            full_product_segmentation(engine, SDLQuery.over(["c"]))


class TestCliqueLike:
    def test_returns_dense_cells_only(self, engine, context):
        segmentation = clique_like_segmentation(
            engine, context, bins=3, density_threshold=0.05, max_cells=6
        )
        assert segmentation.depth <= 6
        total = segmentation.context_count
        for segment in segmentation.segments:
            assert segment.count / total >= 0.05
        # By design the dense-cell summary is usually not exhaustive.
        assert segmentation.covered_count <= total

    def test_threshold_too_high_raises(self, engine, context):
        with pytest.raises(SegmentationError):
            clique_like_segmentation(engine, context, density_threshold=0.99)

    def test_cells_ordered_by_density(self, engine, context):
        segmentation = clique_like_segmentation(engine, context, bins=3, max_cells=5)
        counts = list(segmentation.counts)
        assert counts == sorted(counts, reverse=True)


class TestComparativeBehaviour:
    def test_hbcuts_beats_random_on_balance(self, engine, context):
        from repro.core import HBCuts

        best = HBCuts().run(engine, context).best()
        random_baseline = random_segmentation(engine, context, depth=best.depth, seed=3)
        from repro.core import balance

        assert balance(best) >= balance(random_baseline) - 0.1

    def test_facets_have_lower_breadth_than_hbcuts_best(self, engine, context):
        from repro.core import HBCuts

        best = HBCuts().run(engine, context).best()
        facets = all_facet_segmentations(engine, context)
        assert max(breadth(f) for f in facets) == 1
        assert breadth(best) >= 2

    def test_entropy_defined_for_every_baseline(self, engine, context):
        candidates = [
            facet_segmentation(engine, context, "type_of_boat"),
            random_segmentation(engine, context, depth=4, seed=0),
            full_product_segmentation(engine, context, max_depth=16),
            clique_like_segmentation(engine, context, bins=3),
        ]
        for segmentation in candidates:
            assert entropy(segmentation) >= 0.0
