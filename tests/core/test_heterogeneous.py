"""Unit tests for heterogeneous segmentations (Section 5.2 extension)."""

from __future__ import annotations

import pytest

from repro.core import (
    HBCuts,
    entropy,
    greedy_heterogeneous,
    randomized_heterogeneous,
)
from repro.errors import SegmentationError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1500, seed=6))


@pytest.fixture(scope="module")
def context() -> SDLQuery:
    return SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])


def _cut_attribute_of(segment):
    """The attributes a segment actually constrains (beyond the context)."""
    return tuple(p.attribute for p in segment.query.predicates if p.is_constrained)


class TestGreedyHeterogeneous:
    def test_produces_a_valid_partition(self, engine, context):
        segmentation = greedy_heterogeneous(engine, context, max_depth=8)
        assert 2 <= segmentation.depth <= 8
        assert check_partition(engine, segmentation).is_partition
        assert sum(segmentation.counts) == segmentation.context_count

    def test_pieces_may_use_different_attributes(self, engine, context):
        # The defining feature of the extension: unlike HB-cuts, two pieces
        # of the same answer can constrain different attribute sets.
        segmentation = greedy_heterogeneous(engine, context, max_depth=8)
        attribute_sets = {_cut_attribute_of(segment) for segment in segmentation.segments}
        assert len(attribute_sets) >= 2

    def test_trace_records_each_step(self, engine, context):
        segmentation, trace = greedy_heterogeneous(
            engine, context, max_depth=6, return_trace=True
        )
        assert len(trace.steps) == segmentation.depth - 1
        assert trace.candidate_evaluations >= len(trace.steps)
        entropies = [step[2] for step in trace.steps]
        assert entropies == sorted(entropies), "entropy grows monotonically"

    def test_entropy_not_worse_than_hbcuts_at_same_depth(self, engine, context):
        hb_best = HBCuts().run(engine, context).best()
        heterogeneous = greedy_heterogeneous(engine, context, max_depth=hb_best.depth)
        assert entropy(heterogeneous) >= entropy(hb_best) - 0.05

    def test_respects_attribute_restriction(self, engine, context):
        segmentation = greedy_heterogeneous(
            engine, context, attributes=["tonnage"], max_depth=4
        )
        for segment in segmentation.segments:
            assert set(_cut_attribute_of(segment)) <= {"tonnage"}

    def test_uncuttable_context_raises(self):
        table = Table.from_dict({"constant": ["x"] * 10})
        with pytest.raises(SegmentationError):
            greedy_heterogeneous(QueryEngine(table), SDLQuery.over(["constant"]))

    def test_empty_context_raises(self, engine):
        with pytest.raises(SegmentationError):
            greedy_heterogeneous(engine, SDLQuery())


class TestRandomizedHeterogeneous:
    def test_produces_a_valid_partition(self, engine, context):
        segmentation = randomized_heterogeneous(engine, context, max_depth=8, seed=1)
        assert 2 <= segmentation.depth <= 8
        assert check_partition(engine, segmentation).is_partition

    def test_deterministic_given_seed(self, engine, context):
        first = randomized_heterogeneous(engine, context, max_depth=6, seed=42)
        second = randomized_heterogeneous(engine, context, max_depth=6, seed=42)
        assert first.counts == second.counts
        assert first.queries == second.queries

    def test_fewer_candidate_evaluations_than_greedy(self, engine, context):
        _, greedy_trace = greedy_heterogeneous(
            engine, context, max_depth=8, return_trace=True
        )
        _, random_trace = randomized_heterogeneous(
            engine, context, max_depth=8, seed=3, samples_per_step=3, return_trace=True
        )
        assert random_trace.candidate_evaluations < greedy_trace.candidate_evaluations

    def test_invalid_samples_per_step(self, engine, context):
        with pytest.raises(SegmentationError):
            randomized_heterogeneous(engine, context, samples_per_step=0)

    def test_uncuttable_context_raises(self):
        table = Table.from_dict({"constant": ["x"] * 10})
        with pytest.raises(SegmentationError):
            randomized_heterogeneous(QueryEngine(table), SDLQuery.over(["constant"]), seed=1)

    def test_entropy_reasonably_close_to_greedy(self, engine, context):
        greedy = greedy_heterogeneous(engine, context, max_depth=8)
        randomized = randomized_heterogeneous(
            engine, context, max_depth=8, seed=7, samples_per_step=4
        )
        assert entropy(randomized) >= 0.6 * entropy(greedy)
