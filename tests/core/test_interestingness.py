"""Unit tests for interestingness / surprise scoring (Section 5.2 extension)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Charles,
    SurpriseRanker,
    cut_query,
    divergence_from_counts,
    segment_surprise,
    segmentation_interestingness,
)
from repro.sdl import SDLQuery, SetPredicate
from repro.storage import QueryEngine, Table
from repro.workloads import generate_voc, make_independent_table


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1500, seed=8))


class TestDivergence:
    def test_identical_distributions_have_zero_divergence(self):
        counts = {"a": 10, "b": 30}
        assert divergence_from_counts(counts, counts) == pytest.approx(0.0)

    def test_scaled_distributions_have_zero_divergence(self):
        assert divergence_from_counts({"a": 1, "b": 3}, {"a": 10, "b": 30}) == pytest.approx(0.0)

    def test_disjoint_supports_reach_log_two(self):
        assert divergence_from_counts({"a": 10}, {"b": 10}) == pytest.approx(math.log(2))

    def test_bounded_and_symmetric(self):
        first = {"a": 8, "b": 2}
        second = {"a": 2, "b": 8}
        forward = divergence_from_counts(first, second)
        backward = divergence_from_counts(second, first)
        assert forward == pytest.approx(backward)
        assert 0.0 < forward < math.log(2)

    def test_empty_histograms(self):
        assert divergence_from_counts({}, {}) == 0.0
        assert divergence_from_counts({"a": 1}, {}) == 0.0


class TestSegmentSurprise:
    def test_boat_type_segment_shifts_the_tonnage_distribution(self, engine):
        context = SDLQuery.over(["type_of_boat", "tonnage"])
        heavy = context.refine(SetPredicate("type_of_boat", frozenset({"hoeker", "galjoot"})))
        surprise = segment_surprise(engine, heavy, context, "tonnage")
        assert surprise > 0.1

    def test_whole_context_is_not_surprising(self, engine):
        context = SDLQuery.over(["type_of_boat", "tonnage"])
        assert segment_surprise(engine, context, context, "tonnage") == pytest.approx(0.0)


class TestSegmentationInterestingness:
    def test_dependent_probe_attribute_is_interesting(self, engine):
        # Cutting on the boat type implies a lot about the tonnage, which is
        # exactly what the probe-attribute surprise measures.
        context = SDLQuery.over(["type_of_boat", "tonnage"])
        by_type = cut_query(engine, context, "type_of_boat")
        score = segmentation_interestingness(engine, by_type, probe_attributes=["tonnage"])
        assert score > 0.1

    def test_independent_probe_attribute_is_boring(self):
        table = make_independent_table(rows=3000, cardinalities=(4, 4), seed=2)
        engine = QueryEngine(table)
        context = SDLQuery.over(["a0", "a1"])
        by_a0 = cut_query(engine, context, "a0")
        score = segmentation_interestingness(engine, by_a0, probe_attributes=["a1"])
        assert score < 0.02

    def test_default_probe_excludes_cut_attributes(self, engine):
        context = SDLQuery.over(["type_of_boat", "tonnage", "departure_harbour"])
        by_type = cut_query(engine, context, "type_of_boat")
        default_score = segmentation_interestingness(engine, by_type)
        explicit = segmentation_interestingness(
            engine, by_type, probe_attributes=["tonnage", "departure_harbour"]
        )
        assert default_score == pytest.approx(explicit)

    def test_no_probe_attributes_gives_zero(self, engine):
        context = SDLQuery.over(["type_of_boat"])
        by_type = cut_query(engine, context, "type_of_boat")
        assert segmentation_interestingness(engine, by_type, probe_attributes=[]) == 0.0


class TestSurpriseRanker:
    def test_requires_an_engine(self):
        with pytest.raises(ValueError):
            SurpriseRanker(engine=None)

    def test_negative_weight_rejected(self, engine):
        with pytest.raises(ValueError):
            SurpriseRanker(engine=engine, surprise_weight=-1.0)

    def test_zero_weight_matches_entropy_order(self, engine):
        context = SDLQuery.over(["type_of_boat", "tonnage", "departure_harbour"])
        candidates = [
            cut_query(engine, context, attribute)
            for attribute in ("type_of_boat", "tonnage", "departure_harbour")
        ]
        from repro.core import EntropyRanker

        entropy_order = [seg for seg, _ in EntropyRanker().rank(candidates)]
        surprise_order = [
            seg for seg, _ in SurpriseRanker(engine=engine, surprise_weight=0.0).rank(candidates)
        ]
        assert entropy_order == surprise_order

    def test_surprise_bonus_can_change_the_order(self, engine):
        context = SDLQuery.over(["type_of_boat", "tonnage", "departure_harbour", "master"])
        # 'master' is independent of everything: cutting on it reveals nothing.
        by_master = cut_query(engine, context, "master")
        by_type = cut_query(engine, context, "type_of_boat")
        ranker = SurpriseRanker(engine=engine, surprise_weight=5.0,
                                probe_attributes=["tonnage"])
        ranked = ranker.rank([by_master, by_type])
        assert ranked[0][0] is by_type

    def test_plugs_into_the_advisor(self, engine):
        advisor = Charles(engine, ranker=SurpriseRanker(engine=engine, surprise_weight=1.0))
        advice = advisor.advise(
            ["type_of_boat", "tonnage", "departure_harbour"], max_answers=4
        )
        assert advice.ranker_name == "surprise"
        scores = [answer.score for answer in advice]
        assert scores == sorted(scores, reverse=True)
