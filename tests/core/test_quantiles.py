"""Unit tests for the quantile-cut extension (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core import equal_frequency_segmentation, quantile_cut_query, quantile_points
from repro.errors import CannotCutError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import make_gaussian_table, make_zipf_table


def _engine(data: dict) -> QueryEngine:
    return QueryEngine(Table.from_dict(data, name="t"))


class TestQuantilePoints:
    def test_terciles_of_uniform_range(self):
        points = quantile_points(list(range(1, 301)), [1 / 3, 2 / 3])
        assert points[0] == pytest.approx(100, abs=2)
        assert points[1] == pytest.approx(200, abs=2)

    def test_duplicate_points_removed(self):
        points = quantile_points([1] * 50 + [2] * 50, [0.1, 0.2, 0.3])
        assert points == [1]

    def test_empty_values_rejected(self):
        with pytest.raises(CannotCutError):
            quantile_points([], [0.5])

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(CannotCutError):
            quantile_points([1, 2, 3], [1.5])


class TestNumericQuantileCut:
    def test_tercile_cut_produces_three_pieces(self):
        engine = _engine({"x": list(range(90))})
        segmentation = quantile_cut_query(engine, SDLQuery.over(["x"]), "x")
        assert segmentation.depth == 3
        assert check_partition(engine, segmentation).is_partition
        assert max(segmentation.counts) - min(segmentation.counts) <= 2

    def test_quartile_cut(self):
        engine = _engine({"x": list(range(100))})
        segmentation = equal_frequency_segmentation(engine, SDLQuery.over(["x"]), "x", pieces=4)
        assert segmentation.depth == 4
        assert check_partition(engine, segmentation).is_partition

    def test_gaussian_middle_third_is_isolatable(self):
        # The paper's motivating example: the dense middle of a Gaussian
        # should be a single segment under tercile cuts.
        engine = QueryEngine(make_gaussian_table(rows=4000, mean=100.0, std=15.0, seed=1))
        segmentation = quantile_cut_query(engine, SDLQuery.over(["value"]), "value")
        assert segmentation.depth == 3
        middle = segmentation.segments[1]
        low = middle.query.predicate_for("value").low
        high = middle.query.predicate_for("value").high
        assert 90 < low < 100 < high < 110

    def test_single_value_rejected(self):
        engine = _engine({"x": [5, 5, 5]})
        with pytest.raises(CannotCutError):
            quantile_cut_query(engine, SDLQuery.over(["x"]), "x")

    def test_empty_context_rejected(self):
        engine = _engine({"x": [1, 2, 3]})
        from repro.sdl import RangePredicate

        context = SDLQuery([RangePredicate("x", 50, 60)])
        with pytest.raises(CannotCutError):
            quantile_cut_query(engine, context, "x")

    def test_invalid_pieces_rejected(self):
        engine = _engine({"x": [1, 2, 3, 4]})
        with pytest.raises(CannotCutError):
            equal_frequency_segmentation(engine, SDLQuery.over(["x"]), "x", pieces=1)

    def test_skewed_data_collapses_gracefully(self):
        # 80% of the mass on one value: some quantile points coincide, the
        # cut still returns at least two valid pieces.
        engine = _engine({"x": [1] * 80 + list(range(2, 22))})
        segmentation = equal_frequency_segmentation(engine, SDLQuery.over(["x"]), "x", pieces=4)
        assert segmentation.depth >= 2
        assert check_partition(engine, segmentation).is_partition


class TestNominalQuantileCut:
    def test_zipf_categories_grouped_by_frequency(self):
        engine = QueryEngine(make_zipf_table(rows=3000, exponent=1.4, categories=12, seed=2))
        segmentation = quantile_cut_query(
            engine, SDLQuery.over(["category", "score"]), "category", quantiles=[1 / 3, 2 / 3]
        )
        assert 2 <= segmentation.depth <= 3
        assert check_partition(engine, segmentation).is_partition

    def test_two_value_column(self):
        engine = _engine({"t": ["a"] * 30 + ["b"] * 70})
        segmentation = quantile_cut_query(engine, SDLQuery.over(["t"]), "t", quantiles=[0.5])
        assert segmentation.depth == 2

    def test_single_value_rejected(self):
        engine = _engine({"t": ["only"] * 10})
        with pytest.raises(CannotCutError):
            quantile_cut_query(engine, SDLQuery.over(["t"]), "t")
