"""Unit tests for the COMPOSE primitive (Definition 7)."""

from __future__ import annotations

import pytest

from repro.core import compose, cut_query
from repro.errors import CompositionError
from repro.sdl import RangePredicate, SDLQuery, Segment, Segmentation, check_partition
from repro.storage import QueryEngine, Table


def _dependent_engine() -> QueryEngine:
    # type determines the tonnage band, as in Figure 2.
    rows = []
    for index in range(20):
        rows.append({"type": "fluit", "tonnage": 1000 + 50 * index, "year": 1700 + index})
    for index in range(20):
        rows.append({"type": "jacht", "tonnage": 3000 + 50 * index, "year": 1750 + index})
    return QueryEngine(Table.from_rows(rows, name="boats"))


class TestCompose:
    def test_composition_cuts_on_both_attribute_sets(self):
        engine = _dependent_engine()
        context = SDLQuery.over(["type", "tonnage", "year"])
        by_type = cut_query(engine, context, "type")
        by_tonnage = cut_query(engine, context, "tonnage")
        composed = compose(engine, by_type, by_tonnage)
        assert set(composed.cut_attributes) == {"type", "tonnage"}
        assert composed.depth == 4
        assert check_partition(engine, composed).is_partition

    def test_composition_adapts_split_points_per_piece(self):
        engine = _dependent_engine()
        context = SDLQuery.over(["type", "tonnage"])
        by_type = cut_query(engine, context, "type")
        by_tonnage = cut_query(engine, context, "tonnage")
        composed = compose(engine, by_type, by_tonnage)
        # The tonnage ranges used inside the fluit pieces must be disjoint
        # from those used inside the jacht pieces (medians are local).
        fluit_bounds = []
        jacht_bounds = []
        for segment in composed.segments:
            type_predicate = segment.query.predicate_for("type")
            tonnage_predicate = segment.query.predicate_for("tonnage")
            if "fluit" in type_predicate.values:
                fluit_bounds.append(tonnage_predicate.high)
            else:
                jacht_bounds.append(tonnage_predicate.high)
        assert max(fluit_bounds) < min(jacht_bounds)

    def test_composition_with_multi_attribute_second_operand(self):
        engine = _dependent_engine()
        context = SDLQuery.over(["type", "tonnage", "year"])
        by_type = cut_query(engine, context, "type")
        by_tonnage = cut_query(engine, context, "tonnage")
        by_year = cut_query(engine, context, "year")
        two_attribute = compose(engine, by_tonnage, by_year)
        composed = compose(engine, by_type, two_attribute)
        assert set(composed.cut_attributes) == {"type", "tonnage", "year"}
        assert check_partition(engine, composed).is_partition

    def test_requires_same_context(self):
        engine = _dependent_engine()
        first_context = SDLQuery.over(["type", "tonnage"])
        second_context = SDLQuery.over(["tonnage", "year"])
        first = cut_query(engine, first_context, "type")
        second = cut_query(engine, second_context, "tonnage")
        with pytest.raises(CompositionError):
            compose(engine, first, second)

    def test_requires_cut_attributes_on_second_operand(self):
        engine = _dependent_engine()
        context = SDLQuery.over(["type", "tonnage"])
        first = cut_query(engine, context, "type")
        bare = Segmentation(
            context,
            [Segment(context, engine.count(context))],
            cut_attributes=(),
        )
        with pytest.raises(CompositionError):
            compose(engine, first, bare)

    def test_counts_still_cover_context(self):
        engine = _dependent_engine()
        context = SDLQuery.over(["type", "tonnage"])
        composed = compose(
            engine,
            cut_query(engine, context, "type"),
            cut_query(engine, context, "tonnage"),
        )
        assert sum(composed.counts) == engine.count(context)

    def test_compose_within_constrained_context(self):
        engine = _dependent_engine()
        context = SDLQuery(
            [RangePredicate("year", 1700, 1750), SDLQuery.over(["type", "tonnage"]).predicates[0],
             SDLQuery.over(["type", "tonnage"]).predicates[1]]
        )
        by_type = cut_query(engine, context, "type")
        by_tonnage = cut_query(engine, context, "tonnage")
        composed = compose(engine, by_type, by_tonnage)
        assert composed.context_count == engine.count(context)
        assert check_partition(engine, composed).is_partition
