"""Unit tests for lazy segmentation generation (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core import HBCuts, HBCutsConfig, LazyAdvisor, entropy
from repro.errors import AdvisorError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def engine() -> QueryEngine:
    return QueryEngine(generate_voc(rows=1200, seed=9))


@pytest.fixture(scope="module")
def context() -> SDLQuery:
    return SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage"])


class TestStream:
    def test_first_answers_are_single_attribute_cuts(self, engine, context):
        advisor = LazyAdvisor(engine)
        stream = advisor.stream(context)
        first = next(stream)
        second = next(stream)
        assert len(first.cut_attributes) == 1
        assert len(second.cut_attributes) == 1

    def test_later_answers_are_compositions(self, engine, context):
        advisor = LazyAdvisor(engine)
        produced = list(advisor.stream(context))
        assert any(len(segmentation.cut_attributes) >= 2 for segmentation in produced)

    def test_all_answers_are_valid_partitions(self, engine, context):
        advisor = LazyAdvisor(engine)
        for segmentation in advisor.stream(context):
            assert check_partition(engine, segmentation).is_partition

    def test_stream_respects_stopping_rules(self, engine, context):
        advisor = LazyAdvisor(engine, HBCutsConfig(max_depth=4))
        for segmentation in advisor.stream(context):
            assert segmentation.depth <= 4

    def test_empty_context_rejected(self, engine):
        advisor = LazyAdvisor(engine)
        with pytest.raises(AdvisorError):
            next(advisor.stream(SDLQuery()))


class TestBatchingHelpers:
    def test_next_batch_respects_size(self, engine, context):
        advisor = LazyAdvisor(engine)
        stream = advisor.stream(context)
        batch = advisor.next_batch(stream, 2)
        assert len(batch) == 2

    def test_next_batch_on_exhausted_stream(self, engine, context):
        advisor = LazyAdvisor(engine)
        stream = advisor.stream(context)
        everything = advisor.next_batch(stream, 100)
        assert advisor.next_batch(stream, 5) == []
        assert len(everything) >= 3

    def test_first_answer_probe(self, engine, context):
        advisor = LazyAdvisor(engine)
        first = advisor.first_answer(context)
        assert first.depth == 2

    def test_first_answer_with_uncuttable_context(self):
        table = Table.from_dict({"constant": ["same"] * 10})
        advisor = LazyAdvisor(QueryEngine(table))
        with pytest.raises(AdvisorError):
            advisor.first_answer(SDLQuery.over(["constant"]))

    def test_top_returns_best_entropy_first(self, engine, context):
        advisor = LazyAdvisor(engine)
        top = advisor.top(context, count=3)
        assert len(top) <= 3
        entropies = [entropy(segmentation) for segmentation in top]
        assert entropies == sorted(entropies, reverse=True)


class TestConsistencyWithEagerAdvisor:
    def test_lazy_stream_covers_the_eager_initial_cuts(self, engine, context):
        lazy_segmentations = list(LazyAdvisor(engine).stream(context))
        eager = HBCuts().run(engine, context)
        lazy_single = {
            segmentation.cut_attributes
            for segmentation in lazy_segmentations
            if len(segmentation.cut_attributes) == 1
        }
        eager_single = {
            segmentation.cut_attributes
            for segmentation in eager.segmentations
            if len(segmentation.cut_attributes) == 1
        }
        assert lazy_single == eager_single

    def test_lazy_issues_fewer_operations_for_the_first_answer(self, engine, context):
        eager_engine = QueryEngine(engine.table)
        HBCuts().run(eager_engine, context)
        eager_operations = eager_engine.counter.total_database_operations

        lazy_engine = QueryEngine(engine.table)
        LazyAdvisor(lazy_engine).first_answer(context)
        lazy_operations = lazy_engine.counter.total_database_operations
        assert lazy_operations < eager_operations
