"""Unit tests for advice / session provenance records."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.core import (
    Charles,
    ExplorationSession,
    advice_record,
    answer_record,
    segmentation_record,
    session_record,
    session_to_json,
)
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def advisor() -> Charles:
    return Charles(generate_voc(rows=800, seed=15))


@pytest.fixture(scope="module")
def advice(advisor):
    return advisor.advise(["type_of_boat", "departure_harbour", "tonnage"], max_answers=3)


class TestSegmentationRecord:
    def test_carries_sdl_sql_and_counts(self, advice):
        record = segmentation_record(advice.best().segmentation, table_name="voc")
        assert record["context"].startswith("(")
        assert record["cut_attributes"]
        assert len(record["segments"]) == advice.best().segmentation.depth
        first = record["segments"][0]
        assert first["sql"].startswith('SELECT * FROM "voc"')
        assert first["rows"] > 0
        assert 0.0 < first["cover"] <= 1.0

    def test_covers_sum_to_one(self, advice):
        record = segmentation_record(advice.best().segmentation)
        assert sum(segment["cover"] for segment in record["segments"]) == pytest.approx(
            1.0, abs=1e-4
        )

    def test_sql_is_executable(self, advisor, advice):
        table = advisor.table
        connection = sqlite3.connect(":memory:")
        columns = ", ".join(f'"{name}"' for name in table.column_names)
        placeholders = ", ".join("?" for _ in table.column_names)
        connection.execute(f"CREATE TABLE voc ({columns})")
        connection.executemany(
            f"INSERT INTO voc VALUES ({placeholders})",
            [tuple(row[name] for name in table.column_names) for row in table.iter_rows()],
        )
        record = segmentation_record(advice.best().segmentation, table_name="voc")
        for segment in record["segments"]:
            count = connection.execute(
                f"SELECT COUNT(*) FROM voc WHERE {segment['where']}"
            ).fetchone()[0]
            assert count == segment["rows"]
        connection.close()


class TestAnswerAndAdviceRecords:
    def test_answer_record_fields(self, advice):
        record = answer_record(advice.best(), table_name="voc")
        assert record["rank"] == 1
        assert set(record["metrics"]) >= {"entropy", "breadth", "simplicity"}
        assert record["attributes"]

    def test_advice_record_lists_every_answer(self, advice):
        record = advice_record(advice, table_name="voc")
        assert len(record["answers"]) == len(advice.answers)
        assert record["ranker"] == "entropy"
        assert record["database_operations"] > 0

    def test_advice_record_is_json_serialisable(self, advice):
        text = json.dumps(advice_record(advice))
        assert "entropy" in text


class TestSessionRecord:
    def test_records_every_level_and_choice(self, advisor):
        session = ExplorationSession(advisor, max_answers=3)
        session.start(["type_of_boat", "departure_harbour", "tonnage"])
        session.drill(0, 0)
        record = session_record(session)
        assert record["depth"] == 1
        assert len(record["steps"]) == 2
        root, drilled = record["steps"]
        assert root["chosen_answer"] == 0
        assert root["chosen_segment"] == 0
        assert drilled["chosen_answer"] is None
        assert drilled["rows"] < root["rows"]
        assert record["breadcrumbs"][0] == "(root)"

    def test_root_step_carries_the_advice(self, advisor):
        session = ExplorationSession(advisor, max_answers=3)
        session.start(["type_of_boat", "tonnage"])
        session.advise()
        record = session_record(session)
        assert "advice" in record["steps"][0]

    def test_json_round_trip(self, advisor):
        session = ExplorationSession(advisor, max_answers=3)
        session.start(["type_of_boat", "tonnage"])
        session.drill(0, 1)
        text = session_to_json(session)
        parsed = json.loads(text)
        assert parsed["table"] == advisor.table.name
        assert parsed["depth"] == 1
