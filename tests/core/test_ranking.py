"""Unit tests for the ranking policies."""

from __future__ import annotations

import pytest

from repro.core import (
    EntropyRanker,
    LexicographicRanker,
    WeightedRanker,
    rank_segmentations,
    score_segmentation,
)
from repro.errors import AdvisorError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, Segment, Segmentation


def _segmentation(counts, cut_attributes=("x",)) -> Segmentation:
    context = SDLQuery([NoConstraint("x"), NoConstraint("y")])
    segments = []
    low = 0
    for count in counts:
        query = context.refine(RangePredicate("x", low, low + 9))
        segments.append(Segment(query, count))
        low += 10
    return Segmentation(context, segments, cut_attributes=cut_attributes)


@pytest.fixture()
def candidates():
    return [
        _segmentation([50, 50]),                                 # 2 balanced pieces
        _segmentation([25, 25, 25, 25], cut_attributes=("x", "y")),  # 4 balanced pieces
        _segmentation([97, 1, 1, 1], cut_attributes=("x", "y")),     # 4 skewed pieces
    ]


class TestEntropyRanker:
    def test_highest_entropy_first(self, candidates):
        ranked = EntropyRanker().rank(candidates)
        assert ranked[0][0] is candidates[1]
        assert ranked[-1][0] is candidates[2]

    def test_rank_segmentations_defaults_to_entropy(self, candidates):
        assert rank_segmentations(candidates)[0][0] is candidates[1]

    def test_scores_are_attached(self, candidates):
        ranked = EntropyRanker().rank(candidates)
        for segmentation, scores in ranked:
            assert scores == score_segmentation(segmentation)


class TestWeightedRanker:
    def test_breadth_weight_changes_the_order(self, candidates):
        narrow_deep = _segmentation([25, 25, 25, 25], cut_attributes=("x",))
        broad_shallow = _segmentation([40, 60], cut_attributes=("x", "y"))
        entropy_only = WeightedRanker(entropy_weight=1.0, breadth_weight=0.0,
                                      simplicity_weight=0.0)
        breadth_heavy = WeightedRanker(entropy_weight=0.1, breadth_weight=2.0,
                                       simplicity_weight=0.0)
        assert entropy_only.rank([narrow_deep, broad_shallow])[0][0] is narrow_deep
        assert breadth_heavy.rank([narrow_deep, broad_shallow])[0][0] is broad_shallow

    def test_negative_weights_rejected(self):
        with pytest.raises(AdvisorError):
            WeightedRanker(entropy_weight=-1.0)

    def test_invalid_max_depth_rejected(self):
        with pytest.raises(AdvisorError):
            WeightedRanker(max_depth=1)

    def test_score_is_monotone_in_entropy(self):
        ranker = WeightedRanker()
        low = score_segmentation(_segmentation([95, 5]))
        high = score_segmentation(_segmentation([50, 50]))
        assert ranker.score(high) > ranker.score(low)


class TestLexicographicRanker:
    def test_priority_order_is_respected(self, candidates):
        breadth_first = LexicographicRanker(priorities=("breadth", "entropy"))
        ranked = breadth_first.rank(candidates)
        # Both breadth-2 candidates precede the breadth-1 one.
        assert {id(ranked[0][0]), id(ranked[1][0])} == {
            id(candidates[1]),
            id(candidates[2]),
        }

    def test_simplicity_is_inverted(self):
        context = SDLQuery([NoConstraint("x"), NoConstraint("y")])
        simple_query = context.refine(RangePredicate("x", 0, 5))
        complex_query = simple_query.refine(RangePredicate("y", 0, 5))
        simple = Segmentation(context, [Segment(simple_query, 10), Segment(simple_query, 10)],
                              cut_attributes=("x",))
        complicated = Segmentation(
            context, [Segment(complex_query, 10), Segment(complex_query, 10)],
            cut_attributes=("x",),
        )
        ranker = LexicographicRanker(priorities=("simplicity",))
        assert ranker.rank([complicated, simple])[0][0] is simple

    def test_unknown_criterion_rejected(self):
        with pytest.raises(AdvisorError):
            LexicographicRanker(priorities=("entropy", "magic"))

    def test_empty_priorities_rejected(self):
        with pytest.raises(AdvisorError):
            LexicographicRanker(priorities=())

    def test_balance_criterion_supported(self, candidates):
        ranker = LexicographicRanker(priorities=("balance",))
        ranked = ranker.rank(candidates)
        assert ranked[-1][0] is candidates[2]
