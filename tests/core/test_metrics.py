"""Unit tests for the quality metrics (Section 3)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    balance,
    breadth,
    cover,
    entropy,
    homogeneity_proxy,
    indep_from_entropies,
    max_entropy,
    score_segmentation,
    simplicity,
)
from repro.core import cut_query, cut_segmentation
from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SDLQuery,
    Segment,
    Segmentation,
    SetPredicate,
)
from repro.storage import QueryEngine, Table


def _context() -> SDLQuery:
    return SDLQuery([NoConstraint("x"), NoConstraint("t")])


def _segmentation(counts, cut_attributes=("x",)) -> Segmentation:
    context = _context()
    segments = []
    low = 0
    for count in counts:
        query = context.refine(RangePredicate("x", low, low + 9))
        segments.append(Segment(query, count))
        low += 10
    return Segmentation(context, segments, cut_attributes=cut_attributes)


class TestEntropy:
    def test_single_piece_is_zero(self):
        assert entropy(_segmentation([100])) == 0.0

    def test_balanced_pieces_reach_log_m(self):
        segmentation = _segmentation([25, 25, 25, 25])
        assert entropy(segmentation) == pytest.approx(math.log(4))

    def test_unbalanced_lower_than_balanced(self):
        balanced = _segmentation([50, 50])
        skewed = _segmentation([90, 10])
        assert entropy(skewed) < entropy(balanced)

    def test_empty_segments_contribute_nothing(self):
        with_empty = _segmentation([50, 50, 0])
        without_empty = _segmentation([50, 50])
        assert entropy(with_empty) == pytest.approx(entropy(without_empty))

    def test_base_2(self):
        segmentation = _segmentation([50, 50])
        assert entropy(segmentation, base=2) == pytest.approx(1.0)

    def test_entropy_grows_with_depth(self):
        assert entropy(_segmentation([25] * 4)) > entropy(_segmentation([50] * 2))


class TestMaxEntropyAndBalance:
    def test_max_entropy_counts_non_empty_pieces(self):
        assert max_entropy(_segmentation([10, 10, 0])) == pytest.approx(math.log(2))

    def test_balance_of_perfectly_balanced_is_one(self):
        assert balance(_segmentation([20, 20, 20])) == pytest.approx(1.0)

    def test_balance_of_single_piece_is_one(self):
        assert balance(_segmentation([42])) == 1.0

    def test_balance_decreases_with_skew(self):
        assert balance(_segmentation([99, 1])) < balance(_segmentation([60, 40]))


class TestSimplicity:
    def test_counts_constraints_added_beyond_context(self):
        segmentation = _segmentation([10, 10])
        assert simplicity(segmentation) == 1

    def test_absolute_mode_counts_all_constraints(self):
        context = SDLQuery([RangePredicate("year", 1700, 1800), NoConstraint("x")])
        query = context.refine(RangePredicate("x", 0, 5))
        segmentation = Segmentation(context, [Segment(query, 10)])
        assert simplicity(segmentation, relative_to_context=True) == 1
        assert simplicity(segmentation, relative_to_context=False) == 2

    def test_takes_the_maximum_over_queries(self):
        context = _context()
        simple = context.refine(RangePredicate("x", 0, 5))
        complex_query = simple.refine(SetPredicate("t", frozenset({"a"})))
        segmentation = Segmentation(context, [Segment(simple, 5), Segment(complex_query, 5)])
        assert simplicity(segmentation) == 2


class TestBreadth:
    def test_counts_distinct_cut_columns(self):
        assert breadth(_segmentation([10, 10], cut_attributes=("x",))) == 1
        assert breadth(_segmentation([10, 10], cut_attributes=("x", "t"))) == 2


class TestCover:
    def test_table_relative_and_context_relative(self):
        table = Table.from_dict({"x": list(range(10)), "t": ["a"] * 10})
        engine = QueryEngine(table)
        query = SDLQuery([RangePredicate("x", 0, 4)])
        assert cover(engine, query) == pytest.approx(0.5)
        context = SDLQuery([RangePredicate("x", 0, 7)])
        assert cover(engine, query, context) == pytest.approx(5 / 8)


class TestIndepFromEntropies:
    def test_zero_denominator_defaults_to_one(self):
        assert indep_from_entropies(0.0, 0.0, 0.0) == 1.0

    def test_quotient(self):
        assert indep_from_entropies(1.0, 0.6, 0.6) == pytest.approx(1.0 / 1.2)


class TestHomogeneityProxy:
    def test_pure_segments_score_one(self):
        table = Table.from_dict({"x": [1, 1, 5, 5], "t": ["a", "a", "b", "b"]})
        engine = QueryEngine(table)
        segmentation = cut_query(engine, SDLQuery.over(["x", "t"]), "t")
        assert homogeneity_proxy(engine, segmentation) == pytest.approx(1.0)

    def test_mixed_segments_score_below_one(self):
        table = Table.from_dict({"x": [1, 2, 3, 4], "t": ["a", "b", "a", "b"]})
        engine = QueryEngine(table)
        segmentation = cut_query(engine, SDLQuery.over(["x", "t"]), "x")
        # Each x-half contains both t values: concentration is low.
        assert homogeneity_proxy(engine, segmentation) < 0.5

    def test_no_attributes_scores_one(self):
        context = _context()
        segmentation = Segmentation(context, [Segment(context, 10)])
        engine = QueryEngine(Table.from_dict({"x": [1], "t": ["a"]}))
        assert homogeneity_proxy(engine, segmentation) == 1.0


class TestScoreSegmentation:
    def test_bundles_every_metric(self):
        segmentation = _segmentation([30, 30, 40], cut_attributes=("x",))
        scores = score_segmentation(segmentation)
        assert scores.entropy == pytest.approx(entropy(segmentation))
        assert scores.breadth == 1
        assert scores.simplicity == 1
        assert scores.depth == 3
        assert scores.covered_fraction == pytest.approx(1.0)
        assert set(scores.as_dict()) >= {"entropy", "breadth", "simplicity", "balance"}

    def test_deep_cut_on_real_engine(self):
        table = Table.from_dict({"x": list(range(64)), "t": ["a", "b"] * 32})
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "t"])
        segmentation = cut_segmentation(engine, cut_query(engine, context, "x"), "t")
        scores = score_segmentation(segmentation)
        assert scores.depth == 4
        assert scores.breadth == 2
        assert 0.0 < scores.entropy <= math.log(4) + 1e-9
