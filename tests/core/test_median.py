"""Unit tests for median-point selection (Definition 5)."""

from __future__ import annotations

import pytest

from repro.errors import CannotCutError
from repro.core.median import (
    median_split,
    nominal_split_point,
    nominal_value_order,
)
from repro.sdl import RangePredicate, SDLQuery, SetPredicate
from repro.storage import QueryEngine, Table


def _engine(data: dict) -> QueryEngine:
    return QueryEngine(Table.from_dict(data, name="t"))


class TestNominalValueOrder:
    def test_low_cardinality_sorted_by_frequency(self):
        frequencies = {"rare": 1, "common": 10, "medium": 5}
        assert nominal_value_order(frequencies, low_cardinality_threshold=12) == [
            "common",
            "medium",
            "rare",
        ]

    def test_high_cardinality_sorted_alphabetically(self):
        frequencies = {"b": 10, "a": 1, "c": 5}
        assert nominal_value_order(frequencies, low_cardinality_threshold=2) == [
            "a",
            "b",
            "c",
        ]

    def test_frequency_ties_broken_alphabetically(self):
        frequencies = {"b": 5, "a": 5}
        assert nominal_value_order(frequencies, low_cardinality_threshold=12) == ["a", "b"]


class TestNominalSplitPoint:
    def test_balanced_two_values(self):
        assert nominal_split_point(["a", "b"], {"a": 5, "b": 5}) == 1

    def test_split_closest_to_half(self):
        # cumulative: a=0.4, a+b=0.7 -> splitting after "a" (0.4) is closest to 0.5
        assert nominal_split_point(["a", "b", "c"], {"a": 4, "b": 3, "c": 3}) == 1

    def test_split_never_empty(self):
        # Even when the first value holds most of the mass, both sides stay non-empty.
        index = nominal_split_point(["a", "b"], {"a": 99, "b": 1})
        assert index == 1


class TestNumericSplit:
    def test_split_at_median(self):
        engine = _engine({"x": [1, 2, 3, 4, 5, 6, 7, 8]})
        spec = median_split(engine, SDLQuery.over(["x"]), "x")
        assert spec.kind == "range"
        assert spec.lower == RangePredicate("x", 1, 4.5, include_high=False)
        assert spec.upper == RangePredicate("x", 4.5, 8)

    def test_pieces_are_complementary(self):
        engine = _engine({"x": [10, 20, 30, 40, 50]})
        spec = median_split(engine, SDLQuery.over(["x"]), "x")
        values = engine.table.column("x").values_list()
        lower_hits = [v for v in values if spec.lower.matches_value(v)]
        upper_hits = [v for v in values if spec.upper.matches_value(v)]
        assert sorted(lower_hits + upper_hits) == sorted(values)
        assert not set(lower_hits) & set(upper_hits)

    def test_split_within_subquery(self):
        engine = _engine({"x": [1, 2, 3, 4, 100, 200, 300, 400]})
        query = SDLQuery([RangePredicate("x", 1, 4)])
        spec = median_split(engine, query, "x")
        assert spec.upper.high == 4
        assert spec.split_point == pytest.approx(2.5)

    def test_single_value_cannot_be_cut(self):
        engine = _engine({"x": [7, 7, 7]})
        with pytest.raises(CannotCutError):
            median_split(engine, SDLQuery.over(["x"]), "x")

    def test_empty_query_cannot_be_cut(self):
        engine = _engine({"x": [1, 2, 3]})
        query = SDLQuery([RangePredicate("x", 100, 200)])
        with pytest.raises(CannotCutError):
            median_split(engine, query, "x")

    def test_skewed_mass_on_minimum_shifts_split_point(self):
        # More than half the rows hold the minimum value: the paper's
        # [min, med[ piece would be empty, so the split moves up.
        engine = _engine({"x": [1, 1, 1, 1, 1, 1, 2, 3]})
        spec = median_split(engine, SDLQuery.over(["x"]), "x")
        assert spec.split_point == 2
        assert spec.lower == RangePredicate("x", 1, 2, include_high=False)

    def test_date_column_split(self):
        engine = _engine({"d": ["2020-01-01", "2020-06-01", "2021-01-01", "2021-06-01"]})
        spec = median_split(engine, SDLQuery.over(["d"]), "d")
        assert spec.kind == "range"
        assert spec.lower.low < spec.upper.high


class TestNominalSplit:
    def test_two_balanced_values(self):
        engine = _engine({"t": ["fluit"] * 5 + ["jacht"] * 5})
        spec = median_split(engine, SDLQuery.over(["t"]), "t")
        assert spec.kind == "set"
        groups = {frozenset(spec.lower.values), frozenset(spec.upper.values)}
        assert groups == {frozenset({"fluit"}), frozenset({"jacht"})}

    def test_groups_partition_all_values(self):
        engine = _engine({"t": ["a"] * 4 + ["b"] * 3 + ["c"] * 2 + ["d"]})
        spec = median_split(engine, SDLQuery.over(["t"]), "t")
        assert spec.lower.values | spec.upper.values == {"a", "b", "c", "d"}
        assert not spec.lower.values & spec.upper.values

    def test_single_value_cannot_be_cut(self):
        engine = _engine({"t": ["only"] * 5})
        with pytest.raises(CannotCutError):
            median_split(engine, SDLQuery.over(["t"]), "t")

    def test_split_respects_query_scope(self):
        engine = _engine(
            {
                "t": ["a", "a", "b", "b", "c", "c"],
                "x": [1, 1, 1, 2, 2, 2],
            }
        )
        query = SDLQuery([RangePredicate("x", 1, 1), SDLQuery.over(["t"]).predicates[0]])
        spec = median_split(engine, query, "t")
        # Only values present under the query (a, a, b) may appear.
        assert spec.lower.values | spec.upper.values == {"a", "b"}

    def test_boolean_column_uses_nominal_rule(self):
        engine = _engine({"flag": [True, True, False, False, True]})
        spec = median_split(engine, SDLQuery.over(["flag"]), "flag")
        assert spec.kind == "set"
        assert isinstance(spec.lower, SetPredicate)
