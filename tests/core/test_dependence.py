"""Unit tests for dependence estimation (contingency tables, chi-square, INDEP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    analyse_dependence,
    chi_square_test,
    contingency_table,
    cramers_v,
    cut_query,
    g_test,
    indep_from_table,
    mutual_information,
    pairwise_indep_matrix,
)
from repro.sdl import SDLQuery
from repro.storage import QueryEngine
from repro.workloads import make_dependent_pair_table, make_independent_table


@pytest.fixture(scope="module")
def independent_engine() -> QueryEngine:
    return QueryEngine(make_independent_table(rows=3000, cardinalities=(4, 4, 4), seed=1))


@pytest.fixture(scope="module")
def dependent_engine() -> QueryEngine:
    # Cardinality 2 keeps the binary median cut aligned with the planted
    # dependence regardless of the frequency ordering of the categories.
    return QueryEngine(
        make_dependent_pair_table(rows=3000, strength=0.9, cardinality=2, seed=1)
    )


def _cuts(engine: QueryEngine, attributes):
    context = SDLQuery.over(list(attributes))
    return [cut_query(engine, context, attribute) for attribute in attributes]


class TestContingencyTable:
    def test_shape_and_total(self, independent_engine):
        first, second = _cuts(independent_engine, ["a0", "a1"])
        table = contingency_table(independent_engine, first, second)
        assert table.shape == (2, 2)
        assert table.sum() == 3000


class TestIndepFromTable:
    def test_independent_table_close_to_one(self):
        table = np.array([[250, 250], [250, 250]], dtype=float)
        assert indep_from_table(table) == pytest.approx(1.0)

    def test_diagonal_table_is_half(self):
        table = np.array([[500, 0], [0, 500]], dtype=float)
        assert indep_from_table(table) == pytest.approx(0.5)

    def test_empty_table_defaults_to_one(self):
        assert indep_from_table(np.zeros((2, 2))) == 1.0


class TestMutualInformation:
    def test_zero_for_independent(self):
        table = np.array([[100, 100], [100, 100]], dtype=float)
        assert mutual_information(table) == pytest.approx(0.0, abs=1e-12)

    def test_log2_nats_for_perfect_dependence(self):
        table = np.array([[500, 0], [0, 500]], dtype=float)
        assert mutual_information(table) == pytest.approx(np.log(2))

    def test_relates_to_indep(self):
        table = np.array([[300, 100], [100, 300]], dtype=float)
        joint = indep_from_table(table)
        information = mutual_information(table)
        marginal_sum = 2 * np.log(2)
        assert joint == pytest.approx(1 - information / marginal_sum, rel=1e-6)


class TestStatisticalTests:
    def test_chi_square_detects_dependence(self):
        table = np.array([[400, 100], [100, 400]], dtype=float)
        statistic, p_value, dof = chi_square_test(table)
        assert statistic > 100
        assert p_value < 1e-6
        assert dof == 1

    def test_chi_square_accepts_independence(self):
        table = np.array([[250, 250], [250, 250]], dtype=float)
        statistic, p_value, _ = chi_square_test(table)
        assert statistic == pytest.approx(0.0)
        assert p_value == pytest.approx(1.0)

    def test_g_test_agrees_qualitatively(self):
        dependent = np.array([[400, 100], [100, 400]], dtype=float)
        independent = np.array([[250, 250], [250, 250]], dtype=float)
        assert g_test(dependent)[1] < 0.01
        assert g_test(independent)[1] > 0.9

    def test_cramers_v_range(self):
        perfect = np.array([[500, 0], [0, 500]], dtype=float)
        none = np.array([[250, 250], [250, 250]], dtype=float)
        assert cramers_v(perfect) == pytest.approx(1.0)
        assert cramers_v(none) == pytest.approx(0.0)
        assert cramers_v(np.zeros((2, 2))) == 0.0


class TestAnalyseDependence:
    def test_dependent_pair_flagged(self, dependent_engine):
        first, second = _cuts(dependent_engine, ["x", "y"])
        report = analyse_dependence(dependent_engine, first, second)
        assert report.indep < 0.95
        assert report.is_dependent(alpha=0.01)
        assert report.cramers_v > 0.3
        assert report.mutual_information > 0.05

    def test_independent_pair_not_flagged(self, independent_engine):
        first, second = _cuts(independent_engine, ["a0", "a1"])
        report = analyse_dependence(independent_engine, first, second)
        assert report.indep > 0.98
        assert not report.is_dependent(alpha=0.001)


class TestPairwiseMatrix:
    def test_symmetric_with_unit_diagonal(self, dependent_engine):
        cuts = _cuts(dependent_engine, ["x", "y", "z"])
        matrix = pairwise_indep_matrix(dependent_engine, cuts)
        assert len(matrix) == 3
        for i in range(3):
            assert matrix[i][i] == 1.0
            for j in range(3):
                assert matrix[i][j] == pytest.approx(matrix[j][i])
        # The planted x-y dependence is the lowest off-diagonal value.
        off_diagonal = {(0, 1): matrix[0][1], (0, 2): matrix[0][2], (1, 2): matrix[1][2]}
        assert min(off_diagonal, key=off_diagonal.get) == (0, 1)
