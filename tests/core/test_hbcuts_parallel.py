"""Parallel HB-cuts: bit-for-bit identical results at every worker count."""

from __future__ import annotations

import pytest

from repro.backends.pool import ExecutorPool
from repro.core import Charles, HBCuts, HBCutsConfig, hb_cuts
from repro.sdl import SDLQuery
from repro.storage import QueryEngine
from repro.workloads import generate_voc

CONTEXT_COLUMNS = ("type_of_boat", "departure_harbour", "tonnage", "built")


@pytest.fixture(scope="module")
def voc():
    return generate_voc(rows=600, seed=23)


def _context():
    return SDLQuery.over(CONTEXT_COLUMNS)


def _segmentation_fingerprint(result):
    return [
        (
            segmentation.cut_attributes,
            tuple(segmentation.counts),
            tuple(segment.query.to_sdl() for segment in segmentation.segments),
        )
        for segmentation in result.segmentations
    ]


def _run(voc, workers=None, partitions=1, **config_options):
    engine = QueryEngine(generate_voc(rows=600, seed=23), partitions=partitions)
    pool = ExecutorPool(workers) if workers is not None else None
    config = HBCutsConfig(**config_options)
    return HBCuts(config, pool=pool).run(engine, _context())


class TestParallelIndepParity:
    def test_workers_1_and_workers_4_are_bit_for_bit_identical(self, voc):
        one = _run(voc, workers=1)
        four = _run(voc, workers=4)
        assert _segmentation_fingerprint(one) == _segmentation_fingerprint(four)
        # The whole trace — everything except wall-clock — is identical.
        for field in (
            "initial_candidates",
            "uncuttable_attributes",
            "iterations",
            "pair_evaluations",
            "pair_cache_hits",
            "batched_passes",
            "parallel_rounds",
            "compositions",
            "indep_values",
            "stop_reason",
        ):
            assert getattr(one.trace, field) == getattr(four.trace, field)

    def test_parallel_matches_the_sequential_strategy(self, voc):
        sequential = _run(voc)
        parallel = _run(voc, workers=4)
        assert _segmentation_fingerprint(sequential) == (
            _segmentation_fingerprint(parallel)
        )
        assert sequential.trace.indep_values == parallel.trace.indep_values
        assert sequential.trace.compositions == parallel.trace.compositions
        assert sequential.trace.pair_evaluations == parallel.trace.pair_evaluations
        assert sequential.trace.pair_cache_hits == parallel.trace.pair_cache_hits
        assert sequential.trace.stop_reason == parallel.trace.stop_reason
        assert parallel.trace.parallel_rounds > 0
        assert sequential.trace.parallel_rounds == 0

    def test_parallel_matches_with_partitioned_engines(self, voc):
        baseline = _run(voc)
        combined = _run(voc, workers=2, partitions=3)
        assert _segmentation_fingerprint(baseline) == (
            _segmentation_fingerprint(combined)
        )
        assert baseline.trace.indep_values == combined.trace.indep_values

    def test_batched_path_takes_precedence(self, voc):
        result = _run(voc, workers=4, batch_indep=True)
        baseline = _run(voc, batch_indep=True)
        assert result.trace.batched_passes == baseline.trace.batched_passes
        assert result.trace.parallel_rounds == 0
        assert _segmentation_fingerprint(result) == (
            _segmentation_fingerprint(baseline)
        )

    def test_parallel_without_indep_reuse(self, voc):
        baseline = _run(voc, reuse_indep=False)
        parallel = _run(voc, workers=4, reuse_indep=False)
        assert baseline.trace.indep_values == parallel.trace.indep_values
        assert baseline.trace.pair_evaluations == parallel.trace.pair_evaluations
        assert _segmentation_fingerprint(baseline) == (
            _segmentation_fingerprint(parallel)
        )

    def test_hb_cuts_wrapper_accepts_a_pool(self, voc):
        engine = QueryEngine(voc)
        with ExecutorPool(2) as pool:
            pooled = hb_cuts(engine, _context(), pool=pool)
        plain = hb_cuts(QueryEngine(voc), _context())
        assert _segmentation_fingerprint(pooled) == _segmentation_fingerprint(plain)


class TestCharlesParallelWiring:
    def test_charles_picks_up_the_backend_pool(self, voc):
        advisor = Charles(voc, backend="memory?partitions=2&workers=2")
        assert advisor.pool is advisor.engine.pool
        assert advisor._generator.pool is advisor.pool

    def test_charles_workers_build_a_pool(self, voc):
        advisor = Charles(voc, workers=2)
        assert advisor.pool is not None
        assert advisor.pool.workers == 2

    def test_charles_sequential_has_no_pool(self, voc):
        advisor = Charles(voc)
        assert advisor.pool is None

    def test_advice_is_identical_across_worker_counts(self, voc):
        def fingerprint(advice):
            return [
                (
                    answer.segmentation.cut_attributes,
                    tuple(answer.segmentation.counts),
                    answer.score,
                )
                for answer in advice.answers
            ]

        baseline = Charles(voc).advise(list(CONTEXT_COLUMNS), max_answers=8)
        for workers, partitions in ((1, 4), (2, 2), (4, 4)):
            advice = Charles(voc, workers=workers, partitions=partitions).advise(
                list(CONTEXT_COLUMNS), max_answers=8
            )
            assert fingerprint(advice) == fingerprint(baseline)
            assert advice.trace.indep_values == baseline.trace.indep_values


class TestParallelDependenceMatrix:
    def test_pairwise_indep_matrix_identical_with_pool(self, voc):
        from repro.core import cut_query
        from repro.core.dependence import pairwise_indep_matrix

        engine = QueryEngine(voc)
        context = _context()
        segmentations = [
            cut_query(engine, context, attribute)
            for attribute in ("tonnage", "built", "type_of_boat")
        ]
        plain = pairwise_indep_matrix(engine, segmentations)
        with ExecutorPool(3) as pool:
            pooled = pairwise_indep_matrix(engine, segmentations, pool=pool)
        assert pooled == plain
