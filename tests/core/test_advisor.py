"""Unit and integration tests for the Charles facade."""

from __future__ import annotations

import pytest

from repro.core import Charles, HBCutsConfig, WeightedRanker
from repro.errors import AdvisorError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, SampledEngine
from repro.workloads import FIGURE1_CONTEXT_COLUMNS, generate_voc


@pytest.fixture(scope="module")
def advisor(voc_table) -> Charles:
    return Charles(voc_table)


class TestContextResolution:
    def test_none_means_whole_table(self, advisor, voc_table):
        context = advisor.resolve_context(None)
        assert context.attributes == tuple(voc_table.column_names)

    def test_list_of_columns(self, advisor):
        context = advisor.resolve_context(["tonnage", "type_of_boat"])
        assert context.attributes == ("tonnage", "type_of_boat")
        assert context.n_constraints == 0

    def test_unknown_column_rejected(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.resolve_context(["tonnage", "missing_column"])

    def test_sdl_string(self, advisor):
        context = advisor.resolve_context("(tonnage: [1000, 2000], type_of_boat:)")
        assert context.predicate_for("tonnage") is not None

    def test_sql_where_string(self, advisor):
        context = advisor.resolve_context(
            "tonnage BETWEEN 1000 AND 2000 AND type_of_boat IN ('fluit')"
        )
        assert set(context.constrained_attributes) == {"tonnage", "type_of_boat"}

    def test_unparseable_string_rejected(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.resolve_context("this is not a query ???")

    def test_query_object_passthrough(self, advisor):
        query = SDLQuery.over(["tonnage"])
        assert advisor.resolve_context(query) is query

    def test_unsupported_type_rejected(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.resolve_context(42)  # type: ignore[arg-type]


class TestAdvise:
    def test_returns_ranked_answers(self, advisor):
        advice = advisor.advise(list(FIGURE1_CONTEXT_COLUMNS), max_answers=5)
        assert 1 <= len(advice) <= 5
        assert [answer.rank for answer in advice] == list(range(1, len(advice) + 1))
        scores = [answer.score for answer in advice]
        assert scores == sorted(scores, reverse=True)

    def test_answers_are_valid_partitions(self, advisor, voc_table):
        engine = QueryEngine(voc_table)
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=4)
        for answer in advice:
            assert check_partition(engine, answer.segmentation).is_partition

    def test_constrained_context_partitions_only_that_region(self, advisor):
        context = "(tonnage: [1000, 1500], type_of_boat:, departure_harbour:)"
        advice = advisor.advise(context, max_answers=3)
        expected = advisor.count(context)
        for answer in advice:
            assert answer.segmentation.context_count == expected

    def test_max_answers_none_returns_everything(self, advisor):
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=None)
        assert len(advice) >= 2

    def test_attributes_argument(self, advisor):
        advice = advisor.advise(None, attributes=["tonnage", "type_of_boat"], max_answers=3)
        for answer in advice:
            assert set(answer.attributes) <= {"tonnage", "type_of_boat"}

    def test_engine_operations_reported(self, advisor):
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=3)
        assert advice.engine_operations["total_database_operations"] > 0

    def test_best_and_describe(self, advisor):
        advice = advisor.advise(list(FIGURE1_CONTEXT_COLUMNS), max_answers=4)
        best = advice.best()
        assert best.rank == 1
        text = advice.describe(limit=2)
        assert "Charles' advice" in text
        assert "#1" in text

    def test_labels_match_segment_count(self, advisor):
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=1)
        answer = advice.best()
        assert len(answer.labels()) == answer.segmentation.depth

    def test_empty_advice_best_raises(self, advisor):
        from repro.core.advisor import Advice
        from repro.core.hbcuts import HBCutsTrace

        empty = Advice(context=SDLQuery(), answers=[], trace=HBCutsTrace())
        with pytest.raises(AdvisorError):
            empty.best()


class TestSegmentAndProfile:
    def test_segment_builds_requested_cut(self, advisor):
        segmentation = advisor.segment(
            list(FIGURE1_CONTEXT_COLUMNS), ["departure_harbour", "tonnage"]
        )
        assert set(segmentation.cut_attributes) == {"departure_harbour", "tonnage"}
        assert segmentation.depth == 4

    def test_segment_requires_attributes(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.segment(["tonnage"], [])

    def test_profile(self, advisor):
        profile = advisor.profile("(type_of_boat: {'fluit'}, tonnage:)")
        assert profile.column("type_of_boat").distinct_count == 1
        assert profile.row_count == advisor.count("(type_of_boat: {'fluit'}, tonnage:)")

    def test_count(self, advisor, voc_table):
        assert advisor.count(None) == voc_table.num_rows


class TestConfigurationOptions:
    def test_custom_ranker_is_used(self, voc_table):
        advisor = Charles(voc_table, ranker=WeightedRanker(breadth_weight=2.0))
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=3)
        assert advice.ranker_name == "weighted"

    def test_custom_config_limits_depth(self, voc_table):
        advisor = Charles(voc_table, config=HBCutsConfig(max_depth=4))
        advice = advisor.advise(
            ["type_of_boat", "departure_harbour", "tonnage"], max_answers=None
        )
        assert all(answer.segmentation.depth <= 4 for answer in advice)

    def test_sampling_advisor_uses_sampled_engine(self, voc_table):
        advisor = Charles(voc_table, sample_fraction=0.25, seed=1)
        assert isinstance(advisor.engine, SampledEngine)
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=2)
        assert len(advice) >= 1

    def test_prebuilt_engine_is_reused(self, voc_table):
        engine = QueryEngine(voc_table)
        advisor = Charles(engine)
        assert advisor.engine is engine
        assert advisor.table is voc_table


class TestFigure1Shape:
    def test_top_answer_composes_dependent_attributes(self):
        # On the VOC data the harbour/tonnage/type dependencies are planted,
        # so the top-ranked answer must span more than one attribute, and the
        # single-attribute cuts must still be present in the list.
        advisor = Charles(generate_voc(rows=2000, seed=7))
        advice = advisor.advise(list(FIGURE1_CONTEXT_COLUMNS), max_answers=None)
        assert len(advice.best().attributes) >= 2
        breadths = {len(answer.attributes) for answer in advice}
        assert 1 in breadths
