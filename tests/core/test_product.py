"""Unit tests for the SDL product (Definition 8 and Proposition 1)."""

from __future__ import annotations

import math

import pytest

from repro.core import cut_query, entropy, indep, product, product_counts
from repro.errors import CompositionError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table
from repro.workloads import make_dependent_pair_table, make_independent_table


def _figure2_engine() -> QueryEngine:
    """Figure 2's data: boat type and departure date are dependent."""
    rows = []
    for index in range(10):
        rows.append({"type": "fluit", "date": 1700 + index})
    for index in range(10):
        rows.append({"type": "jacht", "date": 1760 + index})
    return QueryEngine(Table.from_rows(rows, name="boats"))


class TestProduct:
    def test_cell_count_up_to_k_times_l(self):
        engine = QueryEngine(make_independent_table(rows=400, cardinalities=(2, 2), seed=1))
        context = SDLQuery.over(["a0", "a1"])
        first = cut_query(engine, context, "a0")
        second = cut_query(engine, context, "a1")
        combined = product(engine, first, second)
        assert combined.depth == 4
        assert set(combined.cut_attributes) == {"a0", "a1"}

    def test_product_is_a_partition(self):
        engine = QueryEngine(make_independent_table(rows=500, cardinalities=(3, 4), seed=2))
        context = SDLQuery.over(["a0", "a1"])
        combined = product(
            engine, cut_query(engine, context, "a0"), cut_query(engine, context, "a1")
        )
        assert check_partition(engine, combined).is_partition

    def test_dependent_variables_yield_empty_cells(self):
        engine = _figure2_engine()
        context = SDLQuery.over(["type", "date"])
        by_type = cut_query(engine, context, "type")
        by_date = cut_query(engine, context, "date")
        combined = product(engine, by_type, by_date, drop_empty=True)
        # With a deterministic dependence only the diagonal cells survive.
        assert combined.depth == 2

    def test_drop_empty_false_keeps_cells(self):
        engine = _figure2_engine()
        context = SDLQuery.over(["type", "date"])
        combined = product(
            engine,
            cut_query(engine, context, "type"),
            cut_query(engine, context, "date"),
            drop_empty=False,
        )
        assert combined.depth == 4
        assert sum(combined.counts) == 20

    def test_requires_same_context(self):
        engine = _figure2_engine()
        first = cut_query(engine, SDLQuery.over(["type"]), "type")
        second = cut_query(engine, SDLQuery.over(["date"]), "date")
        with pytest.raises(CompositionError):
            product(engine, first, second)

    def test_product_counts_full_table(self):
        engine = _figure2_engine()
        context = SDLQuery.over(["type", "date"])
        by_type = cut_query(engine, context, "type")
        by_date = cut_query(engine, context, "date")
        table = product_counts(engine, by_type, by_date)
        assert len(table) == 2 and len(table[0]) == 2
        assert sum(sum(row) for row in table) == 20
        # Diagonal structure: each boat type maps to one date half.
        off_diagonal = table[0][1] + table[1][0]
        diagonal = table[0][0] + table[1][1]
        assert {diagonal, off_diagonal} == {20, 0}


class TestProposition1:
    def test_independent_variables_add_entropies(self):
        engine = QueryEngine(make_independent_table(rows=4000, cardinalities=(4, 4), seed=3))
        context = SDLQuery.over(["a0", "a1"])
        first = cut_query(engine, context, "a0")
        second = cut_query(engine, context, "a1")
        value, combined = indep(engine, first, second, return_product=True)
        assert entropy(combined) == pytest.approx(entropy(first) + entropy(second), rel=0.02)
        assert value == pytest.approx(1.0, abs=0.02)

    def test_dependent_variables_lose_entropy(self):
        engine = QueryEngine(
            make_dependent_pair_table(rows=4000, strength=0.95, cardinality=4, seed=3)
        )
        context = SDLQuery.over(["x", "y", "z"])
        first = cut_query(engine, context, "x")
        second = cut_query(engine, context, "y")
        value = indep(engine, first, second)
        assert value < 0.9

    def test_perfect_dependence_gives_half(self):
        engine = _figure2_engine()
        context = SDLQuery.over(["type", "date"])
        by_type = cut_query(engine, context, "type")
        by_date = cut_query(engine, context, "date")
        value = indep(engine, by_type, by_date)
        # E(S1 x S2) = E(S1) = E(S2) = log 2, so the quotient is 0.5.
        assert value == pytest.approx(0.5, abs=0.01)

    def test_indep_ordering_reflects_dependence_strength(self):
        values = {}
        for strength in (0.0, 0.5, 0.95):
            engine = QueryEngine(
                make_dependent_pair_table(rows=3000, strength=strength, cardinality=4, seed=5)
            )
            context = SDLQuery.over(["x", "y"])
            values[strength] = indep(
                engine,
                cut_query(engine, context, "x"),
                cut_query(engine, context, "y"),
            )
        assert values[0.95] < values[0.5] < values[0.0] + 0.02

    def test_entropy_of_product_bounded_by_log_cells(self):
        engine = QueryEngine(make_independent_table(rows=1000, cardinalities=(4, 4), seed=9))
        context = SDLQuery.over(["a0", "a1"])
        combined = product(
            engine, cut_query(engine, context, "a0"), cut_query(engine, context, "a1")
        )
        assert entropy(combined) <= math.log(combined.depth) + 1e-9
