"""Smoke tests: every example script runs end to end on a reduced scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

_CASES = [
    ("quickstart.py", []),
    ("voc_shipping.py", ["--rows", "800", "--seed", "3"]),
    ("astronomy_survey.py", ["--rows", "2000", "--seed", "3"]),
    ("weblog_drilldown.py", ["--rows", "2500", "--seed", "3"]),
]


@pytest.mark.parametrize(("script", "arguments"), _CASES, ids=[c[0] for c in _CASES])
def test_example_runs_and_produces_output(script, arguments):
    path = _EXAMPLES_DIR / script
    assert path.exists(), f"example script missing: {path}"
    completed = subprocess.run(
        [sys.executable, str(path), *arguments],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert len(completed.stdout.splitlines()) > 10


def test_examples_directory_has_a_quickstart_and_domain_scenarios():
    scripts = sorted(p.name for p in _EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
