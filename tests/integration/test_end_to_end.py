"""End-to-end integration tests: advisor over every workload, full loops."""

from __future__ import annotations

import pytest

from repro.core import (
    Charles,
    ExplorationSession,
    HBCutsConfig,
    LazyAdvisor,
    entropy,
)
from repro.sdl import check_partition, parse_query
from repro.storage import Catalog, QueryEngine, load_csv, write_csv
from repro.viz import render_advice
from repro.workloads import (
    FIGURE1_CONTEXT_COLUMNS,
    generate_astronomy,
    generate_voc,
    generate_weblog,
)


class TestAdvisorAcrossWorkloads:
    @pytest.mark.parametrize(
        ("factory", "columns"),
        [
            (generate_voc, ["type_of_boat", "departure_harbour", "tonnage"]),
            (generate_astronomy, ["object_class", "magnitude", "redshift", "ra"]),
            (generate_weblog, ["url_category", "response_time_ms", "status_code", "hour"]),
        ],
        ids=["voc", "astronomy", "weblog"],
    )
    def test_advice_is_valid_and_ranked(self, factory, columns):
        table = factory(rows=1200, seed=21)
        advisor = Charles(table)
        advice = advisor.advise(columns, max_answers=6)
        assert len(advice) >= 2
        engine = QueryEngine(table)
        previous = float("inf")
        for answer in advice:
            assert check_partition(engine, answer.segmentation).is_partition
            assert answer.score <= previous
            previous = answer.score
        # The top answer must exploit the planted dependency: at least two
        # attributes composed together.
        assert len(advice.best().attributes) >= 2

    def test_report_renders_for_every_workload(self):
        for factory in (generate_voc, generate_astronomy, generate_weblog):
            table = factory(rows=600, seed=2)
            advisor = Charles(table)
            advice = advisor.advise(None, max_answers=3)
            text = render_advice(advice)
            assert "ranked answers" in text


class TestFigure1Scenario:
    """The full Figure 1 interaction: context, ranked answers, drill-down."""

    def test_interactive_loop(self):
        table = generate_voc(rows=2500, seed=7)
        advisor = Charles(table)
        session = ExplorationSession(advisor, max_answers=6)
        advice = session.start(list(FIGURE1_CONTEXT_COLUMNS))

        # The ranked list mixes multi-attribute and single-attribute views.
        breadths = {len(answer.attributes) for answer in advice}
        assert any(b >= 2 for b in breadths)
        assert 1 in breadths

        # Drill into the largest segment of the best answer, twice.
        session.drill(0, 0)
        first_level = advisor.count(session.context)
        second_advice = session.advise()
        assert len(second_advice) >= 1
        session.drill(0, 0)
        second_level = advisor.count(session.context)
        assert second_level < first_level < table.num_rows

        # And back out again.
        session.back()
        session.back()
        assert session.depth == 0

    def test_segment_reproduces_the_harbour_tonnage_answer(self):
        table = generate_voc(rows=2500, seed=7)
        advisor = Charles(table)
        segmentation = advisor.segment(
            list(FIGURE1_CONTEXT_COLUMNS), ["departure_harbour", "tonnage"]
        )
        # Figure 1's selected answer: four pieces, harbour group x tonnage band.
        assert segmentation.depth == 4
        engine = QueryEngine(table)
        assert check_partition(engine, segmentation).is_partition
        labels = {
            frozenset(segment.query.predicate_for("departure_harbour").values)
            for segment in segmentation.segments
        }
        assert len(labels) == 2  # two harbour groups, each split by tonnage


class TestLazyVersusEager:
    def test_lazy_first_answer_matches_an_eager_candidate(self):
        table = generate_voc(rows=1000, seed=5)
        engine = QueryEngine(table)
        advisor = Charles(QueryEngine(table), config=HBCutsConfig())
        context = advisor.resolve_context(["type_of_boat", "tonnage"])
        lazy_first = LazyAdvisor(engine).first_answer(context)
        eager = advisor.advise(context, max_answers=None)
        eager_signatures = {
            (answer.segmentation.cut_attributes, answer.segmentation.depth)
            for answer in eager
        }
        assert (lazy_first.cut_attributes, lazy_first.depth) in eager_signatures


class TestCSVAndCatalogPipeline:
    def test_csv_roundtrip_then_advise(self, tmp_path):
        table = generate_voc(rows=500, seed=13)
        path = tmp_path / "voc.csv"
        write_csv(table, path)
        reloaded = load_csv(path)
        assert reloaded.num_rows == table.num_rows

        catalog = Catalog()
        catalog.register(reloaded, name="voc")
        advisor = Charles(catalog.table("voc"))
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=3)
        assert len(advice) >= 1
        assert entropy(advice.best().segmentation) > 0.0

    def test_sdl_context_survives_text_roundtrip(self):
        table = generate_voc(rows=500, seed=13)
        advisor = Charles(table)
        context = advisor.resolve_context(
            "(tonnage: [1000, 3000], type_of_boat:, departure_harbour:)"
        )
        reparsed = parse_query(context.to_sdl())
        assert reparsed == context
        assert advisor.count(context) == advisor.count(reparsed)
