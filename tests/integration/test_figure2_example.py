"""Integration test reproducing the worked example of Figure 2.

Figure 2 illustrates the three primitives on a boats dataset where the
boat type determines both the tonnage band and the departure era:

* ``CUT_tonnage(A)`` splits each piece of the boat-type segmentation into
  its own local tonnage halves (1000-2000/2000-5000 for fluits,
  1000-3000/3000-5000 for jachts in the paper's drawing);
* ``COMPOSE(A, B)`` cuts the boat-type pieces on the departure date, with
  per-piece medians (1700-1744/1744-1780 for fluits vs 1700-1760/1760-1780
  for jachts);
* ``A × B`` intersects the two-piece boat-type segmentation with the
  two-piece date segmentation, producing the four corner cells.

The conftest ``boats_table`` plants exactly this structure, so the shapes
(piece counts, local split points, dependence signal) must reproduce.
"""

from __future__ import annotations

import pytest

from repro.core import compose, cut_query, cut_segmentation, entropy, indep, product
from repro.sdl import check_partition


@pytest.fixture()
def by_type(boats_engine, boats_context):
    return cut_query(boats_engine, boats_context, "type_of_boat")


@pytest.fixture()
def by_date(boats_engine, boats_context):
    return cut_query(boats_engine, boats_context, "departure_date")


class TestCutPanel:
    def test_type_cut_separates_fluit_and_jacht(self, by_type):
        groups = [set(segment.query.predicate_for("type_of_boat").values)
                  for segment in by_type.segments]
        assert {frozenset(g) for g in groups} == {frozenset({"fluit"}), frozenset({"jacht"})}
        assert by_type.counts == (10, 10)

    def test_cut_tonnage_uses_local_medians(self, boats_engine, by_type):
        cut_twice = cut_segmentation(boats_engine, by_type, "tonnage")
        assert cut_twice.depth == 4
        assert check_partition(boats_engine, cut_twice).is_partition
        fluit_highs = []
        jacht_lows = []
        for segment in cut_twice.segments:
            types = segment.query.predicate_for("type_of_boat").values
            tonnage = segment.query.predicate_for("tonnage")
            if "fluit" in types:
                fluit_highs.append(tonnage.high)
            else:
                jacht_lows.append(tonnage.low)
        # Figure 2: the fluit pieces stay in the light band, the jacht
        # pieces in the heavy band — local medians, not a global one.
        assert max(fluit_highs) <= 2000
        assert min(jacht_lows) >= 3000


class TestComposePanel:
    def test_compose_type_with_date(self, boats_engine, by_type, by_date):
        composed = compose(boats_engine, by_type, by_date)
        assert composed.depth == 4
        assert set(composed.cut_attributes) == {"type_of_boat", "departure_date"}
        assert check_partition(boats_engine, composed).is_partition
        # Per-piece medians: the fluit date ranges end before the jacht ones
        # start (fluits sail 1700-1744, jachts 1750-1780).
        fluit_highs, jacht_lows = [], []
        for segment in composed.segments:
            types = segment.query.predicate_for("type_of_boat").values
            date = segment.query.predicate_for("departure_date")
            if "fluit" in types:
                fluit_highs.append(date.high)
            else:
                jacht_lows.append(date.low)
        assert max(fluit_highs) <= 1744
        assert min(jacht_lows) >= 1750


class TestProductPanel:
    def test_product_creates_the_four_corner_cells(self, boats_engine, by_type, by_date):
        cells = product(boats_engine, by_type, by_date, drop_empty=False)
        assert cells.depth == 4
        assert sum(cells.counts) == 20

    def test_product_reveals_the_dependence(self, boats_engine, by_type, by_date):
        # "The example of Figure 2 shows a dependence between the type of
        # boat and the departure date": the product is unbalanced, INDEP
        # drops to 1/2 for this deterministic mapping.
        value, cells = indep(boats_engine, by_type, by_date, return_product=True)
        assert value == pytest.approx(0.5, abs=0.01)
        assert entropy(cells) == pytest.approx(entropy(by_type), abs=0.01)

    def test_harbour_determines_the_boat_type(self, boats_engine, boats_context):
        # In the Figure 1 screenshot the harbours split cleanly into the
        # {Bantam, Rammenkens} and {Surat, Zeeland} groups, one per boat
        # type; the product therefore keeps only the two diagonal cells.
        by_type = cut_query(boats_engine, boats_context, "type_of_boat")
        by_harbour = cut_query(boats_engine, boats_context, "departure_harbour")
        cells = product(boats_engine, by_type, by_harbour, drop_empty=True)
        assert cells.depth == 2
        assert indep(boats_engine, by_type, by_harbour) == pytest.approx(0.5, abs=0.01)
