"""Integration tests for the SQL front-end role of Charles.

The paper positions Charles as "a front-end for SQL systems": every answer
it produces must be executable by an external SQL database.  These tests
check that the SQL rendering of segments is faithful — the WHERE clauses
partition the data exactly like the in-memory engine does — and that a SQL
WHERE clause can serve as the exploration context.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core import Charles
from repro.storage import QueryEngine, query_to_sql, query_to_where
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def voc_small():
    return generate_voc(rows=800, seed=17)


@pytest.fixture(scope="module")
def sqlite_connection(voc_small):
    """The generated VOC table loaded into an actual SQL engine (sqlite)."""
    connection = sqlite3.connect(":memory:")
    columns = voc_small.column_names
    column_clause = ", ".join(f'"{name}"' for name in columns)
    placeholders = ", ".join("?" for _ in columns)
    connection.execute(f'CREATE TABLE voc ({column_clause})')
    rows = [tuple(row[name] for name in columns) for row in voc_small.iter_rows()]
    connection.executemany(f"INSERT INTO voc VALUES ({placeholders})", rows)
    connection.commit()
    yield connection
    connection.close()


def _sqlite_count(connection, where: str) -> int:
    cursor = connection.execute(f"SELECT COUNT(*) FROM voc WHERE {where}")
    return int(cursor.fetchone()[0])


class TestSegmentsExecuteOnSQL:
    def test_segment_counts_match_sqlite(self, voc_small, sqlite_connection):
        advisor = Charles(voc_small)
        advice = advisor.advise(
            ["type_of_boat", "departure_harbour", "tonnage"], max_answers=4
        )
        for answer in advice:
            for segment in answer.segmentation.segments:
                where = query_to_where(segment.query)
                assert _sqlite_count(sqlite_connection, where) == segment.count

    def test_segments_partition_in_sql_too(self, voc_small, sqlite_connection):
        advisor = Charles(voc_small)
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=1)
        segmentation = advice.best().segmentation
        total = sum(
            _sqlite_count(sqlite_connection, query_to_where(segment.query))
            for segment in segmentation.segments
        )
        assert total == voc_small.num_rows

    def test_select_statement_is_valid_sqlite(self, voc_small, sqlite_connection):
        advisor = Charles(voc_small)
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=1)
        segment = advice.best().segmentation.segments[0]
        sql = query_to_sql(segment.query, "voc")
        rows = sqlite_connection.execute(sql).fetchall()
        assert len(rows) == segment.count


class TestSQLContext:
    def test_where_clause_as_context(self, voc_small, sqlite_connection):
        advisor = Charles(voc_small)
        where = "tonnage BETWEEN 1000 AND 2500 AND type_of_boat IN ('fluit', 'jacht')"
        context = advisor.resolve_context(where)
        engine_count = advisor.count(context)
        # sqlite agrees on the context cardinality (round-trip through our
        # own SQL rendering to normalise quoting).
        assert _sqlite_count(sqlite_connection, query_to_where(context)) == engine_count

        advice = advisor.advise(where, max_answers=3)
        for answer in advice:
            assert answer.segmentation.context_count == engine_count

    def test_engine_and_sqlite_agree_on_random_segments(self, voc_small, sqlite_connection):
        engine = QueryEngine(voc_small)
        advisor = Charles(engine)
        segmentation = advisor.segment(
            ["type_of_boat", "departure_harbour", "tonnage", "departure_date"],
            ["departure_date", "type_of_boat"],
        )
        for segment in segmentation.segments:
            where = query_to_where(segment.query)
            assert _sqlite_count(sqlite_connection, where) == engine.count(segment.query)
