"""Cross-backend acceptance: memory and sqlite produce identical advice.

The PR's headline criterion: ``charles advise --backend sqlite`` and
``--backend memory`` return the same ranked segmentations on the VOC
dataset, and the service layer serves identical workloads on both.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import Charles
from repro.service import AdvisorService
from repro.workloads import generate_voc

_BACKENDS = ("memory", "sqlite")


@pytest.fixture(scope="module")
def voc():
    return generate_voc(rows=900, seed=42)


def _fingerprint(advice):
    return [
        (
            answer.rank,
            answer.segmentation.cut_attributes,
            tuple(
                (segment.query.to_sdl(), segment.count)
                for segment in answer.segmentation.segments
            ),
            round(answer.score, 12),
        )
        for answer in advice.answers
    ]


class TestAdviseParity:
    def test_identical_ranked_segmentations(self, voc):
        context = ["type_of_boat", "departure_harbour", "tonnage", "built"]
        fingerprints = {}
        for backend in _BACKENDS:
            advisor = Charles(voc, backend=backend)
            fingerprints[backend] = _fingerprint(advisor.advise(context, max_answers=8))
        assert fingerprints["memory"] == fingerprints["sqlite"]

    def test_identical_with_sql_context(self, voc):
        context = "tonnage BETWEEN 400 AND 4000 AND type_of_boat NOT IN ('pinas')"
        results = [
            _fingerprint(Charles(voc, backend=backend).advise(context, max_answers=5))
            for backend in _BACKENDS
        ]
        assert results[0] == results[1]

    def test_identical_drilldown(self, voc):
        from repro.core import ExplorationSession

        paths = {}
        for backend in _BACKENDS:
            session = ExplorationSession(Charles(voc, backend=backend), max_answers=5)
            session.start(["type_of_boat", "tonnage"])
            advice = session.drill(0, 0)
            paths[backend] = (_fingerprint(advice), session.breadcrumbs())
        assert paths["memory"] == paths["sqlite"]


class TestNumericExclusionContexts:
    def test_advise_survives_numeric_not_in(self, voc):
        # Regression: an exclusion value inside a cut's median range used
        # to escape as a PredicateError and abort the whole advise; the
        # attribute must instead be skipped as uncuttable.
        median = Charles(voc).engine.median("tonnage")
        context = f"tonnage NOT IN ({median})"
        for backend in _BACKENDS:
            advice = Charles(voc, backend=backend).advise(context, max_answers=5)
            assert "tonnage" in advice.trace.uncuttable_attributes
        # With further attributes the advise still produces answers.
        rich = Charles(voc).advise(
            f"tonnage NOT IN ({median}) AND type_of_boat NOT IN ('pinas')",
            max_answers=5,
        )
        assert len(rich.answers) >= 1


class TestCliParity:
    def test_advise_backend_flag_outputs_match(self, voc, capsys):
        outputs = {}
        for backend in _BACKENDS:
            code = main(
                [
                    "advise",
                    "--dataset", "voc",
                    "--rows", "400",
                    "--columns", "type_of_boat", "tonnage", "departure_harbour",
                    "--backend", backend,
                    "--max-answers", "4",
                ]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["memory"] == outputs["sqlite"]

    def test_serve_accepts_backend_flag(self, capsys):
        code = main(
            [
                "serve",
                "--simulate",
                "--dataset", "voc",
                "--rows", "300",
                "--users", "2",
                "--steps", "1",
                "--backend", "sqlite",
            ]
        )
        assert code == 0
        assert "req/s" in capsys.readouterr().out


class TestServiceParity:
    def test_sessions_agree_across_backends(self, voc):
        answers = {}
        for backend in _BACKENDS:
            service = AdvisorService(voc, backend=backend)
            session = service.open_session(
                "probe", context=["type_of_boat", "tonnage", "departure_harbour"]
            )
            answers[backend] = _fingerprint(session.current_advice())
            stats = service.stats()
            expected = "memory" if backend == "memory" else "sqlite"
            assert stats["tables"]["voc"]["backend"]["backend"] == expected
        assert answers["memory"] == answers["sqlite"]
