"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.sdl import SDLQuery

# Hypothesis example budgets.  The fast tier runs the "dev" profile (kept
# small so property tests stay a fraction of the suite); the dedicated CI
# differential job passes --hypothesis-profile=ci for a deeper sweep.
# Tests with explicit @settings decorators are unaffected either way.
hypothesis_settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
hypothesis_settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
hypothesis_settings.load_profile("dev")
from repro.storage import QueryEngine, Table
from repro.workloads import (
    generate_astronomy,
    generate_voc,
    generate_weblog,
    make_dependent_pair_table,
    make_independent_table,
)


@pytest.fixture(scope="session")
def voc_table() -> Table:
    """A moderately sized VOC shipping table shared across tests."""
    return generate_voc(rows=2000, seed=7)


@pytest.fixture(scope="session")
def voc_engine(voc_table: Table) -> QueryEngine:
    return QueryEngine(voc_table)


@pytest.fixture(scope="session")
def astronomy_table() -> Table:
    return generate_astronomy(rows=1500, seed=11)


@pytest.fixture(scope="session")
def weblog_table() -> Table:
    return generate_weblog(rows=1500, seed=3)


@pytest.fixture(scope="session")
def independent_table() -> Table:
    return make_independent_table(rows=1500, cardinalities=(4, 4, 6), seed=5)


@pytest.fixture(scope="session")
def dependent_table() -> Table:
    return make_dependent_pair_table(rows=1500, strength=0.9, cardinality=4, seed=5)


@pytest.fixture()
def boats_table() -> Table:
    """A tiny hand-written table mirroring the paper's Figure 2 example."""
    rows = []
    # Fluits: light boats, early departures clustered before 1750.
    fluit_years = [1700, 1705, 1710, 1715, 1720, 1725, 1730, 1735, 1740, 1744]
    for index, year in enumerate(fluit_years):
        rows.append(
            {
                "type_of_boat": "fluit",
                "tonnage": 1000 + 100 * index,
                "departure_date": year,
                "departure_harbour": "Bantam" if index % 2 == 0 else "Rammenkens",
            }
        )
    # Jachts: heavier boats, later departures clustered after 1750.
    jacht_years = [1750, 1754, 1758, 1762, 1766, 1770, 1772, 1774, 1776, 1780]
    for index, year in enumerate(jacht_years):
        rows.append(
            {
                "type_of_boat": "jacht",
                "tonnage": 3000 + 200 * index,
                "departure_date": year,
                "departure_harbour": "Surat" if index % 2 == 0 else "Zeeland",
            }
        )
    return Table.from_rows(rows, name="boats")


@pytest.fixture()
def boats_engine(boats_table: Table) -> QueryEngine:
    return QueryEngine(boats_table)


@pytest.fixture()
def boats_context(boats_table: Table) -> SDLQuery:
    return SDLQuery.over(["type_of_boat", "tonnage", "departure_date", "departure_harbour"])
