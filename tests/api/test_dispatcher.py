"""Tests for the wire dispatcher and the service's operation table."""

from __future__ import annotations

import json

import pytest

from repro.api.codec import from_wire
from repro.api.dispatcher import Dispatcher
from repro.api.protocol import API_VERSION, Request
from repro.core.advisor import Advice
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]


@pytest.fixture(scope="module")
def table():
    return generate_voc(rows=800, seed=11)


@pytest.fixture()
def service(table):
    return AdvisorService(table, batch_window=0.0)


@pytest.fixture()
def dispatcher(service):
    return Dispatcher(service)


class TestWireDispatch:
    def test_full_exploration_over_the_wire(self, dispatcher):
        opened = dispatcher.handle_wire(
            Request(op="open_session", session="s1", context=_CONTEXT).to_wire()
        )
        assert opened["ok"] and opened["result"] == "s1"
        advice = dispatcher.handle_wire(
            Request(op="advise", session="s1", context=_CONTEXT).to_wire()
        )
        assert advice["ok"]
        decoded = from_wire(advice["result"])
        assert isinstance(decoded, Advice) and decoded.answers
        drilled = dispatcher.handle_wire(
            Request(op="drill", session="s1", answer_index=0, segment_index=0).to_wire()
        )
        assert drilled["ok"]
        described = dispatcher.handle_wire(
            Request(op="describe", session="s1").to_wire()
        )
        assert described["ok"]
        assert described["result"]["depth"] == 1
        assert len(described["result"]["breadcrumbs"]) == 2
        back = dispatcher.handle_wire(Request(op="back", session="s1").to_wire())
        assert back["ok"]
        closed = dispatcher.handle_wire(
            Request(op="close_session", session="s1").to_wire()
        )
        assert closed["ok"] and closed["result"]["requests"] >= 3

    def test_envelope_metadata_is_echoed(self, dispatcher):
        response = dispatcher.handle_wire(
            Request(op="stats", request_id="my-id-7").to_wire()
        )
        assert response["request_id"] == "my-id-7"
        assert response["api_version"] == API_VERSION
        assert response["elapsed_seconds"] >= 0.0

    def test_unknown_op_maps_to_stable_code(self, dispatcher):
        response = dispatcher.handle_wire({"op": "frobnicate"})
        assert not response["ok"]
        assert response["error"]["code"] == "protocol_unknown_op"

    def test_unknown_session_maps_to_stable_code(self, dispatcher):
        response = dispatcher.handle_wire(
            Request(op="drill", session="ghost").to_wire()
        )
        assert not response["ok"]
        assert response["error"]["code"] == "core_session"
        assert "ghost" in response["error"]["message"]

    def test_malformed_envelope_is_an_error_envelope_not_an_exception(self, dispatcher):
        response = dispatcher.handle_wire(["not", "an", "object"])
        assert not response["ok"]
        assert response["error"]["code"] == "protocol_wire_format"

    def test_malformed_tagged_params_yield_an_error_envelope(self, dispatcher):
        # Crafted params whose decoder would raise ValueError/TypeError
        # must still produce a response envelope, never crash the thread.
        response = dispatcher.handle_wire(
            {
                "op": "count",
                "params": {
                    "context": {
                        "$type": "segment",
                        "query": {"$type": "query", "predicates": []},
                        "count": "x",
                    }
                },
            }
        )
        assert not response["ok"]
        assert response["error"]["code"] == "protocol_wire_format"

    def test_newer_api_version_is_rejected(self, dispatcher):
        payload = Request(op="stats").to_wire()
        payload["api_version"] = API_VERSION + 1
        response = dispatcher.handle_wire(payload)
        assert not response["ok"]
        assert response["error"]["code"] == "protocol"

    def test_handle_json_round_trip(self, dispatcher):
        body = json.dumps(
            Request(op="count", params={"context": "tonnage: [0, 100000]"}).to_wire()
        )
        response = json.loads(dispatcher.handle_json(body))
        assert response["ok"] and response["result"] == 800

    def test_handle_json_rejects_bad_json(self, dispatcher):
        response = json.loads(dispatcher.handle_json(b"{nope"))
        assert not response["ok"]
        assert response["error"]["code"] == "protocol_wire_format"


class TestSubmitValidation:
    """Regression tests: submit raises typed errors, never KeyError/TypeError."""

    def test_unknown_op_is_a_typed_error(self, service):
        response = service.submit(Request(op="frobnicate"))
        assert not response.ok
        assert response.error_code == "protocol_unknown_op"
        assert "advise" in response.error  # lists the known ops

    def test_unexpected_parameters_are_rejected(self, service):
        response = service.submit(
            Request(op="back", session="s", params={"bogus": 1})
        )
        assert not response.ok
        assert response.error_code == "protocol"
        assert "bogus" in response.error

    def test_non_integer_indexes_are_rejected(self, service):
        service.open_session("s1", context=_CONTEXT)
        for bad in ("0", 1.5, True, None):
            response = service.submit(
                Request(op="drill", session="s1", answer_index=bad)
            )
            assert not response.ok, bad
            assert response.error_code == "protocol"
            assert "answer_index" in response.error

    def test_empty_session_name_is_rejected(self, service):
        for op in ("open_session", "advise", "drill", "back", "describe", "close_session"):
            response = service.submit(Request(op=op))
            assert not response.ok, op
            assert response.error_code == "protocol"

    def test_non_integer_max_answers_is_rejected(self, service):
        response = service.submit(
            Request(op="open_session", session="s9", max_answers="many")
        )
        assert not response.ok
        assert response.error_code == "protocol"

    def test_errors_carry_timing_and_request_id(self, service):
        response = service.submit(Request(op="frobnicate", request_id="rq-1"))
        assert response.request_id == "rq-1"
        assert response.elapsed_seconds >= 0.0
