"""Unit tests for the versioned JSON wire codec."""

from __future__ import annotations

import datetime
import json
import math

import pytest

from repro.api.codec import SCHEMA_VERSION, dumps, from_wire, loads, to_wire
from repro.errors import WireFormatError
from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    Segment,
    Segmentation,
    SetPredicate,
)


class TestScalars:
    def test_plain_json_scalars_pass_through(self):
        for value in (None, True, False, 0, -17, 3.25, "text", "ünïcode ✓"):
            assert to_wire(value) == value
            assert from_wire(to_wire(value)) == value

    def test_dates_are_tagged(self):
        day = datetime.date(1650, 3, 21)
        assert to_wire(day) == {"$date": "1650-03-21"}
        assert from_wire(to_wire(day)) == day

    def test_datetimes_are_rejected(self):
        with pytest.raises(WireFormatError):
            to_wire(datetime.datetime(2020, 1, 1, 12, 0))

    def test_non_finite_floats_are_tagged(self):
        assert to_wire(math.inf) == {"$float": "inf"}
        assert to_wire(-math.inf) == {"$float": "-inf"}
        assert from_wire(to_wire(math.inf)) == math.inf
        assert math.isnan(from_wire(to_wire(math.nan)))

    def test_frozensets_round_trip_deterministically(self):
        values = frozenset({"b", "a", 3, True, datetime.date(2020, 1, 1)})
        encoded = to_wire(values)
        assert encoded == to_wire(values)  # deterministic ordering
        assert from_wire(encoded) == values

    def test_non_string_dict_keys_are_tagged(self):
        mapping = {1: "one", datetime.date(2020, 1, 2): "day"}
        assert from_wire(to_wire(mapping)) == mapping

    def test_tagged_dict_pairs_are_order_deterministic(self):
        # Equal mappings must produce byte-identical wire text regardless
        # of insertion order.
        assert dumps({1: "a", 2: "b"}) == dumps({2: "b", 1: "a"})

    def test_tuple_dict_keys_are_rejected_at_encode_time(self):
        # A tuple key would decode to an unhashable list; reject it up
        # front instead of crashing the decoder.
        with pytest.raises(WireFormatError) as excinfo:
            to_wire({(1, 2): "x"})
        assert "tuple" in str(excinfo.value)

    def test_dollar_keys_do_not_collide_with_tags(self):
        mapping = {"$type": "not-a-tag", "$date": "still-not"}
        assert from_wire(to_wire(mapping)) == mapping

    def test_unencodable_objects_are_rejected(self):
        with pytest.raises(WireFormatError) as excinfo:
            to_wire(object())
        assert "object" in str(excinfo.value)


class TestPredicatesAndQueries:
    def test_each_predicate_kind_round_trips(self):
        predicates = [
            NoConstraint("tonnage"),
            RangePredicate("year", 1600, 1650, include_high=False),
            RangePredicate("date", datetime.date(1600, 1, 1), datetime.date(1650, 1, 1)),
            SetPredicate("type", frozenset({"fluit", "jacht"})),
            ExclusionPredicate("type", frozenset({"pinas"})),
        ]
        for predicate in predicates:
            assert from_wire(to_wire(predicate)) == predicate

    def test_query_preserves_predicate_order(self):
        query = SDLQuery(
            [NoConstraint("b"), RangePredicate("a", 1, 2), SetPredicate("c", frozenset({"x"}))]
        )
        decoded = from_wire(to_wire(query))
        assert decoded == query
        assert decoded.attributes == query.attributes  # display order kept

    def test_segmentation_round_trips_with_metadata(self):
        context = SDLQuery([NoConstraint("x")])
        segmentation = Segmentation(
            context,
            [
                Segment(SDLQuery([RangePredicate("x", 0, 5, include_high=False)]), 10),
                Segment(SDLQuery([RangePredicate("x", 5, 9)]), 7),
            ],
            context_count=17,
            cut_attributes=("x",),
        )
        decoded = from_wire(to_wire(segmentation))
        assert decoded == segmentation
        assert decoded.cut_attributes == ("x",)
        assert decoded.counts == (10, 7)


class TestAdviceApproxFields:
    """The ``approximate``/``error_bound`` advice fields ride the wire."""

    @pytest.fixture(scope="class")
    def advisor(self):
        from repro.core.advisor import Charles
        from repro.workloads import generate_voc

        return Charles(generate_voc(rows=200, seed=5))

    def test_exact_advice_round_trips_with_default_fields(self, advisor):
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=3)
        assert advice.approximate is False and advice.error_bound is None
        decoded = loads(dumps(advice))
        assert decoded.approximate is False
        assert decoded.error_bound is None
        assert dumps(decoded) == dumps(advice)

    def test_interactive_advice_round_trips_losslessly(self, advisor):
        advice = advisor.advise(
            ["type_of_boat", "tonnage"], max_answers=3, mode="interactive"
        )
        assert advice.approximate is True
        assert advice.error_bound is not None
        decoded = loads(dumps(advice))
        assert decoded.approximate is True
        assert decoded.error_bound == advice.error_bound
        assert dumps(decoded) == dumps(advice)

    def test_non_finite_error_bound_round_trips_via_float_tags(self, advisor):
        import dataclasses

        advice = advisor.advise(["type_of_boat"], max_answers=2)
        for bound in (math.inf, -math.inf):
            stamped = dataclasses.replace(
                advice, approximate=True, error_bound=bound
            )
            assert to_wire(stamped)["error_bound"] == to_wire(bound)
            decoded = loads(dumps(stamped))
            assert decoded.error_bound == bound
        stamped = dataclasses.replace(
            advice, approximate=True, error_bound=math.nan
        )
        decoded = loads(dumps(stamped))
        assert decoded.error_bound is not None
        assert math.isnan(decoded.error_bound)

    def test_payloads_without_the_fields_decode_as_exact(self, advisor):
        # Version-1 advice written before the sketch tier existed carries
        # neither field; it must still decode (backward compatibility
        # within SCHEMA_VERSION).
        advice = advisor.advise(["type_of_boat"], max_answers=2)
        payload = to_wire(advice)
        del payload["approximate"]
        del payload["error_bound"]
        legacy = from_wire(payload)
        assert legacy.approximate is False
        assert legacy.error_bound is None
        assert legacy.answers == advice.answers

    def test_schema_envelope_still_version_one(self, advisor):
        advice = advisor.advise(["type_of_boat"], max_answers=2)
        envelope = json.loads(dumps(advice))
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["data"]["approximate"] is False


class TestTextEnvelope:
    def test_dumps_wraps_schema_version(self):
        envelope = json.loads(dumps({"a": 1}))
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["data"] == {"a": 1}

    def test_loads_rejects_newer_schema(self):
        text = json.dumps({"schema": SCHEMA_VERSION + 1, "data": None})
        with pytest.raises(WireFormatError) as excinfo:
            loads(text)
        assert "schema version" in str(excinfo.value)

    def test_loads_rejects_missing_envelope(self):
        with pytest.raises(WireFormatError):
            loads(json.dumps({"data": None}))
        with pytest.raises(WireFormatError):
            loads("not json at all {")

    def test_unknown_type_tag_is_rejected(self):
        with pytest.raises(WireFormatError) as excinfo:
            from_wire({"$type": "flux_capacitor"})
        assert "flux_capacitor" in str(excinfo.value)

    def test_missing_field_names_the_type(self):
        with pytest.raises(WireFormatError) as excinfo:
            from_wire({"$type": "range", "attribute": "x"})
        assert "range" in str(excinfo.value)
        assert "low" in str(excinfo.value)

    def test_malformed_date_and_float_tags_are_rejected(self):
        with pytest.raises(WireFormatError):
            from_wire({"$date": "yesterday"})
        with pytest.raises(WireFormatError):
            from_wire({"$float": "tiny"})

    def test_malformed_tagged_fields_raise_wire_errors_not_bare_exceptions(self):
        # Decoders must never let TypeError/ValueError escape: a remote
        # client would otherwise crash a server thread with crafted JSON.
        malformed = [
            {"$type": "segment",
             "query": {"$type": "query", "predicates": []}, "count": "x"},
            {"$set": [[1, 2]]},  # unhashable member
            {"$dict": [["lonely-key"]]},  # pair with no value
            {"$type": "scores", "entropy": 0.0, "max_entropy": 0.0,
             "balance": 0.0, "simplicity": "high", "breadth": 1,
             "depth": 1, "covered_fraction": 1.0},
        ]
        for payload in malformed:
            with pytest.raises(WireFormatError):
                from_wire(payload)

    def test_wire_text_is_byte_deterministic(self):
        query = SDLQuery(
            [SetPredicate("t", frozenset({"b", "a", "c"})), RangePredicate("x", 0, 1)]
        )
        assert dumps(query) == dumps(from_wire(to_wire(query)))
