"""End-to-end observability tests: trace envelopes, span assembly on a
single node, ``/v1/metrics`` exposition and the slow-op log surface."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api.client import RemoteAdvisor
from repro.api.protocol import ENVELOPE_EXTENSIONS, Request, Response
from repro.api.server import AdvisorHTTPServer
from repro.errors import ProtocolError, WireFormatError
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]
_ROWS, _SEED = 600, 23


@pytest.fixture(scope="module")
def server():
    service = AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)
    with AdvisorHTTPServer(service, port=0) as running:
        yield running


def _span_names(document, into=None):
    names = [] if into is None else into
    names.append(document.get("name"))
    for child in document.get("children", []) or []:
        _span_names(child, names)
    return names


def _trace_ids(document, into=None):
    ids = set() if into is None else into
    ids.add(document.get("trace_id"))
    for child in document.get("children", []) or []:
        _trace_ids(child, ids)
    return ids


class TestTraceEnvelope:
    def test_trace_is_a_declared_envelope_extension(self):
        assert "trace" in ENVELOPE_EXTENSIONS

    def test_request_trace_round_trips(self):
        request = Request(op="advise", session="s", trace={"trace_id": "t-1"})
        payload = request.to_wire()
        assert payload["trace"] == {"trace_id": "t-1"}
        decoded = Request.from_wire(payload)
        assert decoded.trace == {"trace_id": "t-1"}
        assert decoded == request

    def test_untraced_request_omits_the_field(self):
        payload = Request(op="stats").to_wire()
        assert "trace" not in payload

    def test_legacy_payload_without_trace_decodes_untraced(self):
        payload = Request(op="stats").to_wire()
        payload.pop("trace", None)
        assert Request.from_wire(payload).trace is None

    def test_malformed_trace_is_rejected_on_both_envelopes(self):
        with pytest.raises(WireFormatError):
            Request(op="stats", trace="not an object")
        payload = Request(op="stats").to_wire()
        payload["trace"] = ["nope"]
        with pytest.raises(WireFormatError):
            Request.from_wire(payload)
        with pytest.raises(WireFormatError):
            Response(ok=True, op="stats", trace=42)

    def test_response_trace_round_trips(self):
        response = Response(
            ok=True, op="advise", result=None,
            trace={"name": "service.advise", "trace_id": "t"},
        )
        decoded = Response.from_wire(response.to_wire())
        assert decoded.trace == {"name": "service.advise", "trace_id": "t"}


class TestServiceTracing:
    @pytest.fixture()
    def service(self):
        return AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)

    def test_untraced_request_returns_no_trace(self, service):
        response = service.submit(Request(op="stats"))
        assert response.ok
        assert response.trace is None

    def test_traced_advise_assembles_the_span_tree(self, service):
        service.submit(
            Request(op="open_session", session="probe", table="voc")
        )
        response = service.submit(
            Request(op="advise", session="probe", context=_CONTEXT, trace={})
        )
        assert response.ok
        tree = response.trace
        assert tree is not None
        assert tree["name"] == "service.advise"
        names = _span_names(tree)
        assert "session.advise" in names
        assert any(name.startswith("engine.") for name in names if name)
        assert len(_trace_ids(tree)) == 1  # one trace id for the whole tree
        assert tree["attributes"]["op"] == "advise"

    def test_traced_request_joins_a_distributed_trace(self, service):
        response = service.submit(
            Request(
                op="stats",
                trace={"trace_id": "t-router", "parent_id": "s-router"},
            )
        )
        assert response.trace["trace_id"] == "t-router"
        assert response.trace["parent_id"] == "s-router"

    def test_failed_requests_still_carry_their_trace(self, service):
        response = service.submit(
            Request(op="advise", session="ghost", trace={})
        )
        assert not response.ok
        assert response.trace is not None
        assert response.trace["error"]

    def test_slow_op_log_records_every_request(self, service):
        service.submit(Request(op="stats"))
        document = service.slow_ops()
        assert "stats" in document["ops"]
        (entry, *_) = document["ops"]["stats"]
        assert entry["seconds"] >= 0.0

    def test_slow_op_entries_keep_the_trace(self, service):
        service.submit(Request(op="stats", trace={}))
        entries = service.slow_ops()["ops"]["stats"]
        assert any("trace" in entry for entry in entries)

    def test_slow_ops_limit_is_validated(self, service):
        for bad_limit in ("three", True):
            response = service.submit(Request(op="slow_ops", limit=bad_limit))
            assert not response.ok
            assert response.error_code == ProtocolError.code

    def test_metrics_document_covers_requests_and_engine_ops(self, service):
        service.submit(Request(op="open_session", session="m", table="voc"))
        service.submit(Request(op="advise", session="m", context=_CONTEXT))
        document = service.metrics_document()
        counter_names = {row["name"] for row in document["counters"]}
        gauge_names = {row["name"] for row in document["gauges"]}
        histogram_names = {row["name"] for row in document["histograms"]}
        assert "requests_total" in counter_names
        assert "engine_count_calls_total" in counter_names
        assert "cache_hits_total" in counter_names
        assert "cache_entries" in gauge_names
        assert "sessions_open" in gauge_names
        assert "request_seconds" in histogram_names
        request_rows = [
            row for row in document["histograms"] if row["name"] == "request_seconds"
        ]
        assert {row["labels"]["op"] for row in request_rows} >= {"advise"}

    def test_cache_gauges_track_the_result_cache(self, service):
        service.submit(Request(op="open_session", session="g", table="voc"))
        service.submit(Request(op="advise", session="g", context=_CONTEXT))
        document = service.metrics_document()
        entries = {
            (row["labels"].get("cache"), row["name"]): row["value"]
            for row in document["gauges"]
            if row["name"] in ("cache_entries", "cache_approx_bytes")
        }
        assert entries[("results", "cache_entries")] >= 0
        assert entries[("advice", "cache_entries")] >= 1


class TestMetricsEndpoints:
    def test_plain_metrics_is_prometheus_text(self, server):
        client = RemoteAdvisor(server.url)
        client.open_session("scrape", context=_CONTEXT).close()
        text = client.metrics_text()
        assert "# TYPE charles_requests_total counter" in text
        assert 'quantile="0.5"' in text
        assert "charles_request_seconds" in text

    def test_plain_metrics_content_type(self, server):
        with urllib.request.urlopen(f"{server.url}/v1/metrics") as reply:
            assert reply.headers["Content-Type"].startswith("text/plain")
            assert b"charles_requests_total" in reply.read()

    def test_json_metrics_document(self, server):
        client = RemoteAdvisor(server.url)
        document = client.metrics_document()
        assert {"counters", "gauges", "histograms"} <= document.keys()

    def test_remote_slow_ops(self, server):
        client = RemoteAdvisor(server.url)
        client.open_session("slow", context=_CONTEXT).close()
        document = client.slow_ops(limit=2)
        assert document["per_op"] == 2
        assert "open_session" in document["ops"]


class TestRemoteTracing:
    def test_traced_client_captures_the_last_trace(self, server):
        client = RemoteAdvisor(server.url, trace=True)
        session = client.open_session("traced", context=_CONTEXT)
        session.advise(_CONTEXT)
        assert client.last_trace is not None
        names = _span_names(client.last_trace)
        assert names[0] == "service.advise"
        assert "session.advise" in names
        session.close()

    def test_untraced_client_captures_nothing(self, server):
        client = RemoteAdvisor(server.url)
        client.open_session("plain", context=_CONTEXT).close()
        assert client.last_trace is None


class TestInternalErrorLogging:
    def test_unexpected_rpc_failure_logs_structured_record(self, capsys):
        class ExplodingService:
            def submit(self, request):  # pragma: no cover - fails first
                raise RuntimeError("wired wrong")

            def health_document(self):
                return {}

            metrics = None

        service = AdvisorService(generate_voc(rows=60, seed=1), batch_window=0.0)
        with AdvisorHTTPServer(service, port=0) as running:
            original = running.handle_rpc
            running.handle_rpc = ExplodingService().submit
            try:
                payload = Request(
                    op="stats", trace={"trace_id": "t-dbg"}
                ).to_wire()
                request = urllib.request.Request(
                    f"{running.url}/v1/rpc",
                    data=json.dumps(payload).encode(),
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request)
                assert excinfo.value.code == 500
                body = json.loads(excinfo.value.read())
                assert body["error"]["code"] == "internal"
            finally:
                running.handle_rpc = original
        err = capsys.readouterr().err
        record = json.loads(err.strip().splitlines()[-1])
        assert record["event"] == "http_internal_error"
        assert record["error"] == "RuntimeError: wired wrong"
        assert record["op"] == "stats"
        assert record["trace_id"] == "t-dbg"
        assert "RuntimeError" in record["traceback"]
