"""Transport knobs of :class:`RemoteAdvisor` and the degraded wire bit.

The cluster router leans on two client-layer contracts proven here:

* connection-level failures surface as :class:`RemoteTransportError`
  (wire code ``remote_unreachable``) after the configured retry budget —
  that exact exception class is the router's "mark the node dead and
  fail over" signal, so it must never be raised for a server that
  *answered* with an error;
* ``Advice.degraded`` survives the codec round-trip, and payloads from
  pre-cluster servers (no ``degraded`` key) decode to ``False``.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.api.client import RemoteAdvisor
import json

from repro.api.codec import SCHEMA_VERSION, from_wire, loads, to_wire


def dumps_payload(payload):
    """Wrap an already-encoded payload in the schema envelope."""
    return json.dumps({"schema": SCHEMA_VERSION, "data": payload}, sort_keys=True)
from repro.errors import RemoteError, RemoteTransportError
from repro.service import AdvisorService
from repro.workloads import generate_voc


class TestTransportErrors:
    def test_unreachable_server_raises_transport_error(self):
        client = RemoteAdvisor("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteTransportError) as excinfo:
            client.health()
        assert excinfo.value.code == "remote_unreachable"
        # Transport failures are still RemoteErrors: callers that predate
        # the split keep catching them.
        assert isinstance(excinfo.value, RemoteError)

    def test_error_message_counts_the_attempts(self):
        client = RemoteAdvisor("http://127.0.0.1:9", timeout=0.5, retries=2)
        with pytest.raises(RemoteTransportError) as excinfo:
            client.health()
        assert "after 3 attempt(s)" in str(excinfo.value)

    def test_zero_retries_is_a_single_attempt(self):
        client = RemoteAdvisor("http://127.0.0.1:9", timeout=0.5, retries=0)
        with pytest.raises(RemoteTransportError) as excinfo:
            client.health()
        assert "after 1 attempt(s)" in str(excinfo.value)

    def test_backoff_spaces_the_attempts(self):
        client = RemoteAdvisor(
            "http://127.0.0.1:9", timeout=0.5, retries=2, backoff=0.1
        )
        started = time.monotonic()
        with pytest.raises(RemoteTransportError):
            client.health()
        # Two sleeps between three attempts: 0.1 + 0.2 (doubling).
        assert time.monotonic() - started >= 0.2

    def test_http_error_replies_are_never_retried(self):
        # A server that *answers* — even with a 500 — is not a transport
        # failure: no retry, no RemoteTransportError.
        hits = []

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                hits.append(self.path)
                body = b'{"error": {"code": "boom", "message": "no"}}'
                self.send_response(500)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # keep the test output quiet
                pass

        httpd = HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = RemoteAdvisor(
                f"http://127.0.0.1:{httpd.server_port}", timeout=5.0, retries=3
            )
            with pytest.raises(RemoteError) as excinfo:
                client.health()
            assert not isinstance(excinfo.value, RemoteTransportError)
            assert len(hits) == 1
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5.0)


class TestDegradedWireBit:
    @pytest.fixture(scope="class")
    def advice(self):
        service = AdvisorService(generate_voc(rows=80, seed=3), batch_window=0.0)
        return service.open_session("probe").advise(["type_of_boat", "tonnage"])

    def test_degraded_round_trips_both_ways(self, advice):
        for flag in (False, True):
            flagged = dataclasses.replace(advice, degraded=flag)
            assert from_wire(to_wire(flagged)).degraded is flag

    def test_legacy_payload_without_the_key_decodes_false(self, advice):
        payload = to_wire(advice)
        del payload["degraded"]
        assert from_wire(payload).degraded is False

    def test_router_flagging_pattern_survives_serialisation(self, advice):
        # The router mutates the *wire* payload (result["degraded"] =
        # True) rather than the dataclass; prove that path decodes.
        payload = to_wire(advice)
        payload["degraded"] = True
        assert loads(dumps_payload(payload)).degraded is True
