"""Unit tests for the request/response envelopes and error-code mapping."""

from __future__ import annotations

import pytest

from repro.api.protocol import (
    API_VERSION,
    OPERATIONS,
    Request,
    Response,
    error_from_wire,
)
from repro.errors import (
    CharlesError,
    ProtocolError,
    RemoteError,
    SessionError,
    UnknownColumnError,
    WireFormatError,
    error_code_registry,
    iter_error_classes,
)
from repro.sdl import RangePredicate, SDLQuery


class TestErrorCodes:
    def test_every_error_class_has_a_unique_code(self):
        classes = list(iter_error_classes())
        codes = [cls.code for cls in classes]
        assert len(set(codes)) == len(codes), "duplicate wire error codes"
        assert all(isinstance(code, str) and code for code in codes)

    def test_str_includes_the_code(self):
        error = SessionError("no open session named 'x'")
        assert str(error) == "no open session named 'x' [core_session]"
        assert error.message == "no open session named 'x'"

    def test_structured_constructors_keep_their_codes(self):
        error = UnknownColumnError("speed", ("tonnage",))
        assert error.code == "storage_unknown_column"
        assert "speed" in str(error)
        assert str(error).endswith("[storage_unknown_column]")

    def test_registry_covers_the_hierarchy(self):
        registry = error_code_registry()
        assert registry["core_session"] is SessionError
        assert registry["charles"] is CharlesError
        assert registry["protocol"] is ProtocolError

    def test_error_from_wire_rebuilds_plain_constructors(self):
        rebuilt = error_from_wire("core_session", "gone")
        assert isinstance(rebuilt, SessionError)
        assert rebuilt.message == "gone"

    def test_error_from_wire_falls_back_for_structured_constructors(self):
        rebuilt = error_from_wire("storage_unknown_column", "unknown column 'x'")
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.code == "storage_unknown_column"

    def test_error_from_wire_handles_unknown_codes(self):
        rebuilt = error_from_wire("code_from_the_future", "boom")
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.code == "code_from_the_future"


class TestRequestEnvelope:
    def test_legacy_keyword_construction_routes_into_params(self):
        request = Request(op="drill", session="s", answer_index=2, segment_index=1)
        assert request.params == {"answer_index": 2, "segment_index": 1}
        assert request.answer_index == 2
        assert request.segment_index == 1

    def test_legacy_aliases_are_canonicalised(self):
        assert Request(op="open", session="s").op == "open_session"
        assert Request(op="close", session="s").op == "close_session"

    def test_request_ids_are_generated_and_unique(self):
        first, second = Request(op="stats"), Request(op="stats")
        assert first.request_id and second.request_id
        assert first.request_id != second.request_id

    def test_duplicate_param_spellings_are_rejected(self):
        with pytest.raises(ProtocolError):
            Request(op="drill", params={"answer_index": 0}, answer_index=1)

    def test_wire_round_trip_with_structured_context(self):
        context = SDLQuery([RangePredicate("tonnage", 100, 900)])
        request = Request(op="advise", session="s", context=context)
        decoded = Request.from_wire(request.to_wire())
        assert decoded == request
        assert decoded.params["context"] == context

    def test_from_wire_rejects_newer_api_version(self):
        payload = Request(op="stats").to_wire()
        payload["api_version"] = API_VERSION + 1
        with pytest.raises(ProtocolError) as excinfo:
            Request.from_wire(payload)
        assert "api_version" in str(excinfo.value)

    def test_from_wire_rejects_malformed_envelopes(self):
        with pytest.raises(WireFormatError):
            Request.from_wire("not an object")
        with pytest.raises(WireFormatError):
            Request.from_wire({"session": "s"})  # no op
        with pytest.raises(WireFormatError):
            Request.from_wire({"op": "stats", "params": ["not", "a", "mapping"]})
        with pytest.raises(WireFormatError):
            Request.from_wire({"op": "stats", "session": 42})

    def test_operation_table_is_the_wire_surface(self):
        assert set(OPERATIONS) == {
            "open_session",
            "advise",
            "drill",
            "back",
            "refine",
            "count",
            "describe",
            "stats",
            "ingest",
            "slow_ops",
            "close_session",
        }


class TestResponseEnvelope:
    def test_success_round_trip(self):
        response = Response(
            ok=True, op="count", session="", result=42,
            request_id="r-9", elapsed_seconds=0.25,
        )
        decoded = Response.from_wire(response.to_wire())
        assert decoded == response
        assert decoded.result == 42
        assert decoded.elapsed_seconds == 0.25

    def test_error_round_trip_keeps_code_and_message(self):
        response = Response(
            ok=False, op="drill", session="s",
            error="no open session named 's' [core_session]",
            error_code="core_session",
        )
        decoded = Response.from_wire(response.to_wire())
        assert decoded.error_code == "core_session"
        assert "no open session" in decoded.error

    def test_success_envelope_has_null_error(self):
        assert Response(ok=True, op="stats").to_wire()["error"] is None

    def test_from_wire_rejects_malformed_error_field(self):
        payload = Response(ok=False, op="x", error="e", error_code="charles").to_wire()
        payload["error"] = "just a string"
        with pytest.raises(WireFormatError):
            Response.from_wire(payload)
