"""End-to-end tests: HTTP server + RemoteAdvisor vs in-process sessions.

The acceptance bar of the wire API redesign: a remote exploration and a
local one over the same table produce **identical advice** — same
answers, same order, same scores — proven byte-for-byte on the canonical
wire text.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api.codec import dumps
from repro.api.client import RemoteAdvisor
from repro.api.server import AdvisorHTTPServer
from repro.errors import ProtocolError, RemoteError, SessionError, UnknownOperationError
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]
_ROWS, _SEED = 900, 23


@pytest.fixture(scope="module")
def server():
    service = AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)
    with AdvisorHTTPServer(service, port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    return RemoteAdvisor(server.url)


def _answers_wire(advice):
    """Canonical bytes of what the user sees: context + ranked answers.

    Timing fields (trace runtime, engine operation counters) legitimately
    differ between runs and are excluded from the parity comparison.
    """
    return dumps({"context": advice.context, "answers": advice.answers})


class TestRemoteLocalParity:
    def test_multi_step_exploration_is_byte_identical(self, client):
        # The same multi-step exploration — advise, drill into the best
        # answer's first segment, advise again, back — executed in-process
        # and over HTTP against identically generated tables.
        local_service = AdvisorService(
            generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0
        )
        local = local_service.open_session("probe")
        remote = client.open_session("probe")

        local_steps = [local.advise(_CONTEXT), local.drill(0, 1), local.back()]
        remote_steps = [remote.advise(_CONTEXT), remote.drill(0, 1), remote.back()]

        for step, (mine, theirs) in enumerate(zip(local_steps, remote_steps)):
            assert _answers_wire(mine) == _answers_wire(theirs), f"step {step} diverged"
        # The navigation state mirrors too.
        assert remote.depth == local.depth
        assert remote.breadcrumbs() == local.breadcrumbs()
        remote.close()
        local_service.close_session("probe")

    def test_remote_session_surface_matches_service_session(self, client):
        remote = client.open_session("alice", context=_CONTEXT)
        assert remote.table_name == "voc"
        assert remote.depth == 0
        assert remote.breadcrumbs() == ["(root)"]
        assert "session 'alice'" in remote.describe()
        stats = remote.stats()
        assert stats["name"] == "alice" and stats["requests"] >= 1
        advice = remote.current_advice()
        assert advice is not None and advice.answers
        remote.close()

    def test_current_advice_is_none_before_first_advise(self, client):
        remote = client.open_session("fresh")
        assert remote.current_advice() is None
        remote.close()


class TestRemoteErrors:
    def test_unknown_session_raises_typed_session_error(self, client):
        with pytest.raises(SessionError) as excinfo:
            client.session("nobody")
        assert "nobody" in str(excinfo.value)

    def test_out_of_range_drill_raises_session_error(self, client):
        remote = client.open_session("bob", context=_CONTEXT)
        with pytest.raises(SessionError) as excinfo:
            remote.drill(99, 0)
        # The code appears exactly once: the wire message is bare prose
        # and only the rebuilt exception's str() appends it.
        assert str(excinfo.value).count("[core_session]") == 1
        remote.close()

    def test_unknown_op_raises_typed_protocol_error(self, client):
        with pytest.raises(UnknownOperationError):
            client.call("frobnicate")

    def test_bad_parameter_raises_protocol_error(self, client):
        remote = client.open_session("carol", context=_CONTEXT)
        with pytest.raises(ProtocolError):
            remote.drill("zero", 0)
        remote.close()

    def test_unreachable_server_raises_remote_error(self):
        unreachable = RemoteAdvisor("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteError):
            unreachable.health()


class TestHTTPEndpoints:
    def test_health_document(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["tables"] == ["voc"]
        assert "advise" in health["operations"]

    def test_health_document_identifies_the_node(self, client, server):
        # The cluster router's health probes key off these fields: node
        # identity (restart detection) and per-table data versions
        # (stale-replica detection).
        health = client.health()
        assert health["node"]["node_id"] == server.node_id
        assert health["node"]["pid"] > 0
        assert health["node"]["started_at"] > 0
        assert health["data_versions"].keys() == {"voc"}
        assert isinstance(health["data_versions"]["voc"], int)

    def test_stats_document(self, client):
        stats = client.stats()
        assert "voc" in stats["tables"]
        assert stats["requests"] >= 0

    def test_unknown_path_is_404_with_error_envelope(self, server):
        request = urllib.request.Request(f"{server.url}/v2/nope")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "protocol"

    def test_bad_json_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/rpc", data=b"{broken", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "protocol_wire_format"

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/rpc", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_concurrent_remote_sessions_share_the_advice_cache(self, server, client):
        before = client.stats()["tables"]["voc"]["advice_cache"]["hits"]
        first = client.open_session("u1", context=_CONTEXT)
        second = client.open_session("u2", context=_CONTEXT)
        after = client.stats()["tables"]["voc"]["advice_cache"]["hits"]
        assert after > before  # the second session was served from cache
        first.close()
        second.close()
