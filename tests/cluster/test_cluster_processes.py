"""The real thing: spawned node processes, SIGKILL, graceful degradation.

``test_router_threaded.py`` proves the router's logic against in-process
nodes; this module proves the full stack — ``NodeSupervisor`` spawning
advisor processes, the router discovering a SIGKILLed node through its
transport errors, journal resurrection on a replica, and the typed
``DegradedError`` (never a hang or a raw socket error) once no replica
is left.

Process spawning is expensive, so tables are small and each scenario
starts exactly one cluster.
"""

from __future__ import annotations

import time

import pytest

from repro.api.client import RemoteAdvisor
from repro.api.codec import dumps
from repro.cluster import AdvisorCluster, TableSpec
from repro.errors import DegradedError
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]
_ROWS, _SEED = 300, 5
_SPEC = TableSpec.dataset("voc", rows=_ROWS, seed=_SEED)


def _answers_wire(advice):
    return dumps({"context": advice.context, "answers": advice.answers})


def _local_service():
    return AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)


def _run_exploration(session):
    """advise → drill → back on a session; returns the three advices."""
    return [session.advise(_CONTEXT), session.drill(0, 0), session.back()]


@pytest.mark.parametrize("nodes,replicas", [(1, 0), (2, 1), (3, 1)])
def test_router_matches_local_service_across_grid(nodes, replicas):
    # The acceptance bar of the cluster tier: advice through the router
    # is byte-identical to a single local session, for every cluster
    # shape — including after an ingest broadcast.
    local_service = _local_service()
    with AdvisorCluster([_SPEC], nodes=nodes, replicas=replicas) as cluster:
        client = RemoteAdvisor(cluster.url, timeout=30.0)
        local = local_service.open_session("alice")
        remote = client.open_session("alice")
        local_steps = _run_exploration(local)
        remote_steps = _run_exploration(remote)
        for step, (mine, theirs) in enumerate(zip(local_steps, remote_steps)):
            assert _answers_wire(mine) == _answers_wire(theirs), (
                f"step {step} diverged on {nodes} node(s)"
            )

        local_summary = local_service.ingest(delete="tonnage < 150")
        remote_summary = client.ingest(delete="tonnage < 150")
        assert remote_summary["deleted"] == local_summary["deleted"]
        assert remote_summary["cluster"]["applied_on"] == list(range(nodes))
        assert _answers_wire(local.advise(refresh=True)) == _answers_wire(
            remote.advise(refresh=True)
        )


def test_sigkilled_owner_fails_over_then_cluster_degrades():
    local_service = _local_service()
    with AdvisorCluster([_SPEC], nodes=2, replicas=1, probe_interval=0.3) as cluster:
        client = RemoteAdvisor(cluster.url, timeout=30.0)
        local = local_service.open_session("alice")
        remote = client.open_session("alice")
        assert _answers_wire(local.advise(_CONTEXT)) == _answers_wire(
            remote.advise(_CONTEXT)
        )
        assert _answers_wire(local.drill(0, 0)) == _answers_wire(remote.drill(0, 0))

        owner = cluster.serving_node("alice")
        assert owner is not None
        handle = cluster.kill_node(owner)  # SIGKILL, router not informed
        assert not handle.alive()

        # The next request must fail over to the replica and resurrect
        # the session from the router's journal — same bytes, bounded
        # time, no manual re-open.
        started = time.monotonic()
        local_after = local.back()
        remote_after = remote.back()
        assert time.monotonic() - started < 60.0
        assert _answers_wire(local_after) == _answers_wire(remote_after)

        document = client.cluster()
        assert document["router"]["counters"]["resurrections"] == 1
        assert document["nodes"][str(owner)]["state"] == "dead"

        # Kill the survivor: the router must answer with the typed
        # degraded error, not hang and not leak a socket error.
        survivor = cluster.serving_node("alice")
        assert survivor is not None and survivor != owner
        cluster.kill_node(survivor)
        started = time.monotonic()
        with pytest.raises(DegradedError) as excinfo:
            remote.advise(refresh=True)
        assert time.monotonic() - started < 60.0
        assert excinfo.value.code == "cluster_degraded"
        assert "all dead" in str(excinfo.value)

        # The front door itself is still answering.
        assert client.health()["status"] == "down"
