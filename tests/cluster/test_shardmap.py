"""Routing determinism units for the cluster shard map.

The router's correctness rests on one property: every router process,
restarted at any time, maps the same key to the same ordered node list.
These tests pin that mapping — including a hard-coded sha1 expectation,
so an accidental switch to Python's randomised ``hash()`` fails loudly.
"""

import pytest

from repro.cluster.shardmap import DEFAULT_SHARDS, ShardMap, session_key, table_key
from repro.errors import ClusterError


class TestKeyDerivation:
    def test_session_and_table_keys_never_collide(self):
        # Distinct namespaces: a session named like a table routes
        # independently of that table's sessionless traffic.
        assert session_key("voc") != table_key("voc")

    def test_table_key_treats_none_as_default_table(self):
        assert table_key(None) == table_key("")


class TestDeterminism:
    def test_routing_is_stable_across_instances(self):
        first = ShardMap([0, 1, 2], replicas=1)
        second = ShardMap([2, 0, 1], replicas=1)  # order must not matter
        for name in ("alice", "bob", "carol", "dave"):
            key = session_key(name)
            assert first.route(key) == second.route(key)

    def test_pinned_sha1_expectations(self):
        # Hard-coded outputs of the sha1-based shard function.  If these
        # move, every deployed router disagrees with every restarted one:
        # that is a wire-protocol break, not a refactor.
        shard_map = ShardMap([0, 1, 2], replicas=1)
        assert shard_map.shard_of(session_key("alice")) == 2
        assert shard_map.shard_of(session_key("bob")) == 13
        assert shard_map.shard_of(table_key("voc")) == 21
        assert shard_map.route(session_key("alice")) == (2, 0)
        assert shard_map.route(session_key("bob")) == (1, 2)

    def test_owner_is_first_of_route(self):
        shard_map = ShardMap([0, 1, 2, 3], replicas=2)
        for name in ("alice", "bob", "carol"):
            key = session_key(name)
            route = shard_map.route(key)
            assert shard_map.owner(key) == route[0]
            assert len(route) == 3  # owner + 2 replicas
            assert len(set(route)) == 3  # all distinct nodes


class TestAssignment:
    def test_every_shard_has_owner_plus_replicas(self):
        shard_map = ShardMap([0, 1, 2], replicas=1, shards=16)
        assignment = shard_map.assignment
        assert sorted(assignment) == list(range(16))
        for nodes in assignment.values():
            assert len(nodes) == 2
            assert len(set(nodes)) == 2

    def test_ownership_spreads_over_all_nodes(self):
        shard_map = ShardMap([0, 1, 2, 3], replicas=1)
        owned = {node: shard_map.shards_owned_by(node) for node in range(4)}
        # Rotation assignment: every node owns DEFAULT_SHARDS / n shards.
        assert all(len(shards) == DEFAULT_SHARDS // 4 for shards in owned.values())
        flattened = sorted(shard for shards in owned.values() for shard in shards)
        assert flattened == list(range(DEFAULT_SHARDS))

    def test_replicas_clamp_to_node_count(self):
        # Asking for more copies than peers exist degrades gracefully to
        # "every node holds it" rather than erroring.
        shard_map = ShardMap([0, 1], replicas=5)
        assert shard_map.replicas == 1
        single = ShardMap([7], replicas=3)
        assert single.replicas == 0
        assert single.route(session_key("alice")) == (7,)

    def test_document_round_trips_the_assignment(self):
        shard_map = ShardMap([0, 1], replicas=1, shards=8)
        document = shard_map.to_document()
        assert document["shards"] == 8
        assert document["replicas"] == 1
        assert len(document["assignment"]) == 8


class TestValidation:
    def test_empty_node_list_is_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap([])

    def test_duplicate_node_ids_are_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap([0, 1, 1])

    def test_nonpositive_shard_count_is_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap([0, 1], shards=0)
