"""Router semantics over in-process nodes (threads, not processes).

Spawning real node processes is slow, so the router's *logic* — routing,
byte parity, replication, failover with journal resurrection, degraded
signalling — is exercised here against plain :class:`AdvisorHTTPServer`
instances running in this process.  The true multi-process stack
(supervisor + SIGKILL) is covered by ``test_cluster_processes.py``.

The parity bar is the same as the single-node wire tests: advice served
through the router must be byte-identical to an in-process session over
an identically generated table.
"""

from __future__ import annotations

import pytest

from repro.api.client import RemoteAdvisor
from repro.api.codec import dumps
from repro.api.server import AdvisorHTTPServer
from repro.cluster.router import ClusterRouter, RouterHTTPServer, SessionJournal
from repro.errors import DegradedError, SessionError, UnknownOperationError
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]
_ROWS, _SEED = 500, 11


def _answers_wire(advice):
    """Canonical bytes of what the user sees (timing excluded)."""
    return dumps({"context": advice.context, "answers": advice.answers})


def _node_service():
    return AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)


class _ThreadedCluster:
    """N in-process advisor servers behind a router front door."""

    def __init__(self, nodes=2, replicas=1, **router_options):
        self.servers = [
            AdvisorHTTPServer(_node_service(), port=0, node_id=f"node-{i}").start()
            for i in range(nodes)
        ]
        options = {"probe_interval": 60.0, "timeout": 10.0, "retries": 0}
        options.update(router_options)
        self.router = ClusterRouter(
            {i: server.url for i, server in enumerate(self.servers)},
            replicas=replicas,
            **options,
        ).start()
        self.front = RouterHTTPServer(self.router, port=0).start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.front.shutdown()
        self.router.close()
        for server in self.servers:
            try:
                server.shutdown()
            except OSError:  # already shut down by the test
                pass

    def client(self, **kwargs):
        return RemoteAdvisor(self.front.url, **kwargs)

    def owner_of(self, session):
        return self.router.cluster_document()["sessions"][session]


class TestRouterParity:
    def test_full_exploration_loop_is_byte_identical(self):
        # advise → drill → back → refine through the router vs the same
        # loop on an in-process service over an identical table.
        local_service = _node_service()
        with _ThreadedCluster(nodes=3, replicas=1) as cluster:
            client = cluster.client()
            for name in ("alice", "bob", "carol"):
                local = local_service.open_session(name)
                remote = client.open_session(name)
                local_steps = [
                    local.advise(_CONTEXT),
                    local.drill(0, 0),
                    local.back(),
                    local.drill(0, 1),
                ]
                remote_steps = [
                    remote.advise(_CONTEXT),
                    remote.drill(0, 0),
                    remote.back(),
                    remote.drill(0, 1),
                ]
                for step, (mine, theirs) in enumerate(zip(local_steps, remote_steps)):
                    assert _answers_wire(mine) == _answers_wire(theirs), (
                        f"{name} step {step} diverged"
                    )
                assert remote.breadcrumbs() == local.breadcrumbs()

    def test_ingest_broadcasts_and_refresh_stays_identical(self):
        local_service = _node_service()
        with _ThreadedCluster(nodes=3, replicas=1) as cluster:
            client = cluster.client()
            local = local_service.open_session("alice")
            remote = client.open_session("alice")
            assert _answers_wire(local.advise(_CONTEXT)) == _answers_wire(
                remote.advise(_CONTEXT)
            )

            local_summary = local_service.ingest(delete="tonnage < 200")
            remote_summary = client.ingest(delete="tonnage < 200")
            assert remote_summary["deleted"] == local_summary["deleted"]
            # The mutation reached every node, not just the shard owner.
            assert remote_summary["cluster"]["applied_on"] == [0, 1, 2]
            versions = {
                server.service.data_versions()["voc"] for server in cluster.servers
            }
            assert len(versions) == 1, "node data versions drifted after ingest"

            # Post-ingest refresh: same answers on the shrunk table.
            assert _answers_wire(local.advise(refresh=True)) == _answers_wire(
                remote.advise(refresh=True)
            )

    def test_sessionless_ops_route_by_table(self):
        local_service = _node_service()
        with _ThreadedCluster(nodes=2) as cluster:
            client = cluster.client()
            assert client.count(_CONTEXT) == local_service.count(_CONTEXT)
            assert client.table_names == ["voc"]


class TestFailover:
    def test_node_death_resurrects_sessions_from_journal(self):
        local_service = _node_service()
        with _ThreadedCluster(nodes=2, replicas=1) as cluster:
            client = cluster.client()
            local = local_service.open_session("alice")
            remote = client.open_session("alice")
            local.advise(_CONTEXT)
            remote.advise(_CONTEXT)
            local_drilled = local.drill(0, 0)
            remote_drilled = remote.drill(0, 0)
            assert _answers_wire(local_drilled) == _answers_wire(remote_drilled)

            owner = cluster.owner_of("alice")
            cluster.servers[owner].shutdown()

            # Next request fails over, replays the journal (open → advise
            # → drill) on the survivor, and keeps serving identical bytes.
            local_after = local.back()
            remote_after = remote.back()
            assert _answers_wire(local_after) == _answers_wire(remote_after)
            counters = cluster.router.counters()
            assert counters["failovers"] >= 1
            assert counters["resurrections"] == 1
            assert counters["node_failures"] >= 1
            assert cluster.owner_of("alice") != owner
            states = {
                status["state"]
                for status in cluster.router.monitor.snapshot().values()
            }
            assert states == {"live", "dead"}

    def test_all_nodes_dead_raises_typed_degraded_error(self):
        with _ThreadedCluster(nodes=2, replicas=1) as cluster:
            client = cluster.client()
            remote = client.open_session("alice", context=_CONTEXT)
            for server in cluster.servers:
                server.shutdown()
            with pytest.raises(DegradedError) as excinfo:
                remote.advise(refresh=True)
            assert "all dead" in str(excinfo.value)
            assert excinfo.value.code == "cluster_degraded"
            assert cluster.router.counters()["degraded_requests"] >= 1
            # The front door itself stays up and reports the outage.
            assert client.health()["status"] == "down"

    def test_dead_node_session_errors_pass_through_typed(self):
        # A node that *answers* with an error is not a transport failure:
        # the router must relay the typed error, not fail over.
        with _ThreadedCluster(nodes=2) as cluster:
            client = cluster.client()
            with pytest.raises(SessionError):
                client.session("nobody")
            with pytest.raises(UnknownOperationError):
                client.call("frobnicate")
            assert cluster.router.counters()["failovers"] == 0


class TestDegradedAnswers:
    def test_stale_advice_is_flagged_degraded(self):
        # White-box: pretend the *other* node reported a newer data
        # version than the serving node's copy — the router must mark the
        # answer degraded rather than present it as current.
        with _ThreadedCluster(nodes=2) as cluster:
            client = cluster.client()
            remote = client.open_session("alice")
            advice = remote.advise(_CONTEXT)
            assert advice.degraded is False

            cluster.router.monitor.note_data_version(
                1 - cluster.owner_of("alice"), "voc", 999
            )
            stale = remote.advise(refresh=True)
            assert stale.degraded is True
            assert cluster.router.counters()["degraded_answers"] >= 1


class TestClusterDocuments:
    def test_stats_fan_out_aggregates_every_node(self):
        with _ThreadedCluster(nodes=3) as cluster:
            client = cluster.client()
            client.open_session("alice", context=_CONTEXT)
            stats = client.stats()
            assert set(stats["nodes"]) == {"0", "1", "2"}
            assert stats["requests"] >= 1  # the owner served the session
            assert stats["router"]["forwards"] >= 1

    def test_cluster_document_describes_topology(self):
        with _ThreadedCluster(nodes=2, replicas=1) as cluster:
            client = cluster.client()
            client.open_session("alice", context=_CONTEXT)
            document = client.cluster()
            assert document["router"]["nodes"] == [0, 1]
            assert document["shard_map"]["replicas"] == 1
            assert set(document["nodes"]) == {"0", "1"}
            assert all(
                status["state"] == "live" for status in document["nodes"].values()
            )
            assert "alice" in document["sessions"]

    def test_health_document_degrades_with_the_fleet(self):
        with _ThreadedCluster(nodes=2) as cluster:
            client = cluster.client()
            assert client.health()["status"] == "ok"
            cluster.router.monitor.mark_dead(0)
            assert client.health()["status"] == "degraded"


class TestSessionJournal:
    def test_records_only_state_changing_steps(self):
        journal = SessionJournal({"name": "alice", "table": "voc"})
        journal.record("advise", {"context": _CONTEXT})
        journal.record("drill", {"answer_index": 0, "segment_index": 1})
        journal.record("drill", {"answer_index": 2, "segment_index": 0})
        journal.record("back", {})
        payloads = journal.replay_payloads("alice")
        ops = [payload["op"] for payload in payloads]
        assert ops == ["open_session", "advise", "drill"]
        assert payloads[0]["params"]["replace"] is True
        assert payloads[2]["params"] == {"answer_index": 0, "segment_index": 1}

    def test_reads_do_not_touch_the_journal(self):
        journal = SessionJournal({"name": "alice"})
        journal.record("advise", {"context": _CONTEXT})
        before = journal.to_document()
        journal.record("advise", {"current": True})
        journal.record("advise", {"refresh": True})  # refresh keeps context
        journal.record("describe", {})
        assert journal.to_document() == before

    def test_new_context_resets_the_drill_stack(self):
        journal = SessionJournal({"name": "alice"})
        journal.record("advise", {"context": _CONTEXT})
        journal.record("drill", {"answer_index": 0, "segment_index": 0})
        journal.record("advise", {"context": ["tonnage"]})
        payloads = journal.replay_payloads("alice")
        assert [payload["op"] for payload in payloads] == ["open_session", "advise"]
        assert payloads[1]["params"]["context"] == ["tonnage"]

    def test_refine_upgrades_the_replayed_mode(self):
        journal = SessionJournal({"name": "alice"})
        journal.record("advise", {"context": _CONTEXT, "mode": "approximate"})
        assert journal.replay_payloads("a")[1]["params"]["mode"] == "approximate"
        journal.record("refine", {})
        assert "mode" not in journal.replay_payloads("a")[1]["params"]
