"""Distributed observability: traced requests through a 2-node cluster
assemble one span tree; router ``/v1/metrics`` merges node histograms;
``slow_ops`` fans out and re-ranks."""

from __future__ import annotations

import urllib.request

import pytest

from repro.api.client import RemoteAdvisor
from repro.api.server import AdvisorHTTPServer
from repro.cluster.router import ClusterRouter, RouterHTTPServer
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]
_ROWS, _SEED = 400, 11


def _node_service():
    return AdvisorService(generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0)


class _ThreadedCluster:
    """N in-process advisor servers behind a router front door."""

    def __init__(self, nodes=2, replicas=1, **router_options):
        self.servers = [
            AdvisorHTTPServer(_node_service(), port=0, node_id=f"node-{i}").start()
            for i in range(nodes)
        ]
        options = {"probe_interval": 60.0, "timeout": 10.0, "retries": 0}
        options.update(router_options)
        self.router = ClusterRouter(
            {i: server.url for i, server in enumerate(self.servers)},
            replicas=replicas,
            **options,
        ).start()
        self.front = RouterHTTPServer(self.router, port=0).start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.front.shutdown()
        self.router.close()
        for server in self.servers:
            try:
                server.shutdown()
            except OSError:
                pass

    def client(self, **kwargs):
        return RemoteAdvisor(self.front.url, **kwargs)


def _span_names(document, into=None):
    names = [] if into is None else into
    names.append(document.get("name"))
    for child in document.get("children", []) or []:
        _span_names(child, names)
    return names


def _trace_ids(document, into=None):
    ids = set() if into is None else into
    ids.add(document.get("trace_id"))
    for child in document.get("children", []) or []:
        _trace_ids(child, ids)
    return ids


@pytest.fixture(scope="module")
def cluster():
    with _ThreadedCluster(nodes=2, replicas=1) as running:
        yield running


class TestDistributedTracing:
    def test_traced_advise_assembles_router_and_node_spans(self, cluster):
        client = cluster.client(trace=True)
        # Open without a context so the traced advise computes fresh
        # (a cache-served advise legitimately has no engine spans).
        session = client.open_session("traced")
        session.advise(_CONTEXT)
        tree = client.last_trace
        assert tree is not None
        # Router root, the node's service span beneath it, the session
        # and per-engine-operation spans beneath that.
        assert tree["name"] == "router.advise"
        names = _span_names(tree)
        assert "service.advise" in names
        assert "session.advise" in names
        assert any(name.startswith("engine.") for name in names if name)
        # The whole assembled tree shares the router-issued trace id.
        assert len(_trace_ids(tree)) == 1
        session.close()

    def test_node_root_carries_the_router_parent(self, cluster):
        client = cluster.client(trace=True)
        client.stats()
        tree = client.last_trace
        assert tree["name"] == "router.stats"
        node_roots = [
            child for child in tree.get("children", [])
            if isinstance(child, dict) and child.get("name", "").startswith("service.")
        ]
        assert node_roots
        for node_root in node_roots:
            assert node_root["trace_id"] == tree["trace_id"]
            assert node_root["parent_id"] == tree["span_id"]

    def test_untraced_requests_stay_untraced(self, cluster):
        client = cluster.client()
        client.open_session("plain", context=_CONTEXT).close()
        assert client.last_trace is None


class TestMergedMetrics:
    def test_router_metrics_merge_node_documents(self, cluster):
        client = cluster.client()
        session = client.open_session("metrics", context=_CONTEXT)
        session.advise(_CONTEXT)
        session.close()
        merged = cluster.router.metrics_document()
        assert merged["nodes"] == 2
        counter_names = {row["name"] for row in merged["counters"]}
        assert "requests_total" in counter_names
        assert "router_forwards_total" in counter_names
        histogram_rows = {
            row["name"] for row in merged["histograms"]
        }
        assert "request_seconds" in histogram_rows
        # The merged requests_total equals the sum of the node totals.
        node_totals = sum(
            row["value"]
            for server in cluster.servers
            for row in server.service.metrics_document()["counters"]
            if row["name"] == "requests_total"
        )
        (merged_total,) = [
            row["value"]
            for row in merged["counters"]
            if row["name"] == "requests_total"
        ]
        assert merged_total == node_totals

    def test_router_serves_prometheus_text(self, cluster):
        with urllib.request.urlopen(f"{cluster.front.url}/v1/metrics") as reply:
            assert reply.headers["Content-Type"].startswith("text/plain")
            text = reply.read().decode()
        assert "# TYPE charles_requests_total counter" in text
        assert "charles_router_forwards_total" in text
        assert 'quantile="0.95"' in text

    def test_merged_histogram_counts_cover_both_nodes(self, cluster):
        client = cluster.client()
        # Hit both nodes: stats fans out everywhere.
        client.stats()
        merged = cluster.router.metrics_document()
        stats_rows = [
            row
            for row in merged["histograms"]
            if row["name"] == "request_seconds" and row["labels"].get("op") == "stats"
        ]
        assert stats_rows and stats_rows[0]["count"] >= 2


class TestSlowOpsFanout:
    def test_slow_ops_merges_across_nodes(self, cluster):
        client = cluster.client(trace=True)
        session = client.open_session("slow", context=_CONTEXT)
        session.advise(_CONTEXT)
        session.close()
        document = client.slow_ops()
        assert sorted(document["nodes"]) == [0, 1]
        assert "advise" in document["ops"] or "open_session" in document["ops"]
        # Traced requests keep their span tree in the slow-op entries.
        traced = [
            entry
            for entries in document["ops"].values()
            for entry in entries
            if "trace" in entry
        ]
        assert traced
        assert any(
            entry["trace"].get("trace_id") for entry in traced
        )

    def test_slow_ops_limit_is_honoured_after_the_merge(self, cluster):
        client = cluster.client()
        for _ in range(3):
            client.stats()
        document = client.slow_ops(limit=1)
        assert document["per_op"] == 1
        for entries in document["ops"].values():
            assert len(entries) <= 1
