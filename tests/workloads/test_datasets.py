"""Unit tests for the VOC, astronomy, weblog and parametric synthetic tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cut_query, indep
from repro.errors import WorkloadError
from repro.sdl import SDLQuery
from repro.storage import DataType, QueryEngine
from repro.workloads import (
    ASTRONOMY_COLUMNS,
    FIGURE1_CONTEXT_COLUMNS,
    VOC_COLUMNS,
    WEBLOG_COLUMNS,
    generate_astronomy,
    generate_voc,
    generate_weblog,
    make_correlated_table,
    make_dependent_pair_table,
    make_gaussian_table,
    make_independent_table,
    make_numeric_table,
    make_wide_table,
    make_zipf_table,
)


class TestVOC:
    def test_schema_matches_figure1(self, voc_table):
        assert tuple(voc_table.column_names) == VOC_COLUMNS
        assert set(FIGURE1_CONTEXT_COLUMNS) <= set(VOC_COLUMNS)
        assert voc_table.dtype("tonnage") is DataType.INT
        assert voc_table.dtype("type_of_boat") is DataType.STRING

    def test_row_count_and_determinism(self):
        first = generate_voc(rows=300, seed=1)
        second = generate_voc(rows=300, seed=1)
        assert first.num_rows == 300
        assert first.to_dict() == second.to_dict()
        different = generate_voc(rows=300, seed=2)
        assert different.to_dict() != first.to_dict()

    def test_tonnage_within_figure1_bounds(self, voc_table):
        tonnage = voc_table.column("tonnage")
        assert tonnage.minimum() >= 1000
        assert tonnage.maximum() <= 5000

    def test_boat_type_drives_tonnage(self, voc_table):
        engine = QueryEngine(voc_table)
        context = SDLQuery.over(["type_of_boat", "tonnage"])
        value = indep(
            engine,
            cut_query(engine, context, "type_of_boat"),
            cut_query(engine, context, "tonnage"),
        )
        assert value < 0.95

    def test_trip_identifiers_are_unique(self, voc_table):
        trips = voc_table.to_dict()["trip"]
        assert len(set(trips)) == len(trips)

    def test_built_precedes_departure(self, voc_table):
        data = voc_table.to_dict()
        assert all(b <= d for b, d in zip(data["built"], data["departure_date"]))

    def test_invalid_rows_rejected(self):
        with pytest.raises(WorkloadError):
            generate_voc(rows=0)


class TestAstronomy:
    def test_schema(self, astronomy_table):
        assert tuple(astronomy_table.column_names) == ASTRONOMY_COLUMNS
        assert astronomy_table.dtype("magnitude") is DataType.FLOAT

    def test_class_drives_redshift(self, astronomy_table):
        engine = QueryEngine(astronomy_table)
        context = SDLQuery.over(["object_class", "redshift"])
        value = indep(
            engine,
            cut_query(engine, context, "object_class"),
            cut_query(engine, context, "redshift"),
        )
        assert value < 0.97

    def test_sky_coordinates_within_bounds(self, astronomy_table):
        ra = astronomy_table.column("ra")
        dec = astronomy_table.column("dec")
        assert 0.0 <= ra.minimum() and ra.maximum() <= 360.0
        assert -30.0 <= dec.minimum() and dec.maximum() <= 60.0

    def test_field_derived_from_ra(self, astronomy_table):
        data = astronomy_table.to_dict()
        for ra, field in zip(data["ra"], data["field"][:200]):
            assert field == f"field-{int(ra // 60):02d}"

    def test_invalid_rows_rejected(self):
        with pytest.raises(WorkloadError):
            generate_astronomy(rows=-5)


class TestWeblog:
    def test_schema(self, weblog_table):
        assert tuple(weblog_table.column_names) == WEBLOG_COLUMNS

    def test_url_popularity_is_skewed(self, weblog_table):
        counts = weblog_table.column("url_category").value_counts()
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 2 * ordered[-1]

    def test_category_drives_response_time(self, weblog_table):
        engine = QueryEngine(weblog_table)
        context = SDLQuery.over(["url_category", "response_time_ms"])
        value = indep(
            engine,
            cut_query(engine, context, "url_category"),
            cut_query(engine, context, "response_time_ms"),
        )
        # Binary frequency-ordered cuts blur part of the planted dependence,
        # but the pair must still fall below the paper's 0.99 threshold.
        assert value < 0.99

    def test_status_codes_are_valid(self, weblog_table):
        statuses = set(weblog_table.column("status_code").value_counts())
        assert statuses <= {"200", "302", "304", "400", "401", "404", "500"}

    def test_hours_within_day(self, weblog_table):
        hour = weblog_table.column("hour")
        assert hour.minimum() >= 0
        assert hour.maximum() <= 23

    def test_invalid_rows_rejected(self):
        with pytest.raises(WorkloadError):
            generate_weblog(rows=0)


class TestParametricTables:
    def test_independent_table_columns_and_cardinalities(self):
        table = make_independent_table(rows=500, cardinalities=(3, 5), seed=1)
        assert table.column_names == ["a0", "a1"]
        assert table.column("a0").distinct_count() == 3
        assert table.column("a1").distinct_count() == 5

    def test_independent_table_invalid_cardinality(self):
        with pytest.raises(WorkloadError):
            make_independent_table(rows=10, cardinalities=(1,))

    def test_dependent_pair_strength_one_is_deterministic(self):
        table = make_dependent_pair_table(rows=500, strength=1.0, cardinality=3, seed=2)
        data = table.to_dict()
        assert all(x[1:] == y[1:] for x, y in zip(data["x"], data["y"]))

    def test_dependent_pair_invalid_strength(self):
        with pytest.raises(WorkloadError):
            make_dependent_pair_table(strength=1.5)

    def test_correlated_table_reaches_target_correlation(self):
        table = make_correlated_table(rows=4000, correlation=0.8, seed=3)
        data = table.to_dict()
        measured = np.corrcoef(data["u"], data["v"])[0, 1]
        assert measured == pytest.approx(0.8, abs=0.05)

    def test_correlated_table_invalid_correlation(self):
        with pytest.raises(WorkloadError):
            make_correlated_table(correlation=2.0)

    def test_wide_table_shape(self):
        table = make_wide_table(rows=200, attributes=7, dependent_pairs=2, seed=1)
        assert table.num_columns == 7
        assert table.num_rows == 200

    def test_wide_table_too_many_pairs(self):
        with pytest.raises(WorkloadError):
            make_wide_table(attributes=3, dependent_pairs=2)

    def test_numeric_table(self):
        table = make_numeric_table(rows=100, columns=3, seed=1)
        assert table.column_names == ["n0", "n1", "n2"]
        assert table.dtype("n0") is DataType.FLOAT

    def test_gaussian_table_centres_on_mean(self):
        table = make_gaussian_table(rows=4000, mean=50.0, std=5.0, seed=4)
        values = table.to_dict()["value"]
        assert np.mean(values) == pytest.approx(50.0, abs=0.5)

    def test_zipf_table_skew(self):
        table = make_zipf_table(rows=3000, exponent=1.5, categories=10, seed=5)
        counts = sorted(table.column("category").value_counts().values(), reverse=True)
        assert counts[0] > 3 * counts[-1]

    def test_zipf_table_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            make_zipf_table(exponent=0.0)
        with pytest.raises(WorkloadError):
            make_zipf_table(categories=1)
