"""Unit tests for the workload generator building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    categorical_series,
    correlated_numeric_series,
    dependent_categorical_series,
    make_rng,
    mixture_numeric_series,
    numeric_from_category,
    year_series,
    zipf_categorical_series,
)


class TestCategoricalSeries:
    def test_respects_requested_length(self):
        values = categorical_series(make_rng(1), 100, ["a", "b"])
        assert len(values) == 100
        assert set(values) <= {"a", "b"}

    def test_probabilities_bias_the_draw(self):
        values = categorical_series(make_rng(1), 2000, ["a", "b"], [0.9, 0.1])
        assert values.count("a") > values.count("b") * 3

    def test_deterministic_given_seed(self):
        assert categorical_series(make_rng(7), 50, ["a", "b"]) == categorical_series(
            make_rng(7), 50, ["a", "b"]
        )

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            categorical_series(make_rng(1), 0, ["a"])
        with pytest.raises(WorkloadError):
            categorical_series(make_rng(1), 10, [])
        with pytest.raises(WorkloadError):
            categorical_series(make_rng(1), 10, ["a", "b"], [0.5])
        with pytest.raises(WorkloadError):
            categorical_series(make_rng(1), 10, ["a", "b"], [-1.0, 2.0])
        with pytest.raises(WorkloadError):
            categorical_series(make_rng(1), 10, ["a", "b"], [0.0, 0.0])


class TestZipfSeries:
    def test_first_category_is_most_popular(self):
        values = zipf_categorical_series(make_rng(2), 5000, [f"c{i}" for i in range(8)])
        counts = [values.count(f"c{i}") for i in range(8)]
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]

    def test_invalid_exponent(self):
        with pytest.raises(WorkloadError):
            zipf_categorical_series(make_rng(1), 10, ["a", "b"], exponent=0.0)


class TestDependentCategoricalSeries:
    def test_children_mostly_follow_the_mapping(self):
        parents = ["p"] * 1000 + ["q"] * 1000
        mapping = {"p": ["x"], "q": ["y"]}
        children = dependent_categorical_series(make_rng(3), parents, mapping, noise=0.1)
        agreement = sum(
            1 for parent, child in zip(parents, children)
            if (parent == "p" and child == "x") or (parent == "q" and child == "y")
        )
        assert agreement > 1600

    def test_noise_one_is_uniform(self):
        parents = ["p"] * 2000
        mapping = {"p": ["x"]}
        children = dependent_categorical_series(
            make_rng(3), parents, mapping, noise=1.0, all_categories=["x", "y"]
        )
        assert 700 < children.count("y") < 1300

    def test_unknown_parent_falls_back_to_full_set(self):
        children = dependent_categorical_series(
            make_rng(3), ["unknown"], {"p": ["x"]}, noise=0.0, all_categories=["x", "y"]
        )
        assert children[0] in {"x", "y"}

    def test_invalid_noise(self):
        with pytest.raises(WorkloadError):
            dependent_categorical_series(make_rng(1), ["p"], {"p": ["x"]}, noise=2.0)

    def test_empty_category_set_rejected(self):
        with pytest.raises(WorkloadError):
            dependent_categorical_series(make_rng(1), ["p"], {}, all_categories=[])


class TestNumericFromCategory:
    def test_category_means_are_recovered(self):
        parents = ["low"] * 500 + ["high"] * 500
        values = numeric_from_category(
            make_rng(4), parents, means={"low": 10.0, "high": 100.0},
            spreads={"low": 1.0, "high": 1.0},
        )
        low_mean = np.mean(values[:500])
        high_mean = np.mean(values[500:])
        assert low_mean == pytest.approx(10.0, abs=1.0)
        assert high_mean == pytest.approx(100.0, abs=1.0)

    def test_bounds_are_enforced(self):
        values = numeric_from_category(
            make_rng(4), ["a"] * 200, means={"a": 0.0}, spreads={"a": 10.0},
            minimum=-5.0, maximum=5.0,
        )
        assert min(values) >= -5.0
        assert max(values) <= 5.0

    def test_integer_rounding(self):
        values = numeric_from_category(
            make_rng(4), ["a"] * 10, means={"a": 3.0}, spreads={"a": 0.5}, integer=True
        )
        assert all(float(v).is_integer() for v in values)

    def test_unknown_category_uses_default(self):
        values = numeric_from_category(
            make_rng(4), ["mystery"], means={"a": 5.0}, spreads={"a": 1.0}
        )
        assert len(values) == 1


class TestMixtureAndCorrelated:
    def test_mixture_draws_from_both_components(self):
        values = mixture_numeric_series(
            make_rng(5), 2000, [(0.5, 0.0, 1.0), (0.5, 100.0, 1.0)]
        )
        assert sum(1 for v in values if v < 50) > 700
        assert sum(1 for v in values if v > 50) > 700

    def test_mixture_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            mixture_numeric_series(make_rng(1), 10, [])
        with pytest.raises(WorkloadError):
            mixture_numeric_series(make_rng(1), 10, [(-1.0, 0.0, 1.0)])

    def test_correlated_series_follows_the_slope(self):
        base = list(np.linspace(0, 10, 500))
        partner = correlated_numeric_series(make_rng(6), base, slope=2.0, intercept=1.0,
                                            noise_std=0.01)
        correlation = np.corrcoef(base, partner)[0, 1]
        assert correlation > 0.99


class TestYearSeries:
    def test_years_within_range(self):
        years = year_series(make_rng(7), 500, 1600, 1700)
        assert min(years) >= 1600
        assert max(years) <= 1700

    def test_skew_towards_end(self):
        flat = year_series(make_rng(8), 5000, 1600, 1700, skew_towards_end=0.0)
        skewed = year_series(make_rng(8), 5000, 1600, 1700, skew_towards_end=1.0)
        assert np.mean(skewed) > np.mean(flat)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            year_series(make_rng(1), 10, 1700, 1600)
        with pytest.raises(WorkloadError):
            year_series(make_rng(1), 10, 1600, 1700, skew_towards_end=2.0)
