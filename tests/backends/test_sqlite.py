"""SQLiteBackend: parity with the columnar engine, persistence, threading.

The randomized parity classes are the satellite acceptance tests: counts
and medians must agree with ``QueryEngine`` on randomized contexts.
"""

from __future__ import annotations

import datetime
import threading

import numpy as np
import pytest

from repro.backends.sqlite import SQLiteBackend
from repro.errors import BackendError, EmptyColumnError, UnknownColumnError
from repro.sdl import ExclusionPredicate, RangePredicate, SDLQuery, SetPredicate
from repro.storage import QueryEngine, Table
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def voc():
    return generate_voc(rows=1200, seed=17)


@pytest.fixture(scope="module")
def engine(voc):
    return QueryEngine(voc)


@pytest.fixture(scope="module")
def backend(voc):
    return SQLiteBackend.from_table(voc)


def _random_context(table, rng) -> SDLQuery:
    """A random conjunctive context mixing ranges, sets and exclusions."""
    predicates = []
    nominal = [n for n in table.column_names if not table.column(n).dtype.is_numeric]
    numeric = [n for n in table.column_names if table.column(n).dtype.is_numeric]
    attribute = numeric[int(rng.integers(0, len(numeric)))]
    column = table.column(attribute)
    low, high = sorted(
        float(column.median()) * factor for factor in rng.uniform(0.2, 1.8, size=2)
    )
    predicates.append(RangePredicate(attribute, low, high))
    attribute = nominal[int(rng.integers(0, len(nominal)))]
    values = list(table.column(attribute).value_counts())
    chosen = frozenset(
        values[int(i)] for i in rng.integers(0, len(values), size=min(3, len(values)))
    )
    if rng.random() < 0.5:
        predicates.append(SetPredicate(attribute, chosen))
    else:
        predicates.append(ExclusionPredicate(attribute, chosen))
    return SDLQuery(predicates)


class TestRandomizedParity:
    def test_counts_match_engine(self, voc, engine, backend):
        rng = np.random.default_rng(5)
        for _ in range(25):
            query = _random_context(voc, rng)
            assert backend.count(query) == engine.count(query), query.to_sdl()

    def test_medians_match_engine(self, voc, engine, backend):
        rng = np.random.default_rng(7)
        for _ in range(25):
            query = _random_context(voc, rng)
            if engine.count(query) == 0:
                continue
            for attribute in ("tonnage", "built"):
                assert backend.median(attribute, query) == engine.median(
                    attribute, query
                ), query.to_sdl()

    def test_minmax_and_frequencies_match_engine(self, voc, engine, backend):
        rng = np.random.default_rng(11)
        for _ in range(10):
            query = _random_context(voc, rng)
            if engine.count(query) == 0:
                continue
            assert backend.minmax("tonnage", query) == engine.minmax("tonnage", query)
            assert backend.value_frequencies(
                "departure_harbour", query
            ) == engine.value_frequencies("departure_harbour", query)

    def test_count_batch_matches_engine(self, voc, engine, backend):
        queries = [
            SDLQuery([RangePredicate("tonnage", 100 * i, 100 * i + 400)])
            for i in range(8)
        ]
        queries.append(queries[0])  # duplicate exercises the dedup path
        assert backend.count_batch(queries) == engine.count_batch(queries)


class TestTypes:
    @pytest.fixture(scope="class")
    def typed_table(self):
        return Table.from_dict(
            {
                "day": [datetime.date(2020, 1, d) for d in range(1, 11)],
                "flag": [True, False, True, True, None, False, True, False, True, True],
                "score": [1.5, 2.5, None, 4.0, 5.5, 6.0, 7.25, 8.0, 9.0, 10.0],
                "label": ["a", "b", "a", None, "c", "a", "b", "c", "a", "b"],
            },
            name="typed",
        )

    def test_dates_round_trip(self, typed_table):
        backend = SQLiteBackend.from_table(typed_table)
        engine = QueryEngine(typed_table)
        query = SDLQuery(
            [RangePredicate("day", datetime.date(2020, 1, 3), datetime.date(2020, 1, 8))]
        )
        assert backend.count(query) == engine.count(query) == 6
        assert backend.median("day", query) == engine.median("day", query)
        assert backend.minmax("day") == engine.minmax("day")

    def test_booleans_and_missing_values(self, typed_table):
        backend = SQLiteBackend.from_table(typed_table)
        engine = QueryEngine(typed_table)
        query = SDLQuery([SetPredicate("flag", frozenset({True}))])
        assert backend.count(query) == engine.count(query)
        assert backend.value_frequencies("flag") == engine.value_frequencies("flag")
        # NOT IN never matches missing values (SQL three-valued logic).
        exclusion = SDLQuery([ExclusionPredicate("label", frozenset({"a"}))])
        assert backend.count(exclusion) == engine.count(exclusion)

    def test_float_median_even_count(self, typed_table):
        backend = SQLiteBackend.from_table(typed_table)
        engine = QueryEngine(typed_table)
        assert backend.median("score") == engine.median("score")

    def test_empty_selection_raises(self, typed_table):
        backend = SQLiteBackend.from_table(typed_table)
        empty = SDLQuery([RangePredicate("score", 900, 901)])
        with pytest.raises(EmptyColumnError):
            backend.median("score", empty)
        with pytest.raises(EmptyColumnError):
            backend.minmax("score", empty)

    def test_unknown_column_rejected(self, typed_table):
        backend = SQLiteBackend.from_table(typed_table)
        with pytest.raises(UnknownColumnError):
            backend.count(SDLQuery.over(["nonexistent"]))


class TestLifecycle:
    def test_file_database_persists_schema(self, tmp_path, voc, engine):
        path = str(tmp_path / "voc.db")
        first = SQLiteBackend.from_table(voc, database=path)
        first.close()
        reopened = SQLiteBackend(path)
        query = SDLQuery([RangePredicate("tonnage", 500, 1500)])
        assert reopened.count(query) == engine.count(query)
        assert reopened.is_numeric("built")
        assert not reopened.is_numeric("type_of_boat")
        reopened.close()

    def test_from_table_refuses_overwrite(self, tmp_path, voc):
        path = str(tmp_path / "voc.db")
        SQLiteBackend.from_table(voc, database=path).close()
        with pytest.raises(BackendError):
            SQLiteBackend.from_table(voc, database=path, if_exists="fail")
        # skip reuses the already-loaded rows.
        backend = SQLiteBackend.from_table(voc, database=path, if_exists="skip")
        assert backend.num_rows == voc.num_rows

    def test_sibling_shares_cache_not_counters(self, voc):
        primary = SQLiteBackend.from_table(voc, cache_aggregates=True)
        session = primary.sibling()
        query = SDLQuery([RangePredicate("tonnage", 400, 900)])
        first = primary.count(query)
        assert session.count(query) == first
        assert session.counter.aggregate_hits == 1  # served from shared cache
        assert primary.counter.count_calls == 1
        assert session.counter.count_calls == 1

    def test_skip_rejects_mismatched_stored_table(self, tmp_path, voc):
        path = str(tmp_path / "voc.db")
        SQLiteBackend.from_table(voc, database=path).close()
        smaller = generate_voc(rows=100, seed=1)
        with pytest.raises(BackendError):
            SQLiteBackend.from_table(
                smaller, database=path, table_name="voc", if_exists="skip"
            )

    def test_unseeded_samples_do_not_clobber_each_other(self, voc):
        backend = SQLiteBackend.from_table(voc)
        first = backend.sample(0.5)
        second = backend.sample(0.5)
        assert first.table_name != second.table_name
        query = SDLQuery([RangePredicate("tonnage", 300, 1500)])
        count_before = first.count(query)
        assert first.count(query) == count_before  # still reads its own table

    def test_sample_runs_inside_sqlite(self, voc):
        backend = SQLiteBackend.from_table(voc)
        sampled = backend.sample(0.25, seed=3)
        assert sampled.num_rows == pytest.approx(voc.num_rows * 0.25, rel=0.05)
        # Sampling inside SQLite matches the in-memory sampler bit-for-bit:
        # both draw positions from uniform_sample_indices.
        mem = QueryEngine(voc).sample(0.25, seed=3)
        query = SDLQuery([SetPredicate("type_of_boat", frozenset({"fluit"}))])
        assert sampled.count(query) == mem.count(query)

    def test_thread_safe_counts(self, voc, engine, backend):
        query = SDLQuery([RangePredicate("tonnage", 200, 2200)])
        expected = engine.count(query)
        results = []
        errors = []

        def worker():
            try:
                results.append(backend.count(query))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [expected] * 8
