"""Tests for the ExecutionBackend protocol and the wrapper base.

Includes the PR's architectural acceptance criterion: no module under
``repro.core`` or ``repro.service`` may import the concrete
``QueryEngine`` class — construction goes through the backend registry.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.backends import BackendWrapper, ExecutionBackend
from repro.sdl import SDLQuery
from repro.backends.sqlite import SQLiteBackend
from repro.service.batching import BatchedEngine
from repro.storage import QueryEngine, SampledEngine
from repro.workloads import generate_voc

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture(scope="module")
def table():
    return generate_voc(rows=600, seed=9)


class TestConformance:
    def test_query_engine_conforms(self, table):
        assert isinstance(QueryEngine(table), ExecutionBackend)

    def test_sampled_engine_conforms(self, table):
        assert isinstance(SampledEngine(table, fraction=0.5, seed=1), ExecutionBackend)

    def test_batched_engine_conforms(self, table):
        assert isinstance(BatchedEngine(QueryEngine(table)), ExecutionBackend)

    def test_sqlite_backend_conforms(self, table):
        assert isinstance(SQLiteBackend.from_table(table), ExecutionBackend)

    def test_schema_introspection(self, table):
        engine = QueryEngine(table)
        assert engine.name == table.name
        assert engine.num_rows == table.num_rows
        assert engine.column_names == table.column_names
        assert engine.is_numeric("tonnage")
        assert not engine.is_numeric("type_of_boat")

    def test_stats_and_reset(self, table):
        engine = QueryEngine(table)
        engine.count(SDLQuery.over(["tonnage"]))
        stats = engine.stats()
        assert stats["backend"] == "memory"
        assert stats["operations"]["count_calls"] == 1
        engine.reset()
        assert engine.counter.count_calls == 0


class TestBackendWrapper:
    def test_delegates_protocol_and_optional_capabilities(self, table):
        inner = QueryEngine(table)
        wrapper = BackendWrapper(inner)
        assert wrapper.num_rows == table.num_rows
        assert wrapper.column_names == table.column_names
        assert wrapper.counter is inner.counter
        # Optional capability passes through __getattr__.
        assert wrapper.table is table

    def test_unwrap_pierces_layers(self, table):
        inner = QueryEngine(table)
        double = BackendWrapper(BackendWrapper(inner))
        assert double.unwrap() is inner

    def test_cover_delegates_through_sampling_wrappers(self, table):
        # Regression: a wrapper recomputing cover from scaled counts over
        # the sample's num_rows used to return covers > 1.
        sampled = SampledEngine(table, fraction=0.25, seed=2)
        wrapped = BatchedEngine(sampled)
        whole = SDLQuery.over(["tonnage"])
        assert wrapped.cover(whole) == pytest.approx(1.0)
        assert 0.0 <= wrapped.cover(whole, whole) <= 1.0

    def test_sibling_of_batched_engine_shares_cache(self, table):
        primary = BatchedEngine(QueryEngine(table, cache_aggregates=True))
        session = primary.sibling()
        assert session.cache is primary.cache
        assert session.counter is not primary.counter


class TestLayerBoundary:
    """The acceptance criterion: core/service never import QueryEngine.

    Since the analysis package landed, the single source of truth for
    this invariant is lint rule CHR001 (``repro.analysis``); the original
    ad-hoc line scan lives on only as this thin, greppably-named wrapper.
    """

    @pytest.mark.parametrize("package", ["core", "service"])
    def test_no_concrete_engine_imports(self, package):
        from repro.analysis import get_rule, lint_paths

        rule = get_rule("CHR001")()
        findings = lint_paths([SRC_ROOT / package], rules=[rule])
        assert not findings, (
            "core/service modules must depend on the ExecutionBackend "
            "protocol, not the concrete engine:\n"
            + "\n".join(f.format(show_hint=False) for f in findings)
        )

    def test_rule_catches_a_planted_violation(self, tmp_path):
        from repro.analysis import get_rule, lint_paths

        planted = tmp_path / "offender.py"
        planted.write_text(
            "from repro.storage.engine import QueryEngine\n", encoding="utf-8"
        )
        findings = lint_paths([planted], rules=[get_rule("CHR001")()])
        assert [f.rule_id for f in findings] == ["CHR001"]
        assert findings[0].line == 1
