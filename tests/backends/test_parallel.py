"""Tests for the ParallelEngine backend and its registry specs."""

from __future__ import annotations

import pytest

from repro.backends import ExecutionBackend, open_backend
from repro.backends.parallel import ParallelEngine
from repro.backends.pool import ExecutorPool
from repro.errors import BackendError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate
from repro.storage import QueryEngine, ResultCache, SampledEngine
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def voc():
    return generate_voc(rows=400, seed=7)


def _queries():
    return [
        SDLQuery([SetPredicate("type_of_boat", frozenset({"fluit"}))]),
        SDLQuery([RangePredicate("tonnage", 500, 2500), NoConstraint("built")]),
        SDLQuery([RangePredicate("tonnage", 500, 2500), NoConstraint("built")]),
    ]


class TestParallelEngine:
    def test_conforms_to_the_protocol(self, voc):
        engine = ParallelEngine(voc, partitions=3, workers=2)
        assert isinstance(engine, ExecutionBackend)

    def test_everything_matches_the_sequential_engine(self, voc):
        sequential = QueryEngine(voc)
        parallel = ParallelEngine(voc, partitions=4, workers=2)
        for query in _queries():
            assert parallel.count(query) == sequential.count(query)
            assert parallel.cover(query) == sequential.cover(query)
        assert parallel.count_batch(_queries()) == sequential.count_batch(_queries())
        assert parallel.median_batch("tonnage", [None, *_queries()]) == (
            sequential.median_batch("tonnage", [None, *_queries()])
        )
        assert parallel.minmax("tonnage", _queries()[0]) == sequential.minmax(
            "tonnage", _queries()[0]
        )
        assert parallel.value_frequencies("type_of_boat") == (
            sequential.value_frequencies("type_of_boat")
        )
        # Operation accounting is identical to the sequential path.
        assert parallel.counter.snapshot() == sequential.counter.snapshot()

    def test_defaults_workers_to_partitions_and_vice_versa(self, voc):
        assert ParallelEngine(voc, partitions=3).pool.workers == 3
        assert ParallelEngine(voc, workers=2).partitions == 2

    def test_shares_an_external_pool(self, voc):
        pool = ExecutorPool(2, name="shared")
        engine = ParallelEngine(voc, partitions=4, pool=pool)
        assert engine.pool is pool
        engine.count(_queries()[0])
        assert pool.stats()["tasks"] > 0

    def test_sibling_shares_pool_shards_and_cache(self, voc):
        cache = ResultCache(capacity=64)
        engine = ParallelEngine(voc, partitions=3, workers=2, cache=cache)
        sibling = engine.sibling()
        assert isinstance(sibling, ParallelEngine)
        assert sibling.pool is engine.pool
        assert sibling.partitions == engine.partitions
        assert sibling.inner.partitioned_table is engine.inner.partitioned_table
        assert sibling.cache is engine.cache
        engine.count(_queries()[0])
        sibling.count(_queries()[0])
        assert sibling.counter.cache_hits == 1
        assert sibling.counter.evaluations == 0

    def test_stats_report_the_parallel_substrate(self, voc):
        engine = ParallelEngine(voc, partitions=3, workers=2)
        stats = engine.stats()
        assert stats["backend"] == "parallel(memory)"
        assert stats["partitions"] == 3
        assert stats["pool"]["workers"] == 2

    def test_requires_an_in_memory_table(self):
        class Opaque:
            pass

        with pytest.raises(BackendError):
            ParallelEngine(Opaque())

    def test_rejects_non_positive_partitions(self, voc):
        with pytest.raises(BackendError):
            ParallelEngine(voc, partitions=0)


class TestParallelSpecs:
    def test_partitions_and_workers_spec(self, voc):
        backend = open_backend("memory?partitions=4&workers=2", voc)
        assert isinstance(backend, ParallelEngine)
        assert backend.partitions == 4
        assert backend.pool.workers == 2

    def test_workers_alone_implies_partitions(self, voc):
        backend = open_backend("memory?workers=3", voc)
        assert isinstance(backend, ParallelEngine)
        assert backend.partitions == 3

    def test_partitions_alone_implies_workers(self, voc):
        backend = open_backend("memory?partitions=2", voc)
        assert backend.pool.workers == 2

    def test_plain_memory_stays_a_query_engine(self, voc):
        assert isinstance(open_backend("memory", voc), QueryEngine)
        assert isinstance(open_backend("memory?workers=1", voc), QueryEngine)

    def test_context_parameters_from_consumers(self, voc):
        pool = ExecutorPool(2)
        backend = open_backend("memory", voc, partitions=2, workers=2, pool=pool)
        assert isinstance(backend, ParallelEngine)
        assert backend.pool is pool

    def test_spec_overrides_context(self, voc):
        backend = open_backend("memory?partitions=5", voc, partitions=2, workers=2)
        assert backend.partitions == 5

    def test_composes_with_sampling(self, voc):
        backend = open_backend("memory?partitions=2&workers=2&sample=0.5&seed=3", voc)
        assert isinstance(backend, SampledEngine)
        assert isinstance(backend.inner, ParallelEngine)

    def test_sample_preserves_engine_options(self, voc):
        # The sequential QueryEngine.sample carries cache_size/use_index to
        # the sampled sibling; the parallel wrapper must do the same (plus
        # shard count and pool), or sampled specs silently lose options.
        engine = ParallelEngine(
            voc, partitions=2, workers=2, cache_size=512, use_index=True
        )
        sampled = engine.sample(0.5, seed=3)
        assert sampled.partitions == engine.partitions
        assert sampled.pool is engine.pool
        assert sampled.inner._cache_size == 512
        assert sampled.inner._use_index is True

    def test_workers_zero_shards_to_the_per_core_pool(self, voc):
        # workers=0 means "one worker per core" everywhere; the shard
        # count must follow the resolved pool size, not the raw sentinel.
        from repro.backends.pool import resolve_workers

        backend = open_backend("memory?workers=0", voc)
        assert isinstance(backend, ParallelEngine)
        assert backend.pool.workers == resolve_workers(0)
        assert backend.partitions == resolve_workers(0)

    def test_sqlite_ignores_parallel_context(self, voc):
        backend = open_backend("sqlite", voc, partitions=2, workers=2, pool=None)
        assert backend.count(_queries()[0]) == QueryEngine(voc).count(_queries()[0])
