"""Backend spec parsing and registry resolution."""

from __future__ import annotations

import pytest

from repro.backends import BackendRegistry, BackendSpec, open_backend
from repro.backends.sqlite import SQLiteBackend
from repro.errors import BackendError
from repro.sdl import RangePredicate, SDLQuery
from repro.storage import QueryEngine, SampledEngine
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def table():
    return generate_voc(rows=500, seed=21)


class TestSpecParsing:
    def test_bare_scheme(self):
        spec = BackendSpec.parse("memory")
        assert spec == BackendSpec("memory")

    def test_params(self):
        spec = BackendSpec.parse("memory?sample=0.1&seed=7&index=1")
        assert spec.scheme == "memory"
        assert spec.params == {"sample": "0.1", "seed": "7", "index": "1"}

    def test_path_and_fragment(self):
        spec = BackendSpec.parse("sqlite:///data/voc.db#voyages")
        assert spec.scheme == "sqlite"
        assert spec.path == "/data/voc.db"
        assert spec.fragment == "voyages"

    def test_scheme_is_case_insensitive(self):
        assert BackendSpec.parse("SQLite").scheme == "sqlite"

    @pytest.mark.parametrize("bad", ["", "   ", "://x"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(BackendError):
            BackendSpec.parse(bad)


class TestOpenBackend:
    def test_memory(self, table):
        backend = open_backend("memory", table)
        assert isinstance(backend, QueryEngine)
        assert backend.num_rows == table.num_rows

    def test_memory_options(self, table):
        backend = open_backend("memory?cache=32&index=1", table)
        assert isinstance(backend, QueryEngine)
        assert backend.cache.capacity == 32

    def test_cache_zero_disables_caching(self, table):
        backend = open_backend("memory?cache=0", table)
        assert backend.cache.capacity == 0

    def test_memory_sampled(self, table):
        backend = open_backend("memory?sample=0.2&seed=3", table)
        assert isinstance(backend, SampledEngine)
        assert backend.fraction == pytest.approx(0.2)
        assert backend.inner.num_rows == pytest.approx(table.num_rows * 0.2, rel=0.05)

    def test_sqlite_in_memory(self, table):
        backend = open_backend("sqlite", table)
        assert isinstance(backend, SQLiteBackend)
        query = SDLQuery([RangePredicate("tonnage", 100, 900)])
        assert backend.count(query) == QueryEngine(table).count(query)

    def test_sqlite_file_with_fragment(self, table, tmp_path):
        path = tmp_path / "db.sqlite"
        spec = f"sqlite://{path}#voyages"
        created = open_backend(spec, table)
        assert created.table_name == "voyages"
        # Re-opening the same file needs no source table at all.
        reopened = open_backend(spec)
        assert reopened.num_rows == table.num_rows

    def test_backend_instances_pass_through(self, table):
        engine = QueryEngine(table)
        assert open_backend(engine) is engine

    def test_memory_requires_table(self):
        with pytest.raises(BackendError):
            open_backend("memory")

    def test_sqlite_without_table_or_path_rejected(self):
        with pytest.raises(BackendError):
            open_backend("sqlite")

    def test_unknown_scheme(self, table):
        with pytest.raises(BackendError) as excinfo:
            open_backend("duckdb", table)
        assert "memory" in str(excinfo.value)  # lists registered schemes

    def test_rejects_non_backend_objects(self):
        with pytest.raises(BackendError):
            open_backend(42)


class TestCustomRegistry:
    def test_third_party_scheme(self, table):
        registry = BackendRegistry()
        registry.register("mem2", lambda spec, table=None, **_: QueryEngine(table))
        backend = open_backend("mem2", table, registry=registry)
        assert isinstance(backend, QueryEngine)

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry()
        registry.register("x", lambda spec, **_: None)
        with pytest.raises(BackendError):
            registry.register("x", lambda spec, **_: None)
        registry.register("x", lambda spec, **_: None, replace=True)
