"""Tests for the shared executor pool."""

from __future__ import annotations

import os
import threading

import pytest

from repro.backends.pool import (
    MAX_WORKERS,
    ExecutorPool,
    parallel_requested,
    resolve_workers,
)
from repro.errors import BackendError


class TestResolveWorkers:
    def test_explicit_value_passes_through(self):
        assert resolve_workers(3) == 3

    def test_none_and_zero_mean_one_per_core(self):
        expected = min(os.cpu_count() or 1, MAX_WORKERS)
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected

    def test_values_are_bounded(self):
        assert resolve_workers(10_000) == MAX_WORKERS

    def test_negative_is_an_error(self):
        with pytest.raises(BackendError):
            resolve_workers(-2)


class TestParallelRequested:
    def test_sequential_defaults_do_not_opt_in(self):
        assert not parallel_requested()
        assert not parallel_requested(partitions=1, workers=1)
        assert not parallel_requested(partitions=None, workers=None)

    def test_any_knob_opts_in(self):
        assert parallel_requested(partitions=2)
        assert parallel_requested(workers=4)
        assert parallel_requested(workers=0)  # one worker per core
        assert parallel_requested(pool=ExecutorPool(1))


class TestExecutorPool:
    def test_map_preserves_input_order(self):
        with ExecutorPool(4) as pool:
            assert pool.map(lambda x: x * x, range(10)) == [x * x for x in range(10)]

    def test_single_worker_maps_inline(self):
        pool = ExecutorPool(1)
        thread_ids = pool.map(lambda _: threading.get_ident(), range(5))
        assert set(thread_ids) == {threading.get_ident()}
        stats = pool.stats()
        assert stats["inline_batches"] == 1
        assert stats["parallel_batches"] == 0
        assert stats["started"] is False

    def test_single_item_maps_inline_even_with_many_workers(self):
        pool = ExecutorPool(4)
        assert pool.map(lambda x: x + 1, [41]) == [42]
        assert pool.stats()["started"] is False

    def test_parallel_batches_use_worker_threads(self):
        with ExecutorPool(2) as pool:
            thread_ids = pool.map(lambda _: threading.get_ident(), range(8))
            assert threading.get_ident() not in thread_ids
            stats = pool.stats()
            assert stats["parallel_batches"] == 1
            assert stats["tasks"] == 8
            assert stats["started"] is True

    def test_worker_detection_requires_the_name_separator(self):
        # A worker of a *different* pool whose id shares this pool's id as
        # a string prefix (pool 1 vs pool 10) must not be mistaken for one
        # of ours — that would silently degrade its maps to inline.
        pool = ExecutorPool(2)
        current = threading.current_thread()
        original = current.name
        try:
            current.name = f"{pool._thread_prefix}0_0"
            assert not pool._in_worker()
            current.name = f"{pool._thread_prefix}_0"
            assert pool._in_worker()
        finally:
            current.name = original

    def test_exceptions_propagate(self):
        def explode(x):
            raise ValueError(f"boom {x}")

        with ExecutorPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map(explode, range(4))
        pool_inline = ExecutorPool(1)
        with pytest.raises(ValueError):
            pool_inline.map(explode, range(4))

    def test_shared_across_threads(self):
        pool = ExecutorPool(2)
        results = []

        def worker(offset):
            results.append(pool.map(lambda x: x + offset, range(4)))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.shutdown()
        assert sorted(r[0] for r in results) == list(range(6))

    def test_usable_after_shutdown(self):
        pool = ExecutorPool(2)
        assert pool.map(lambda x: x, range(4)) == list(range(4))
        pool.shutdown()
        assert pool.map(lambda x: x, range(4)) == list(range(4))
        pool.shutdown()

    def test_repr_is_deterministic(self):
        assert repr(ExecutorPool(3, name="svc")) == repr(ExecutorPool(3, name="svc"))
