"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("demo", "advise", "profile", "segment", "serve", "datasets"):
            args = parser.parse_args(
                [command] + (["--on", "tonnage"] if command == "segment" else [])
            )
            assert args.command == command

    def test_advise_defaults_follow_the_paper(self):
        args = build_parser().parse_args(["advise", "--dataset", "voc"])
        assert args.max_indep == pytest.approx(0.99)
        assert args.max_depth == 12


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_datasets_lists_builtins(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "voc" in output and "weblog" in output and "astronomy" in output

    def test_demo_runs_figure1_scenario(self, capsys):
        assert main(["demo", "--rows", "400", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "ranked answers" in output
        assert "tonnage" in output

    def test_advise_on_builtin_dataset(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--max-answers", "3",
            ]
        )
        assert exit_code == 0
        assert "selected answer" in capsys.readouterr().out

    def test_advise_with_sql_context(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--context", "tonnage BETWEEN 1000 AND 3000 AND type_of_boat IN ('fluit', 'jacht')",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0

    def test_advise_requires_a_source(self, capsys):
        assert main(["advise", "--columns", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_advise_on_csv_file(self, tmp_path, capsys):
        csv_path = tmp_path / "data.csv"
        rows = ["x,category"]
        for index in range(60):
            rows.append(f"{index},{'a' if index < 30 else 'b'}")
        csv_path.write_text("\n".join(rows) + "\n", encoding="utf-8")
        exit_code = main(["advise", "--csv", str(csv_path), "--max-answers", "2"])
        assert exit_code == 0
        assert "ranked answers" in capsys.readouterr().out

    def test_serve_command_reports_throughput(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset", "voc",
                "--rows", "400",
                "--users", "3",
                "--steps", "2",
                "--distinct-paths", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "req/s" in output
        assert "result cache hit rate" in output
        assert "session 'user-00'" in output

    def test_profile_command(self, capsys):
        assert main(["profile", "--dataset", "weblog", "--rows", "300"]) == 0
        output = capsys.readouterr().out
        assert "url_category" in output

    def test_segment_command(self, capsys):
        exit_code = main(
            [
                "segment",
                "--dataset", "voc",
                "--rows", "400",
                "--on", "departure_harbour", "tonnage",
                "--style", "table",
            ]
        )
        assert exit_code == 0
        assert "Segmentation" in capsys.readouterr().out

    def test_segment_treemap_style(self, capsys):
        exit_code = main(
            ["segment", "--dataset", "voc", "--rows", "400", "--on", "tonnage",
             "--style", "treemap"]
        )
        assert exit_code == 0

    def test_error_is_reported_with_exit_code_two(self, capsys):
        exit_code = main(
            ["segment", "--dataset", "voc", "--rows", "400", "--on", "not_a_column"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_advise_with_distribution_probe(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "departure_harbour",
                "--show-distribution", "tonnage",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "distribution of 'tonnage'" in capsys.readouterr().out

    def test_explore_with_drill_path(self, capsys):
        exit_code = main(
            [
                "explore",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--path", "0:0", "0:0",
                "--max-answers", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "drilled into answer 0" in output
        assert "level 2" in output

    def test_explore_with_invalid_path_token(self, capsys):
        exit_code = main(
            [
                "explore",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--path", "nonsense",
            ]
        )
        assert exit_code == 2
        assert "invalid drill step" in capsys.readouterr().err

    def test_surprise_ranker_option(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage", "departure_harbour",
                "--ranker", "surprise",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "surprise" in capsys.readouterr().out

    def test_weighted_ranker_option(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--ranker", "weighted",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "weighted" in capsys.readouterr().out

    def test_advise_with_parallel_flags_matches_sequential(self, capsys):
        arguments = [
            "advise",
            "--dataset", "voc",
            "--rows", "400",
            "--columns", "type_of_boat", "tonnage",
            "--max-answers", "3",
        ]
        assert main(arguments) == 0
        sequential = capsys.readouterr().out
        assert main([*arguments, "--workers", "2", "--partitions", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_serve_with_engine_workers_and_partitions(self, capsys):
        exit_code = main(
            [
                "serve",
                "--dataset", "voc",
                "--rows", "400",
                "--users", "3",
                "--steps", "2",
                "--workers", "2",
                "--engine-workers", "2",
                "--partitions", "2",
            ]
        )
        assert exit_code == 0
        assert "req/s" in capsys.readouterr().out
