"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("demo", "advise", "profile", "segment", "serve", "datasets"):
            args = parser.parse_args(
                [command] + (["--on", "tonnage"] if command == "segment" else [])
            )
            assert args.command == command

    def test_advise_defaults_follow_the_paper(self):
        args = build_parser().parse_args(["advise", "--dataset", "voc"])
        assert args.max_indep == pytest.approx(0.99)
        assert args.max_depth == 12


class TestCommands:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out

    def test_datasets_lists_builtins(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "voc" in output and "weblog" in output and "astronomy" in output

    def test_demo_runs_figure1_scenario(self, capsys):
        assert main(["demo", "--rows", "400", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "ranked answers" in output
        assert "tonnage" in output

    def test_advise_on_builtin_dataset(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--max-answers", "3",
            ]
        )
        assert exit_code == 0
        assert "selected answer" in capsys.readouterr().out

    def test_advise_with_sql_context(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--context", "tonnage BETWEEN 1000 AND 3000 AND type_of_boat IN ('fluit', 'jacht')",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0

    def test_advise_requires_a_source(self, capsys):
        assert main(["advise", "--columns", "x"]) == 2
        assert "error" in capsys.readouterr().err

    def test_advise_on_csv_file(self, tmp_path, capsys):
        csv_path = tmp_path / "data.csv"
        rows = ["x,category"]
        for index in range(60):
            rows.append(f"{index},{'a' if index < 30 else 'b'}")
        csv_path.write_text("\n".join(rows) + "\n", encoding="utf-8")
        exit_code = main(["advise", "--csv", str(csv_path), "--max-answers", "2"])
        assert exit_code == 0
        assert "ranked answers" in capsys.readouterr().out

    def test_serve_simulate_reports_throughput(self, capsys):
        exit_code = main(
            [
                "serve",
                "--simulate",
                "--dataset", "voc",
                "--rows", "400",
                "--users", "3",
                "--steps", "2",
                "--distinct-paths", "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "req/s" in output
        assert "result cache hit rate" in output
        assert "session 'user-00'" in output

    def test_serve_requires_http_or_simulate(self, capsys):
        assert main(["serve", "--dataset", "voc", "--rows", "300"]) == 2
        err = capsys.readouterr().err
        assert "--http" in err and "--simulate" in err

    def test_serve_rejects_http_and_simulate_together(self, capsys):
        exit_code = main(
            ["serve", "--dataset", "voc", "--rows", "300",
             "--http", "0", "--simulate"]
        )
        assert exit_code == 2
        assert "not both" in capsys.readouterr().err

    def test_profile_command(self, capsys):
        assert main(["profile", "--dataset", "weblog", "--rows", "300"]) == 0
        output = capsys.readouterr().out
        assert "url_category" in output

    def test_segment_command(self, capsys):
        exit_code = main(
            [
                "segment",
                "--dataset", "voc",
                "--rows", "400",
                "--on", "departure_harbour", "tonnage",
                "--style", "table",
            ]
        )
        assert exit_code == 0
        assert "Segmentation" in capsys.readouterr().out

    def test_segment_treemap_style(self, capsys):
        exit_code = main(
            ["segment", "--dataset", "voc", "--rows", "400", "--on", "tonnage",
             "--style", "treemap"]
        )
        assert exit_code == 0

    def test_error_is_reported_with_exit_code_two(self, capsys):
        exit_code = main(
            ["segment", "--dataset", "voc", "--rows", "400", "--on", "not_a_column"]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_advise_with_distribution_probe(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "departure_harbour",
                "--show-distribution", "tonnage",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "distribution of 'tonnage'" in capsys.readouterr().out

    def test_explore_with_drill_path(self, capsys):
        exit_code = main(
            [
                "explore",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--path", "0:0", "0:0",
                "--max-answers", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "drilled into answer 0" in output
        assert "level 2" in output

    def test_explore_with_invalid_path_token(self, capsys):
        exit_code = main(
            [
                "explore",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--path", "nonsense",
            ]
        )
        assert exit_code == 2
        assert "invalid drill step" in capsys.readouterr().err

    def test_surprise_ranker_option(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage", "departure_harbour",
                "--ranker", "surprise",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "surprise" in capsys.readouterr().out

    def test_weighted_ranker_option(self, capsys):
        exit_code = main(
            [
                "advise",
                "--dataset", "voc",
                "--rows", "400",
                "--columns", "type_of_boat", "tonnage",
                "--ranker", "weighted",
                "--max-answers", "2",
            ]
        )
        assert exit_code == 0
        assert "weighted" in capsys.readouterr().out

    def test_advise_with_parallel_flags_matches_sequential(self, capsys):
        arguments = [
            "advise",
            "--dataset", "voc",
            "--rows", "400",
            "--columns", "type_of_boat", "tonnage",
            "--max-answers", "3",
        ]
        assert main(arguments) == 0
        sequential = capsys.readouterr().out
        assert main([*arguments, "--workers", "2", "--partitions", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_serve_with_engine_workers_and_partitions(self, capsys):
        exit_code = main(
            [
                "serve",
                "--simulate",
                "--dataset", "voc",
                "--rows", "400",
                "--users", "3",
                "--steps", "2",
                "--workers", "2",
                "--engine-workers", "2",
                "--partitions", "2",
            ]
        )
        assert exit_code == 0
        assert "req/s" in capsys.readouterr().out


class TestCallCommand:
    """The `call` sub-command against a live HTTP server."""

    @pytest.fixture()
    def server(self):
        from repro.api.server import AdvisorHTTPServer
        from repro.service import AdvisorService
        from repro.workloads import generate_voc

        service = AdvisorService(generate_voc(rows=400, seed=3), batch_window=0.0)
        with AdvisorHTTPServer(service) as running:
            yield running

    def test_call_count_round_trip(self, server, capsys):
        exit_code = main(
            [
                "call",
                "--url", server.url,
                "--op", "count",
                "--context", "tonnage: [0, 100000]",
            ]
        )
        assert exit_code == 0
        assert capsys.readouterr().out.strip() == "400"

    def test_call_open_then_advise_renders_advice(self, server, capsys):
        assert main(
            ["call", "--url", server.url, "--op", "open_session",
             "--session", "shell"]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["call", "--url", server.url, "--op", "advise",
             "--session", "shell",
             "--context", "(tonnage:, type_of_boat:)"]
        )
        assert exit_code == 0
        assert "Charles' advice" in capsys.readouterr().out

    def test_call_json_output_is_wire_encoded(self, server, capsys):
        import json as json_module

        assert main(
            ["call", "--url", server.url, "--op", "stats", "--json"]
        ) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert "tables" in payload and "requests" in payload

    def test_call_surfaces_typed_remote_errors(self, server, capsys):
        exit_code = main(
            ["call", "--url", server.url, "--op", "drill", "--session", "ghost"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "ghost" in err and "core_session" in err

    def test_call_unreachable_server_reports_remote_error(self, capsys):
        exit_code = main(
            ["call", "--url", "http://127.0.0.1:9", "--op", "stats",
             "--timeout", "0.5"]
        )
        assert exit_code == 2
        assert "[remote_unreachable]" in capsys.readouterr().err


class TestIngestCommand:
    """The `ingest` sub-command (and `call --op ingest`) against a server."""

    @pytest.fixture()
    def server(self):
        from repro.api.server import AdvisorHTTPServer
        from repro.service import AdvisorService
        from repro.workloads import generate_voc

        service = AdvisorService(generate_voc(rows=400, seed=3), batch_window=0.0)
        with AdvisorHTTPServer(service) as running:
            yield running

    def test_ingest_rows_json_appends(self, server, capsys):
        import json as json_module

        exit_code = main(
            [
                "ingest",
                "--url", server.url,
                "--rows-json", '[{"tonnage": 901, "type_of_boat": "pinas"}]',
            ]
        )
        assert exit_code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["appended"] == 1
        assert payload["rows"] == 401
        assert payload["data_version"] == 2

    def test_ingest_csv_and_delete(self, server, tmp_path, capsys):
        import json as json_module

        csv_path = tmp_path / "batch.csv"
        csv_path.write_text("tonnage,type_of_boat\n902,pinas\n903,fluit\n")
        exit_code = main(
            [
                "ingest",
                "--url", server.url,
                "--csv", str(csv_path),
                "--delete", "tonnage BETWEEN 902 AND 903",
            ]
        )
        assert exit_code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["appended"] == 2
        assert payload["deleted"] == 2  # appends apply before deletes
        assert payload["rows"] == 400

    def test_ingest_requires_something_to_do(self, server, capsys):
        exit_code = main(["ingest", "--url", server.url])
        assert exit_code == 2
        assert "nothing to ingest" in capsys.readouterr().err

    def test_ingest_rejects_malformed_rows_json(self, server, capsys):
        exit_code = main(
            ["ingest", "--url", server.url, "--rows-json", '{"not": "a list"}']
        )
        assert exit_code == 2
        assert "array of row objects" in capsys.readouterr().err

    def test_call_ingest_then_refresh_clears_staleness(self, server, capsys):
        import json as json_module

        assert main(
            ["call", "--url", server.url, "--op", "open_session",
             "--session", "live", "--context", "(tonnage:, type_of_boat:)"]
        ) == 0
        assert main(
            ["call", "--url", server.url, "--op", "ingest",
             "--rows-json", '[{"tonnage": 901, "type_of_boat": "pinas"}]']
        ) == 0
        capsys.readouterr()
        assert main(
            ["call", "--url", server.url, "--op", "describe",
             "--session", "live", "--json"]
        ) == 0
        assert json_module.loads(capsys.readouterr().out)["stale"] is True
        assert main(
            ["call", "--url", server.url, "--op", "advise",
             "--session", "live", "--refresh"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["call", "--url", server.url, "--op", "describe",
             "--session", "live", "--json"]
        ) == 0
        assert json_module.loads(capsys.readouterr().out)["stale"] is False


class TestServeHTTPSubprocess:
    """End-to-end: `serve --http 0` as a real child process."""

    def test_serve_http_answers_a_remote_client(self, tmp_path):
        import os
        import subprocess
        import sys as sys_module

        from repro.api.client import RemoteAdvisor

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))
        process = subprocess.Popen(
            [
                sys_module.executable, "-u", "-m", "repro.cli",
                "serve", "--http", "0",
                "--dataset", "voc", "--rows", "300",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=root,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            url = banner.strip().rsplit(" ", 1)[-1]
            client = RemoteAdvisor(url, timeout=30.0)
            assert client.health()["status"] == "ok"
            session = client.open_session(
                "sub", context=["tonnage", "type_of_boat"]
            )
            advice = session.advise(["tonnage", "type_of_boat"])
            assert advice.answers
            session.drill(0, 0)
            assert session.depth == 1
        finally:
            process.terminate()
            process.wait(timeout=10)
