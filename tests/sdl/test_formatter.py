"""Unit tests for the SDL formatter helpers."""

from __future__ import annotations

from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SDLQuery,
    Segment,
    Segmentation,
    SetPredicate,
    format_query,
    format_segment_label,
    format_segmentation,
    query_signature,
)


def _context() -> SDLQuery:
    return SDLQuery([NoConstraint("tonnage"), NoConstraint("harbour")])


def _segmentation() -> Segmentation:
    context = _context()
    low = context.refine(RangePredicate("tonnage", 1000, 1150))
    high = context.refine(RangePredicate("tonnage", 1151, 1300))
    return Segmentation(
        context,
        [Segment(low, 70), Segment(high, 30)],
        cut_attributes=("tonnage",),
    )


class TestFormatQuery:
    def test_includes_unconstrained_by_default(self):
        query = SDLQuery([RangePredicate("a", 1, 2), NoConstraint("b")])
        assert format_query(query) == "(a: [1, 2], b:)"

    def test_can_hide_unconstrained(self):
        query = SDLQuery([RangePredicate("a", 1, 2), NoConstraint("b")])
        assert format_query(query, include_unconstrained=False) == "(a: [1, 2])"


class TestSegmentLabel:
    def test_label_omits_context_constraints(self):
        context = SDLQuery([SetPredicate("type", frozenset({"fluit"})), NoConstraint("tonnage")])
        segment_query = context.refine(RangePredicate("tonnage", 1000, 1150))
        label = format_segment_label(segment_query, context)
        assert "tonnage" in label
        assert "type" not in label

    def test_label_for_unconstrained_query(self):
        context = _context()
        assert format_segment_label(context, context) == "(all)"

    def test_label_truncation(self):
        context = _context()
        segment_query = context.refine(
            SetPredicate("harbour", frozenset({f"harbour-{i}" for i in range(30)}))
        )
        label = format_segment_label(segment_query, context, max_length=40)
        assert len(label) <= 40
        assert label.endswith("…")


class TestFormatSegmentation:
    def test_orders_segments_by_cover(self):
        text = format_segmentation(_segmentation())
        first_line, second_line = text.splitlines()[1:3]
        assert "70" in first_line
        assert "30" in second_line

    def test_header_mentions_cut_attributes(self):
        assert "tonnage" in format_segmentation(_segmentation()).splitlines()[0]

    def test_without_counts(self):
        text = format_segmentation(_segmentation(), show_counts=False)
        assert "70" not in text


class TestQuerySignature:
    def test_signature_is_order_independent(self):
        first = SDLQuery([NoConstraint("a"), RangePredicate("b", 1, 2)])
        second = SDLQuery([RangePredicate("b", 1, 2), NoConstraint("a")])
        assert query_signature(first) == query_signature(second)

    def test_signature_distinguishes_constraints(self):
        first = SDLQuery([RangePredicate("b", 1, 2)])
        second = SDLQuery([RangePredicate("b", 1, 3)])
        assert query_signature(first) != query_signature(second)
