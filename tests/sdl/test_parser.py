"""Unit tests for the SDL text parser."""

from __future__ import annotations

import pytest

from repro.errors import SDLSyntaxError
from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SetPredicate,
    parse_predicate,
    parse_query,
)


class TestLiteralsAndPredicates:
    def test_parse_no_constraint(self):
        assert parse_predicate("tonnage:") == NoConstraint("tonnage")

    def test_parse_closed_range(self):
        assert parse_predicate("date: [1550, 1650]") == RangePredicate("date", 1550, 1650)

    def test_parse_half_open_range(self):
        predicate = parse_predicate("date: [1550, 1650[")
        assert predicate == RangePredicate("date", 1550, 1650, include_high=False)

    def test_parse_open_low_range(self):
        predicate = parse_predicate("date: ]1550, 1650]")
        assert predicate == RangePredicate("date", 1550, 1650, include_low=False)

    def test_parse_float_range(self):
        predicate = parse_predicate("score: [0.5, 2.75]")
        assert predicate == RangePredicate("score", 0.5, 2.75)

    def test_parse_negative_numbers(self):
        predicate = parse_predicate("delta: [-5, -1]")
        assert predicate == RangePredicate("delta", -5, -1)

    def test_parse_set_with_quoted_strings(self):
        predicate = parse_predicate("type: {'jacht', 'fluit'}")
        assert predicate == SetPredicate("type", frozenset({"jacht", "fluit"}))

    def test_parse_set_with_barewords(self):
        predicate = parse_predicate("type: {jacht, fluit}")
        assert predicate == SetPredicate("type", frozenset({"jacht", "fluit"}))

    def test_parse_set_with_numbers(self):
        predicate = parse_predicate("code: {200, 404}")
        assert predicate == SetPredicate("code", frozenset({200, 404}))

    def test_double_quoted_strings(self):
        predicate = parse_predicate('type: {"jacht"}')
        assert predicate == SetPredicate("type", frozenset({"jacht"}))


class TestQueries:
    def test_parse_paper_example(self):
        query = parse_query("(date : [1550,1650], tonnage :, type : {'jacht', 'fluit'})")
        assert query.attributes == ("date", "tonnage", "type")
        assert query.predicate_for("date") == RangePredicate("date", 1550, 1650)
        assert query.predicate_for("tonnage") == NoConstraint("tonnage")
        assert query.predicate_for("type") == SetPredicate(
            "type", frozenset({"jacht", "fluit"})
        )

    def test_parse_without_outer_parentheses(self):
        query = parse_query("tonnage: [1000, 5000], type:")
        assert query.attributes == ("tonnage", "type")

    def test_parse_empty_parentheses(self):
        assert len(parse_query("()")) == 0

    def test_whitespace_is_insignificant(self):
        compact = parse_query("(a:[1,2],b:)")
        spaced = parse_query("(  a : [ 1 , 2 ] , b :  )")
        assert compact == spaced

    def test_round_trip_through_to_sdl(self):
        query = parse_query("(date: [1550, 1650], tonnage:, type: {'fluit', 'jacht'})")
        assert parse_query(query.to_sdl()) == query


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "(",
            "(a: [1, 2)",
            "a: [1 2]",
            "a: {1,}",
            "a: [1, 2] extra",
            "a = 5",
            "(a: [1, 2], a: [3, 4])",  # duplicate attribute -> QueryError subclass of SDLError
        ],
    )
    def test_invalid_inputs_raise(self, text):
        with pytest.raises(Exception) as excinfo:
            parse_query(text)
        # Every failure surfaces as a library error, never a bare ValueError.
        from repro.errors import CharlesError

        assert isinstance(excinfo.value, CharlesError)

    def test_syntax_error_carries_position(self):
        with pytest.raises(SDLSyntaxError) as excinfo:
            parse_query("(a: [1, 2] | b:)")
        assert excinfo.value.position is not None

    def test_empty_predicate_rejected(self):
        with pytest.raises(SDLSyntaxError):
            parse_predicate("   ")
