"""Unit tests for SDL queries (Definition 2)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate


def _example_query() -> SDLQuery:
    return SDLQuery(
        [
            RangePredicate("date", 1550, 1650),
            NoConstraint("tonnage"),
            SetPredicate("type", frozenset({"jacht", "fluit"})),
        ]
    )


class TestConstruction:
    def test_attributes_in_order(self):
        query = _example_query()
        assert query.attributes == ("date", "tonnage", "type")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(QueryError):
            SDLQuery([NoConstraint("a"), RangePredicate("a", 1, 2)])

    def test_non_predicate_rejected(self):
        with pytest.raises(QueryError):
            SDLQuery(["not a predicate"])  # type: ignore[list-item]

    def test_over_builds_unconstrained_context(self):
        query = SDLQuery.over(["a", "b"])
        assert query.attributes == ("a", "b")
        assert query.n_constraints == 0

    def test_from_mapping_with_none(self):
        query = SDLQuery.from_mapping({"a": None, "b": RangePredicate("b", 1, 2)})
        assert query.predicate_for("a") == NoConstraint("a")
        assert query.n_constraints == 1

    def test_from_mapping_key_mismatch_rejected(self):
        with pytest.raises(QueryError):
            SDLQuery.from_mapping({"a": RangePredicate("b", 1, 2)})

    def test_empty_query_is_allowed(self):
        query = SDLQuery()
        assert len(query) == 0
        assert query.to_sdl() == "()"


class TestAccessors:
    def test_constrained_attributes(self):
        query = _example_query()
        assert query.constrained_attributes == ("date", "type")
        assert query.n_constraints == 2

    def test_predicate_for_missing_attribute(self):
        assert _example_query().predicate_for("missing") is None

    def test_mentions(self):
        query = _example_query()
        assert query.mentions("tonnage")
        assert not query.mentions("missing")

    def test_iteration_and_len(self):
        query = _example_query()
        assert len(query) == 3
        assert [p.attribute for p in query] == ["date", "tonnage", "type"]

    def test_to_sdl_matches_paper_syntax(self):
        query = _example_query()
        assert query.to_sdl() == (
            "(date: [1550, 1650], tonnage:, type: {'fluit', 'jacht'})"
        )


class TestRefine:
    def test_refine_new_attribute_appends(self):
        query = SDLQuery([NoConstraint("a")])
        refined = query.refine(RangePredicate("b", 1, 2))
        assert refined is not None
        assert refined.attributes == ("a", "b")

    def test_refine_existing_attribute_intersects(self):
        query = SDLQuery([RangePredicate("a", 0, 10)])
        refined = query.refine(RangePredicate("a", 5, 20))
        assert refined is not None
        assert refined.predicate_for("a") == RangePredicate("a", 5, 10)

    def test_refine_unconstrained_attribute_replaces(self):
        query = SDLQuery([NoConstraint("a")])
        refined = query.refine(RangePredicate("a", 1, 2))
        assert refined is not None
        assert refined.predicate_for("a") == RangePredicate("a", 1, 2)

    def test_refine_empty_intersection_returns_none(self):
        query = SDLQuery([RangePredicate("a", 0, 3)])
        assert query.refine(RangePredicate("a", 5, 9)) is None

    def test_refine_does_not_mutate_original(self):
        query = SDLQuery([NoConstraint("a")])
        query.refine(RangePredicate("a", 1, 2))
        assert query.predicate_for("a") == NoConstraint("a")


class TestMerge:
    def test_merge_disjoint_attributes(self):
        first = SDLQuery([RangePredicate("a", 1, 2)])
        second = SDLQuery([SetPredicate("b", frozenset({"x"}))])
        merged = first.merge(second)
        assert merged is not None
        assert set(merged.attributes) == {"a", "b"}

    def test_merge_shared_attribute_intersects(self):
        first = SDLQuery([RangePredicate("a", 1, 10)])
        second = SDLQuery([RangePredicate("a", 5, 20), NoConstraint("b")])
        merged = first.merge(second)
        assert merged is not None
        assert merged.predicate_for("a") == RangePredicate("a", 5, 10)

    def test_merge_unsatisfiable_returns_none(self):
        first = SDLQuery([RangePredicate("a", 1, 2)])
        second = SDLQuery([RangePredicate("a", 5, 9)])
        assert first.merge(second) is None


class TestProjectionAndRemoval:
    def test_without_removes_attribute(self):
        query = _example_query()
        assert query.without("tonnage").attributes == ("date", "type")

    def test_project_keeps_requested_order(self):
        query = _example_query()
        projected = query.project(["type", "date"])
        assert projected.attributes == ("type", "date")

    def test_project_ignores_unknown_attributes(self):
        query = _example_query()
        assert query.project(["missing"]).attributes == ()


class TestRowMatching:
    def test_matches_row(self):
        query = _example_query()
        assert query.matches_row({"date": 1600, "tonnage": 99, "type": "jacht"})
        assert not query.matches_row({"date": 1700, "tonnage": 99, "type": "jacht"})
        assert not query.matches_row({"date": 1600, "tonnage": 99, "type": "galjoot"})

    def test_unconstrained_attribute_ignored(self):
        query = _example_query()
        assert query.matches_row({"date": 1600, "type": "fluit"})


class TestEqualityHash:
    def test_equality_is_order_independent(self):
        first = SDLQuery([NoConstraint("a"), RangePredicate("b", 1, 2)])
        second = SDLQuery([RangePredicate("b", 1, 2), NoConstraint("a")])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_different_constraints(self):
        first = SDLQuery([RangePredicate("a", 1, 2)])
        second = SDLQuery([RangePredicate("a", 1, 3)])
        assert first != second

    def test_usable_as_dict_key(self):
        mapping = {_example_query(): "value"}
        assert mapping[_example_query()] == "value"
