"""Unit tests for SDL predicates (Definition 1)."""

from __future__ import annotations

import pytest

from repro.errors import PredicateError
from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SetPredicate,
    intersect_predicates,
    predicate_from_values,
)


class TestNoConstraint:
    def test_is_unconstrained(self):
        predicate = NoConstraint("tonnage")
        assert not predicate.is_constrained

    def test_to_sdl(self):
        assert NoConstraint("tonnage").to_sdl() == "tonnage:"

    def test_matches_everything(self):
        predicate = NoConstraint("tonnage")
        assert predicate.matches_value(5)
        assert predicate.matches_value(None)
        assert predicate.matches_value("anything")

    def test_requires_attribute(self):
        with pytest.raises(PredicateError):
            NoConstraint("")

    def test_equality_and_hash(self):
        assert NoConstraint("a") == NoConstraint("a")
        assert NoConstraint("a") != NoConstraint("b")
        assert hash(NoConstraint("a")) == hash(NoConstraint("a"))


class TestRangePredicate:
    def test_closed_range_matches_bounds(self):
        predicate = RangePredicate("tonnage", 1000, 2000)
        assert predicate.matches_value(1000)
        assert predicate.matches_value(2000)
        assert predicate.matches_value(1500)
        assert not predicate.matches_value(999)
        assert not predicate.matches_value(2001)

    def test_half_open_range_excludes_high(self):
        predicate = RangePredicate("tonnage", 1000, 2000, include_high=False)
        assert predicate.matches_value(1999)
        assert not predicate.matches_value(2000)

    def test_half_open_range_excludes_low(self):
        predicate = RangePredicate("tonnage", 1000, 2000, include_low=False)
        assert not predicate.matches_value(1000)
        assert predicate.matches_value(1001)

    def test_none_never_matches(self):
        assert not RangePredicate("tonnage", 1, 2).matches_value(None)

    def test_to_sdl_brackets(self):
        closed = RangePredicate("date", 1550, 1650)
        assert closed.to_sdl() == "date: [1550, 1650]"
        half_open = RangePredicate("date", 1550, 1650, include_high=False)
        assert half_open.to_sdl() == "date: [1550, 1650["

    def test_rejects_missing_bounds(self):
        with pytest.raises(PredicateError):
            RangePredicate("tonnage", None, 5)
        with pytest.raises(PredicateError):
            RangePredicate("tonnage", 5, None)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(PredicateError):
            RangePredicate("tonnage", 10, 5)

    def test_rejects_incomparable_bounds(self):
        with pytest.raises(PredicateError):
            RangePredicate("tonnage", "a", 5)

    def test_degenerate_range(self):
        predicate = RangePredicate("tonnage", 7, 7)
        assert predicate.is_degenerate
        assert predicate.matches_value(7)
        assert not predicate.matches_value(8)

    def test_string_range_uses_lexicographic_order(self):
        predicate = RangePredicate("name", "b", "d")
        assert predicate.matches_value("c")
        assert not predicate.matches_value("a")


class TestSetPredicate:
    def test_membership(self):
        predicate = SetPredicate("type", frozenset({"jacht", "fluit"}))
        assert predicate.matches_value("jacht")
        assert not predicate.matches_value("galjoot")

    def test_rejects_empty_set(self):
        with pytest.raises(PredicateError):
            SetPredicate("type", frozenset())

    def test_to_sdl_sorted_values(self):
        predicate = SetPredicate("type", frozenset({"jacht", "fluit"}))
        assert predicate.to_sdl() == "type: {'fluit', 'jacht'}"

    def test_values_deduplicated(self):
        predicate = SetPredicate("type", ["a", "a", "b"])
        assert predicate.values == frozenset({"a", "b"})

    def test_equality_ignores_order(self):
        first = SetPredicate("type", frozenset({"a", "b"}))
        second = SetPredicate("type", frozenset({"b", "a"}))
        assert first == second
        assert hash(first) == hash(second)


class TestIntersectPredicates:
    def test_different_attributes_rejected(self):
        with pytest.raises(PredicateError):
            intersect_predicates(NoConstraint("a"), NoConstraint("b"))

    def test_no_constraint_is_identity(self):
        constrained = RangePredicate("a", 1, 5)
        assert intersect_predicates(NoConstraint("a"), constrained) == constrained
        assert intersect_predicates(constrained, NoConstraint("a")) == constrained

    def test_overlapping_ranges(self):
        first = RangePredicate("a", 1, 10)
        second = RangePredicate("a", 5, 20)
        merged = intersect_predicates(first, second)
        assert merged == RangePredicate("a", 5, 10)

    def test_disjoint_ranges_return_none(self):
        first = RangePredicate("a", 1, 3)
        second = RangePredicate("a", 5, 9)
        assert intersect_predicates(first, second) is None

    def test_touching_ranges_respect_inclusivity(self):
        first = RangePredicate("a", 1, 5, include_high=False)
        second = RangePredicate("a", 5, 9)
        assert intersect_predicates(first, second) is None
        first_closed = RangePredicate("a", 1, 5)
        merged = intersect_predicates(first_closed, second)
        assert merged == RangePredicate("a", 5, 5)

    def test_set_intersection(self):
        first = SetPredicate("a", frozenset({"x", "y"}))
        second = SetPredicate("a", frozenset({"y", "z"}))
        merged = intersect_predicates(first, second)
        assert merged == SetPredicate("a", frozenset({"y"}))

    def test_disjoint_sets_return_none(self):
        first = SetPredicate("a", frozenset({"x"}))
        second = SetPredicate("a", frozenset({"z"}))
        assert intersect_predicates(first, second) is None

    def test_range_and_set_mixed(self):
        range_predicate = RangePredicate("a", 1, 5)
        set_predicate = SetPredicate("a", frozenset({0, 2, 4, 9}))
        merged = intersect_predicates(range_predicate, set_predicate)
        assert merged == SetPredicate("a", frozenset({2, 4}))
        merged_other_order = intersect_predicates(set_predicate, range_predicate)
        assert merged_other_order == merged

    def test_range_and_set_disjoint(self):
        range_predicate = RangePredicate("a", 1, 5)
        set_predicate = SetPredicate("a", frozenset({9}))
        assert intersect_predicates(range_predicate, set_predicate) is None


class TestPredicateFromValues:
    def test_numeric_values_become_range(self):
        predicate = predicate_from_values("a", [3, 1, 2])
        assert predicate == RangePredicate("a", 1, 3)

    def test_string_values_become_set(self):
        predicate = predicate_from_values("a", ["x", "y"])
        assert predicate == SetPredicate("a", frozenset({"x", "y"}))

    def test_empty_values_rejected(self):
        with pytest.raises(PredicateError):
            predicate_from_values("a", [])
