"""Unit tests for segments and segmentations (Definition 3)."""

from __future__ import annotations

import pytest

from repro.errors import SegmentationError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, Segment, Segmentation


def _context() -> SDLQuery:
    return SDLQuery([NoConstraint("tonnage"), NoConstraint("type")])


def _two_piece_segmentation(counts=(60, 40)) -> Segmentation:
    context = _context()
    low = context.refine(RangePredicate("tonnage", 0, 49, include_high=False))
    high = context.refine(RangePredicate("tonnage", 49, 100))
    return Segmentation(
        context,
        [Segment(low, counts[0]), Segment(high, counts[1])],
        cut_attributes=("tonnage",),
    )


class TestSegment:
    def test_negative_count_rejected(self):
        with pytest.raises(SegmentationError):
            Segment(_context(), -1)

    def test_cover(self):
        segment = Segment(_context(), 25)
        assert segment.cover(100) == pytest.approx(0.25)
        assert segment.cover(0) == 0.0

    def test_equality(self):
        assert Segment(_context(), 5) == Segment(_context(), 5)
        assert Segment(_context(), 5) != Segment(_context(), 6)


class TestSegmentationConstruction:
    def test_requires_at_least_one_segment(self):
        with pytest.raises(SegmentationError):
            Segmentation(_context(), [])

    def test_context_count_defaults_to_sum(self):
        segmentation = _two_piece_segmentation()
        assert segmentation.context_count == 100

    def test_negative_context_count_rejected(self):
        context = _context()
        with pytest.raises(SegmentationError):
            Segmentation(context, [Segment(context, 10)], context_count=-1)

    def test_overlapping_candidate_is_representable(self):
        # Candidate segmentations under validation may overlap; the
        # constructor keeps them so sdl.validation can flag them.
        context = _context()
        segmentation = Segmentation(
            context, [Segment(context, 10), Segment(context, 10)], context_count=10
        )
        assert segmentation.covered_count == 20
        assert not segmentation.is_exhaustive or segmentation.covered_count == 10

    def test_single_constructor(self):
        segmentation = Segmentation.single(_context(), 42)
        assert segmentation.depth == 1
        assert segmentation.covers == (1.0,)

    def test_cut_attributes_deduplicated(self):
        segmentation = _two_piece_segmentation().with_cut_attributes(
            ["tonnage", "tonnage", "type"]
        )
        assert segmentation.cut_attributes == ("tonnage", "type")


class TestSegmentationProperties:
    def test_covers_sum_to_one_for_exhaustive_partition(self):
        segmentation = _two_piece_segmentation()
        assert sum(segmentation.covers) == pytest.approx(1.0)
        assert segmentation.is_exhaustive

    def test_covers_for_non_exhaustive_segmentation(self):
        context = _context()
        piece = context.refine(RangePredicate("tonnage", 0, 10))
        segmentation = Segmentation(context, [Segment(piece, 30)], context_count=100)
        assert segmentation.covers == (0.3,)
        assert not segmentation.is_exhaustive

    def test_depth_and_counts(self):
        segmentation = _two_piece_segmentation()
        assert segmentation.depth == 2
        assert segmentation.counts == (60, 40)
        assert segmentation.covered_count == 100

    def test_attributes_reports_cut_columns(self):
        segmentation = _two_piece_segmentation()
        assert segmentation.attributes == ("tonnage",)

    def test_zero_context_covers_are_zero(self):
        context = _context()
        segmentation = Segmentation(context, [Segment(context, 0)], context_count=0)
        assert segmentation.covers == (0.0,)

    def test_indexing_and_iteration(self):
        segmentation = _two_piece_segmentation()
        assert len(segmentation) == 2
        assert segmentation[0].count == 60
        assert [segment.count for segment in segmentation] == [60, 40]


class TestNonEmpty:
    def test_non_empty_drops_zero_segments(self):
        context = _context()
        piece = context.refine(RangePredicate("tonnage", 0, 10))
        segmentation = Segmentation(
            context,
            [Segment(piece, 0), Segment(context, 10)],
            context_count=10,
        )
        cleaned = segmentation.non_empty()
        assert cleaned.depth == 1
        assert cleaned.context_count == 10

    def test_non_empty_with_all_empty_segments_raises(self):
        context = _context()
        segmentation = Segmentation(context, [Segment(context, 0)], context_count=0)
        with pytest.raises(SegmentationError):
            segmentation.non_empty()


class TestEqualityAndDescribe:
    def test_equality_is_order_independent(self):
        first = _two_piece_segmentation()
        context = _context()
        low = context.refine(RangePredicate("tonnage", 0, 49, include_high=False))
        high = context.refine(RangePredicate("tonnage", 49, 100))
        second = Segmentation(
            context, [Segment(high, 40), Segment(low, 60)], cut_attributes=("tonnage",)
        )
        assert first == second

    def test_describe_mentions_counts(self):
        text = _two_piece_segmentation().describe()
        assert "2 segments" in text
        assert "60" in text and "40" in text
