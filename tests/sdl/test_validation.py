"""Unit tests for partition validation (Definition 3)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPartitionError
from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SDLQuery,
    Segment,
    Segmentation,
    check_partition,
    queries_are_disjoint,
    validate_partition,
)
from repro.storage import QueryEngine, Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        {
            "value": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            "label": ["a", "a", "a", "b", "b", "b", "c", "c", "c", "c"],
        },
        name="numbers",
    )


@pytest.fixture()
def engine(table: Table) -> QueryEngine:
    return QueryEngine(table)


def _context() -> SDLQuery:
    return SDLQuery([NoConstraint("value"), NoConstraint("label")])


def _segmentation(engine: QueryEngine, bounds) -> Segmentation:
    context = _context()
    segments = []
    for low, high, include_high in bounds:
        query = context.refine(
            RangePredicate("value", low, high, include_high=include_high)
        )
        segments.append(Segment(query, engine.count(query)))
    return Segmentation(context, segments, context_count=engine.count(context))


class TestCheckPartition:
    def test_valid_partition(self, engine):
        segmentation = _segmentation(
            engine, [(1, 5, False), (5, 10, True)]
        )
        report = check_partition(engine, segmentation)
        assert report.is_partition
        assert report.disjoint and report.exhaustive
        assert "valid" in report.summary()

    def test_overlapping_partition_detected(self, engine):
        segmentation = _segmentation(engine, [(1, 6, True), (5, 10, True)])
        report = check_partition(engine, segmentation)
        assert not report.disjoint
        assert report.overlapping_pairs == [(0, 1)]
        assert report.multiply_counted_rows == 2  # values 5 and 6
        assert "overlapping" in report.summary()

    def test_non_exhaustive_partition_detected(self, engine):
        segmentation = _segmentation(engine, [(1, 3, True), (7, 10, True)])
        report = check_partition(engine, segmentation)
        assert report.disjoint
        assert not report.exhaustive
        assert report.missing_rows == 3  # values 4, 5, 6

    def test_segments_clamped_to_context(self, engine):
        context = SDLQuery([RangePredicate("value", 1, 6), NoConstraint("label")])
        inside = context.refine(RangePredicate("value", 1, 3))
        outside = SDLQuery([RangePredicate("value", 1, 9), NoConstraint("label")])
        segmentation = Segmentation(
            context,
            [Segment(inside, 3), Segment(outside, 9)],
            context_count=6,
        )
        report = check_partition(engine, segmentation)
        # Rows outside the context are ignored; inside it the two segments overlap.
        assert not report.disjoint


class TestValidatePartition:
    def test_valid_partition_passes(self, engine):
        segmentation = _segmentation(engine, [(1, 5, False), (5, 10, True)])
        validate_partition(engine, segmentation)

    def test_invalid_partition_raises(self, engine):
        segmentation = _segmentation(engine, [(1, 3, True), (7, 10, True)])
        with pytest.raises(InvalidPartitionError):
            validate_partition(engine, segmentation)


class TestQueriesAreDisjoint:
    def test_disjoint_queries(self, engine):
        context = _context()
        first = context.refine(RangePredicate("value", 1, 5))
        second = context.refine(RangePredicate("value", 6, 10))
        assert queries_are_disjoint(engine, [first, second])

    def test_overlapping_queries(self, engine):
        context = _context()
        first = context.refine(RangePredicate("value", 1, 6))
        second = context.refine(RangePredicate("value", 6, 10))
        assert not queries_are_disjoint(engine, [first, second])
