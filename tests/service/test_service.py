"""Tests for the advisor service: sessions, shared caches, serve/submit."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdvisorError, SessionError
from repro.service import AdvisorService, ServiceRequest
from repro.workloads import generate_concurrent_workload, generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage"]


@pytest.fixture(scope="module")
def table():
    return generate_voc(rows=1500, seed=11)


@pytest.fixture()
def service(table):
    return AdvisorService(table, batch_window=0.0)


class TestSessions:
    def test_open_advise_drill_back(self, service):
        session = service.open_session("alice")
        advice = service.advise("alice", _CONTEXT)
        assert advice.answers
        drilled = service.drill("alice", 0, 0)
        assert drilled.context != advice.context
        assert session.depth == 1
        restored = service.back("alice")
        assert restored.context == advice.context
        assert session.depth == 0

    def test_duplicate_name_rejected_unless_replaced(self, service):
        service.open_session("alice")
        with pytest.raises(SessionError):
            service.open_session("alice")
        replacement = service.open_session("alice", replace=True)
        assert service.session("alice") is replacement

    def test_close_session_returns_stats(self, service):
        service.open_session("alice", context=_CONTEXT)
        stats = service.close_session("alice")
        assert stats["requests"] == 1
        with pytest.raises(SessionError):
            service.session("alice")

    def test_unknown_table_rejected(self, service):
        with pytest.raises(AdvisorError):
            service.open_session("bob", table="nope")


class TestSharedCaching:
    def test_identical_contexts_share_advice(self, service):
        service.open_session("alice")
        service.open_session("bob")
        first = service.advise("alice", _CONTEXT)
        second = service.advise("bob", _CONTEXT)
        # The exact same Advice object is served from the shared cache.
        assert second is first
        advice_stats = service.stats()["tables"]["voc"]["advice_cache"]
        assert advice_stats["hits"] == 1

    def test_differently_parameterised_rankers_do_not_share_advice(self, service):
        from repro.core.ranking import WeightedRanker

        service.open_session(
            "alice", ranker=WeightedRanker(entropy_weight=1.0, simplicity_weight=0.0)
        )
        service.open_session(
            "bob", ranker=WeightedRanker(entropy_weight=0.0, simplicity_weight=5.0)
        )
        first = service.advise("alice", _CONTEXT)
        second = service.advise("bob", _CONTEXT)
        assert second is not first
        # Same parameters do share.
        service.open_session(
            "carol", ranker=WeightedRanker(entropy_weight=1.0, simplicity_weight=0.0)
        )
        assert service.advise("carol", _CONTEXT) is first

    def test_sessions_share_masks_and_aggregates(self, service):
        service.open_session("alice")
        service.open_session("bob")
        service.advise("alice", _CONTEXT)
        # Different max_answers defeats the advice cache but not the
        # mask/aggregate cache underneath.
        bob = service.session("bob")
        bob.exploration.max_answers = 5
        service.advise("bob", _CONTEXT)
        assert bob.advisor.engine.counter.aggregate_hits > 0
        assert bob.advisor.engine.counter.evaluations == 0

    def test_concurrent_sessions_see_consistent_cache_stats(self, table):
        service = AdvisorService(table, batch_window=0.002)
        users = 6
        barrier = threading.Barrier(users)
        errors = []

        def explore(index: int) -> None:
            name = f"user-{index}"
            try:
                service.open_session(name)
                barrier.wait()
                advice = service.advise(name, _CONTEXT)
                service.drill(name, index % len(advice.answers), 0)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=explore, args=(i,)) for i in range(users)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        cache_stats = service.stats()["tables"]["voc"]["result_cache"]
        assert cache_stats["hits"] + cache_stats["misses"] > 0
        assert cache_stats["entries"] <= cache_stats["capacity"]
        assert 0.0 <= cache_stats["hit_rate"] <= 1.0
        # Every session reads the same shared cache object.
        snapshots = {
            name: session["engine_operations"]
            for name, session in service.stats()["sessions"].items()
        }
        assert len(snapshots) == users

    def test_lru_eviction_bounds_service_memory(self, table):
        service = AdvisorService(table, cache_capacity=16, batch_window=0.0)
        service.open_session("alice", context=_CONTEXT)
        stats = service.stats()["tables"]["voc"]["result_cache"]
        assert stats["entries"] <= 16
        assert stats["evictions"] > 0
        # bool masks over 1500 rows: 16 entries stay under 16 × 1500 bytes
        # plus scalar aggregates.
        assert stats["approx_bytes"] <= 16 * table.num_rows


class TestSubmitAndServe:
    def test_submit_round_trip(self, service):
        assert service.submit(
            ServiceRequest(op="open", session="s1", context=_CONTEXT)
        ).ok
        drill = service.submit(ServiceRequest(op="drill", session="s1"))
        assert drill.ok and drill.result.answers
        assert service.submit(ServiceRequest(op="back", session="s1")).ok
        count = service.submit(
            ServiceRequest(op="count", context="tonnage: [0, 100000]")
        )
        assert count.ok and count.result > 0
        stats = service.submit(ServiceRequest(op="stats"))
        assert stats.ok and "tables" in stats.result
        closed = service.submit(ServiceRequest(op="close", session="s1"))
        assert closed.ok and closed.result["requests"] >= 2

    def test_submit_reports_errors_instead_of_raising(self, service):
        response = service.submit(ServiceRequest(op="drill", session="ghost"))
        assert not response.ok
        assert "ghost" in (response.error or "")
        unknown = service.submit(ServiceRequest(op="frobnicate"))
        assert not unknown.ok

    def test_submit_validates_ops_and_sessions_with_typed_errors(self, service):
        # Regression: unknown ops and sessions surface stable wire codes,
        # never a bare KeyError/TypeError escaping submit().
        unknown_op = service.submit(ServiceRequest(op="frobnicate"))
        assert unknown_op.error_code == "protocol_unknown_op"
        unknown_session = service.submit(ServiceRequest(op="back", session="ghost"))
        assert unknown_session.error_code == "core_session"
        bad_index = service.submit(
            ServiceRequest(op="drill", session="ghost", answer_index="first")
        )
        assert bad_index.error_code == "protocol"

    def test_submit_canonical_op_names_and_timing(self, service):
        opened = service.submit(
            ServiceRequest(op="open_session", session="w1", context=_CONTEXT)
        )
        assert opened.ok and opened.result == "w1"
        assert opened.elapsed_seconds > 0.0
        assert opened.request_id
        described = service.submit(ServiceRequest(op="describe", session="w1"))
        assert described.ok
        assert described.result["breadcrumbs"] == ["(root)"]
        closed = service.submit(ServiceRequest(op="close_session", session="w1"))
        assert closed.ok

    def test_serve_workload_sequential_and_threaded(self, table):
        scripts = generate_concurrent_workload(
            table.column_names, users=4, steps=3, seed=2, distinct_paths=2
        )
        sequential = AdvisorService(table, batch_window=0.0).serve(scripts, workers=1)
        threaded = AdvisorService(table, batch_window=0.002).serve(scripts, workers=4)
        assert sequential.requests == threaded.requests > 0
        assert not sequential.errors
        assert not threaded.errors
        assert sequential.throughput > 0
        # The shared advice cache fires on the repeated paths.
        assert sequential.table_stats["voc"]["advice_cache"]["hits"] > 0

    def test_serve_records_open_errors_instead_of_raising(self, table):
        service = AdvisorService({"a": table, "b": table}, batch_window=0.0)
        scripts = generate_concurrent_workload(table.column_names, users=2, seed=4)
        # Two tables and no table named: opening each session fails, but
        # serve() reports it per user rather than crashing.
        report = service.serve(scripts, workers=1)
        assert report.requests == 0
        assert len(report.errors) == 2


class TestWorkloadGenerator:
    def test_deterministic(self, table):
        first = generate_concurrent_workload(table.column_names, users=5, seed=9)
        second = generate_concurrent_workload(table.column_names, users=5, seed=9)
        assert first == second

    def test_distinct_paths_bounds_unique_scripts(self, table):
        scripts = generate_concurrent_workload(
            table.column_names, users=8, seed=1, distinct_paths=3
        )
        assert len(scripts) == 8
        assert len({script.actions for script in scripts}) <= 3

    def test_rejects_bad_arguments(self, table):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            generate_concurrent_workload(table.column_names, users=0)
        with pytest.raises(WorkloadError):
            generate_concurrent_workload([], users=1)


class TestParallelService:
    def test_sequential_service_has_no_pool(self, service):
        assert service.pool is None
        assert service.stats()["parallel"]["pool"] is None

    def test_partitions_default_to_the_worker_count(self, table):
        # Like Charles: asking for workers alone must actually shard the
        # tables, otherwise the pool is created but never used.
        service = AdvisorService(table, batch_window=0.0, workers=2)
        assert service.stats()["parallel"]["partitions"] == 2

    def test_workers_zero_means_one_per_core(self, table):
        # The same opt-in rule as Charles and open_backend: workers=0 asks
        # for one worker per core, it does not silently mean sequential.
        from repro.backends.pool import resolve_workers

        service = AdvisorService(table, batch_window=0.0, workers=0)
        assert service.pool is not None
        assert service.pool.workers == resolve_workers(0)
        assert service.stats()["parallel"]["workers"] == resolve_workers(0)

    def test_one_pool_is_shared_by_every_session_and_table(self, table):
        parallel = AdvisorService(
            table, batch_window=0.0, workers=2, partitions=2
        )
        assert parallel.pool is not None
        assert parallel.pool.workers == 2
        session = parallel.open_session("alice", context=_CONTEXT)
        assert session.advisor.pool is parallel.pool
        parallel.register_table(generate_voc(rows=300, seed=3), name="voc2")
        other = parallel.open_session("bob", table="voc2", context=_CONTEXT)
        assert other.advisor.pool is parallel.pool
        stats = parallel.stats()
        assert stats["parallel"]["workers"] == 2
        assert stats["parallel"]["partitions"] == 2
        assert stats["parallel"]["pool"]["tasks"] > 0

    def test_parallel_service_answers_match_sequential(self, table):
        def fingerprint(advice):
            return [
                (
                    answer.segmentation.cut_attributes,
                    tuple(answer.segmentation.counts),
                    answer.score,
                )
                for answer in advice.answers
            ]

        sequential = AdvisorService(table, batch_window=0.0)
        parallel = AdvisorService(table, batch_window=0.0, workers=2, partitions=4)
        expected = fingerprint(
            sequential.open_session("a", context=_CONTEXT).current_advice()
        )
        observed = fingerprint(
            parallel.open_session("a", context=_CONTEXT).current_advice()
        )
        assert observed == expected

    def test_parallel_serve_workload_matches_sequential(self, table):
        scripts = generate_concurrent_workload(
            table.column_names, users=4, steps=2, seed=5
        )
        sequential = AdvisorService(table, batch_window=0.0)
        parallel = AdvisorService(table, batch_window=0.0, workers=2, partitions=2)
        report_a = sequential.serve(scripts, workers=2)
        report_b = parallel.serve(scripts, workers=2)
        assert not report_a.errors and not report_b.errors
        assert report_a.requests == report_b.requests
