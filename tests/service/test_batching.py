"""Tests for batched engine passes, the batched INDEP path and the coordinator."""

from __future__ import annotations

import threading

import pytest

from repro.core import HBCuts, HBCutsConfig
from repro.sdl import RangePredicate, SDLQuery
from repro.service import BatchCoordinator, BatchedEngine
from repro.storage import QueryEngine, ResultCache, Table
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def table() -> Table:
    return generate_voc(rows=1500, seed=3)


def _context() -> SDLQuery:
    return SDLQuery.over(["type_of_boat", "departure_harbour", "tonnage", "built"])


def _range_queries(n: int):
    return [
        SDLQuery([RangePredicate("tonnage", 100 * i, 100 * i + 250)]) for i in range(n)
    ]


class TestCountBatch:
    def test_matches_sequential_counts(self, table):
        queries = _range_queries(8)
        sequential = QueryEngine(table)
        batched = QueryEngine(table)
        assert batched.count_batch(queries) == tuple(
            sequential.count(query) for query in queries
        )

    def test_duplicates_coalesced(self, table):
        engine = QueryEngine(table)
        query = _range_queries(1)[0]
        counts = engine.count_batch([query, query, query])
        assert counts[0] == counts[1] == counts[2]
        assert engine.counter.evaluations == 1
        assert engine.counter.cache_hits == 2
        assert engine.counter.count_calls == 3
        assert engine.counter.batch_calls == 1

    def test_aggregate_cache_round_trip(self, table):
        cache = ResultCache(capacity=512)
        first = QueryEngine(table, cache=cache, cache_aggregates=True)
        second = QueryEngine(table, cache=cache, cache_aggregates=True)
        queries = _range_queries(4)
        expected = first.count_batch(queries)
        assert second.count_batch(queries) == expected
        # The second engine never evaluated a mask: counts came from the cache.
        assert second.counter.evaluations == 0
        assert second.counter.aggregate_hits == len(queries)


class TestBatchedIndep:
    def test_batched_equals_sequential_bit_for_bit(self, table):
        """The acceptance criterion: identical segmentations, not just scores."""

        def run(batch: bool):
            engine = QueryEngine(table)
            return HBCuts(HBCutsConfig(batch_indep=batch)).run(engine, _context())

        sequential, batched = run(False), run(True)

        def fingerprint(result):
            return [
                (
                    segmentation.cut_attributes,
                    tuple(
                        (segment.query.to_sdl(), segment.count)
                        for segment in segmentation.segments
                    ),
                )
                for segmentation in result.segmentations
            ]

        assert fingerprint(sequential) == fingerprint(batched)
        assert sequential.trace.indep_values == batched.trace.indep_values
        assert sequential.trace.stop_reason == batched.trace.stop_reason
        assert sequential.trace.pair_evaluations == batched.trace.pair_evaluations
        assert batched.trace.batched_passes > 0
        assert sequential.trace.batched_passes == 0

    def test_batched_respects_reuse_ablation(self, table):
        engine = QueryEngine(table)
        config = HBCutsConfig(batch_indep=True, reuse_indep=False)
        result = HBCuts(config).run(engine, _context())
        assert result.trace.pair_cache_hits == 0

    def test_same_operation_accounting(self, table):
        def ops(batch: bool):
            engine = QueryEngine(table)
            HBCuts(HBCutsConfig(batch_indep=batch)).run(engine, _context())
            snapshot = engine.counter.snapshot()
            snapshot.pop("batch_calls")
            return snapshot

        assert ops(False) == ops(True)


class TestBatchCoordinator:
    def test_single_caller_round_trip(self, table):
        engine = QueryEngine(table)
        coordinator = BatchCoordinator(engine, window_seconds=0.0)
        queries = _range_queries(5)
        assert coordinator.counts(queries) == engine.counts_for(queries)
        assert coordinator.stats.passes == 1
        assert coordinator.stats.requests == 1

    def test_concurrent_callers_get_correct_results(self, table):
        reference = QueryEngine(table)
        cache = ResultCache(capacity=1024)
        engine = BatchedEngine(table, cache=cache)
        coordinator = BatchCoordinator(engine, window_seconds=0.005)
        queries = _range_queries(6)
        expected = reference.counts_for(queries)
        results = {}
        barrier = threading.Barrier(4)

        def worker(index: int) -> None:
            barrier.wait()
            results[index] = coordinator.counts(queries)

        workers = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()

        assert all(results[i] == expected for i in range(4))
        stats = coordinator.stats.snapshot()
        assert stats["requests"] == 4
        assert stats["queries"] == 4 * len(queries)
        # At least some requests were merged into a shared pass.
        assert stats["passes"] <= stats["requests"]
        assert stats["fallbacks"] == 0

    def test_batched_engine_routes_through_coordinator(self, table):
        cache = ResultCache(capacity=1024)
        primary = BatchedEngine(table, cache=cache)
        coordinator = BatchCoordinator(primary, window_seconds=0.0)
        session_engine = BatchedEngine(table, cache=cache, coordinator=coordinator)
        queries = _range_queries(3)
        expected = QueryEngine(table).counts_for(queries)
        assert session_engine.count_batch(queries) == tuple(expected)
        assert coordinator.stats.passes == 1
        # Logical accounting stays on the session engine.
        assert session_engine.counter.count_calls == 3
        assert session_engine.counter.batch_calls == 1
