"""Unit tests for the shared result cache (LRU bounds, stats, thread safety)."""

from __future__ import annotations

import threading

import numpy as np

from repro.storage import ResultCache


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_get_or_compute(self):
        cache = ResultCache(capacity=4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or "value") == "value"
        assert cache.get_or_compute("k", lambda: calls.append(1) or "other") == "value"
        assert len(calls) == 1

    def test_disabled_cache_never_retains(self):
        cache = ResultCache(capacity=0)
        cache.put("k", 1)
        assert cache.get("k") is None
        assert not cache.enabled
        assert len(cache) == 0

    def test_clear_keeps_statistics(self):
        cache = ResultCache(capacity=4)
        cache.put("k", 1)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1
        assert cache.stats().approx_bytes == 0


class TestLRUBounds:
    def test_eviction_bounds_entries(self):
        cache = ResultCache(capacity=3)
        for index in range(10):
            cache.put(f"k{index}", index)
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.evictions == 7
        # The most recently inserted keys survive.
        assert cache.get("k9") == 9
        assert cache.get("k0") is None

    def test_eviction_bounds_memory(self):
        """Mask-sized values: the byte accounting shrinks on eviction."""
        cache = ResultCache(capacity=2)
        mask = np.ones(10_000, dtype=bool)
        for index in range(5):
            cache.put(f"mask{index}", mask.copy())
        stats = cache.stats()
        assert stats.entries == 2
        # Bounded by capacity × mask size, not by the 5 masks inserted.
        assert stats.approx_bytes == 2 * mask.nbytes

    def test_recently_used_entry_survives(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least recently used
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_overwrite_does_not_grow(self):
        cache = ResultCache(capacity=2)
        for _ in range(5):
            cache.put("k", np.ones(100, dtype=bool))
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.approx_bytes == 100


class TestThreadSafety:
    def test_concurrent_traffic_keeps_consistent_stats(self):
        cache = ResultCache(capacity=64)
        lookups_per_thread = 200
        threads = 8

        def hammer(thread_index: int) -> None:
            for i in range(lookups_per_thread):
                key = f"k{(thread_index * 7 + i) % 32}"
                if cache.get(key) is None:
                    cache.put(key, i)

        workers = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        stats = cache.stats()
        assert stats.hits + stats.misses == threads * lookups_per_thread
        assert stats.entries <= 64
        assert stats.evictions == 0  # 32 distinct keys fit into 64 slots
