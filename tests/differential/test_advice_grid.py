"""End-to-end advice parity across the full execution grid.

The same VOC workload, advised by Charles over: the plain memory
backend, the fully indexed memory backend, a partitioned + worker-pool
indexed backend, and SQLite.  The ranked segmentations (queries, counts,
scores, trace) must be identical — and must *stay* identical after a
live ingest and a predicate delete flow through every backend, proving
no superseded zone map or bitmap can leak a stale answer into advice.
"""

from __future__ import annotations

import pytest

from repro.core import Charles
from repro.workloads import generate_voc

_SPECS = (
    "memory",
    "memory?index=all",
    "memory?index=zonemap,bitmap,maskreuse&partitions=4&workers=2",
    "sqlite",
)

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage", "built"]


def _fingerprint(advice):
    return [
        (
            answer.rank,
            answer.segmentation.cut_attributes,
            tuple(
                (segment.query.to_sdl(), segment.count)
                for segment in answer.segmentation.segments
            ),
            round(answer.score, 12),
        )
        for answer in advice.answers
    ]


@pytest.fixture(scope="module")
def advisors():
    # Each backend owns its own (identical) copy so mutations replay
    # independently on every member of the grid.
    return {spec: Charles(generate_voc(rows=400, seed=3), backend=spec) for spec in _SPECS}


@pytest.fixture(scope="module")
def ingest_rows():
    return list(generate_voc(rows=40, seed=99).iter_rows())


def _assert_grid_agrees(advisors, label):
    fingerprints = {
        spec: _fingerprint(advisor.advise(_CONTEXT, max_answers=6))
        for spec, advisor in advisors.items()
    }
    baseline = fingerprints["memory"]
    assert baseline, f"{label}: the plain backend produced no advice"
    for spec, fingerprint in fingerprints.items():
        assert fingerprint == baseline, f"{label}: {spec!r} diverged from plain memory"


def test_advice_identical_across_grid_and_mutations(advisors, ingest_rows):
    _assert_grid_agrees(advisors, "initial")

    # Live ingest: every backend absorbs the same batch; indexes keyed to
    # the superseded version must vanish with it.
    for advisor in advisors.values():
        advisor.ingest(ingest_rows)
    _assert_grid_agrees(advisors, "after ingest")

    # Predicate delete: shrinks the data, shifting zone-map bounds — a
    # stale map could now wrongly skip (or admit) shards.
    for advisor in advisors.values():
        deleted = advisor.delete_where("tonnage >= 3200")
        assert deleted > 0
    _assert_grid_agrees(advisors, "after delete")


def test_drilldown_identical_across_grid(advisors):
    from repro.core import ExplorationSession

    paths = {}
    for spec, advisor in advisors.items():
        session = ExplorationSession(advisor, max_answers=5)
        session.start(["type_of_boat", "tonnage"])
        advice = session.drill(0, 0)
        paths[spec] = (_fingerprint(advice), session.breadcrumbs())
    baseline = paths["memory"]
    for spec, path in paths.items():
        assert path == baseline, f"drill-down diverged on {spec!r}"
