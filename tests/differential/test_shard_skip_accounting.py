"""Shard-skip accounting: every skipped shard is *provably* empty.

Two obligations: (a) whenever the zone maps rule a shard out, a
brute-force evaluation of the query on that shard selects zero rows —
and raises nothing, because a skip decision is only allowed when the
zone checks performed the exact encodes evaluation would; (b) the
``skipped_partitions`` counter equals the sum of the per-shard skip
decisions, so the observability surface reports real work avoided.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given

from diff_strategies import outcome, sdl_queries, small_tables
from repro.sdl import RangePredicate, SDLQuery
from repro.storage import PartitionedTable, QueryEngine, Table, build_column
from repro.storage.expression import query_mask
from repro.storage.table import DataType


@given(
    table=small_tables(),
    query=sdl_queries(),
    partitions=st.integers(min_value=2, max_value=6),
)
def test_skipped_shards_are_provably_empty(table, query, partitions):
    partitioned = PartitionedTable(table, partitions)
    decisions = partitioned.skipping().skip_decisions(query)
    assert len(decisions) == partitioned.num_partitions
    for shard, skipped in zip(partitioned.shards, decisions):
        if skipped:
            # Skips must be raise-free by construction: the zone checks
            # already performed every encode evaluation would attempt.
            mask = query_mask(shard, query)
            assert int(np.count_nonzero(mask)) == 0


@given(table=small_tables(), query=sdl_queries())
def test_skip_counter_matches_decisions(table, query):
    """On a cache-disabled partitioned count, the counter equals the tally."""
    engine = QueryEngine(table, use_index="all", partitions=4, cache_size=0)
    expected = sum(engine.partitioned_table.skipping().skip_decisions(query))
    result = outcome(engine.count, query)
    if result[0] == "error":
        return  # an erroring query aborts the walk; no accounting claim
    assert engine.counter.snapshot()["skipped_partitions"] == expected


def test_clustered_table_actually_skips():
    """Anti-vacuousness: a value-clustered table produces real skips."""
    values = sorted(range(400))
    table = Table("clustered", [build_column("num", values, DataType.INT)])
    engine = QueryEngine(table, use_index="zonemap", partitions=8, cache_size=0)
    query = SDLQuery([RangePredicate("num", 10, 30)])
    assert engine.count(query) == 21
    skipped = engine.counter.snapshot()["skipped_partitions"]
    assert skipped >= 6  # the range spans one of eight 50-row shards
    # And the plain engine agrees on the answer, naturally.
    assert QueryEngine(table).count(query) == 21


def test_skip_counter_survives_in_stats():
    table = Table("clustered", [build_column("num", list(range(100)), DataType.INT)])
    engine = QueryEngine(table, use_index="all", partitions=4, cache_size=0)
    engine.count(SDLQuery([RangePredicate("num", 0, 5)]))
    stats = engine.stats()
    assert stats["operations"]["skipped_partitions"] >= 1
    assert sorted(stats["index"]) == ["bitmap", "maskreuse", "sorted", "zonemap"]
