"""Strategies and helpers for the differential-testing harness.

The harness's contract: every engine configuration — index features on or
off, any partition count, with or without workers, memory or SQLite —
must be *observationally identical*.  Identical aggregates and masks, but
also identical operation counters and cache traffic, so the indexes can
never be detected from the outside (except through the purely
observational ``skipped_partitions`` tally, which is excluded from the
comparisons and asserted separately with a proof check).

Tables and queries are Hypothesis-generated over a fixed four-column
schema (INT, FLOAT, STRING, BOOL, all nullable) whose query value domains
deliberately include values absent from the data, out-of-range bounds and
occasionally mistyped constants — the places where skip decisions, bitmap
misses and error behaviour must still match the plain path bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Tuple

import hypothesis.strategies as st
import numpy as np

from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
)
from repro.storage import DataType, Table, build_column

COLUMNS = ("num", "val", "cat", "flag")

_CATEGORIES = ["alpha", "beta", "gamma", "delta", "epsilon"]

_CELLS = {
    "num": st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    "val": st.one_of(
        st.none(),
        st.floats(min_value=-100, max_value=100, allow_nan=False).map(
            lambda value: round(value, 2)
        ),
    ),
    "cat": st.one_of(st.none(), st.sampled_from(_CATEGORIES)),
    "flag": st.one_of(st.none(), st.booleans()),
}

_DTYPES = {
    "num": DataType.INT,
    "val": DataType.FLOAT,
    "cat": DataType.STRING,
    "flag": DataType.BOOL,
}

#: Predicate value domains: wider than the data (unknown categories,
#: out-of-range numbers) and, for ``num``, occasionally float constants —
#: INT set predicates truncate them, a classic skip-correctness trap.
_VALUES = {
    "num": st.one_of(
        st.integers(min_value=-60, max_value=60),
        st.floats(min_value=-60, max_value=60, allow_nan=False).map(
            lambda value: round(value, 1)
        ),
    ),
    "val": st.floats(min_value=-120, max_value=120, allow_nan=False).map(
        lambda value: round(value, 2)
    ),
    "cat": st.sampled_from(_CATEGORIES + ["zeta", "eta", ""]),
    "flag": st.booleans(),
}


@st.composite
def small_tables(draw) -> Table:
    """A nullable four-column table of 0..120 rows."""
    rows = draw(st.integers(min_value=0, max_value=120))
    columns = [
        build_column(
            name,
            draw(st.lists(_CELLS[name], min_size=rows, max_size=rows)),
            _DTYPES[name],
        )
        for name in COLUMNS
    ]
    return Table("diff", columns)


@st.composite
def predicates_for(draw, attribute: str):
    kind = draw(st.sampled_from(["none", "range", "set", "exclusion"]))
    if kind == "none":
        return NoConstraint(attribute)
    if kind == "range":
        values = _VALUES[attribute]
        first, second = draw(values), draw(values)
        low, high = min(first, second), max(first, second)
        include_low, include_high = draw(st.booleans()), draw(st.booleans())
        if low == high:
            include_low = include_high = True
        return RangePredicate(
            attribute, low, high, include_low=include_low, include_high=include_high
        )
    members = frozenset(draw(st.sets(_VALUES[attribute], min_size=1, max_size=4)))
    if kind == "set":
        return SetPredicate(attribute, members)
    return ExclusionPredicate(attribute, members)


@st.composite
def sdl_queries(draw) -> SDLQuery:
    attributes = draw(
        st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=4, unique=True)
    )
    return SDLQuery([draw(predicates_for(attribute)) for attribute in attributes])


@st.composite
def drilldowns(draw) -> Tuple[SDLQuery, SDLQuery]:
    """A ``(parent, child)`` pair where the child adds one new predicate.

    Exactly the shape drill-down and HB-cuts pieces produce, which is the
    mask-reuse hot case; parents keep the child's attribute unconstrained
    so signatures line up the way real exploration contexts do.
    """
    parent = draw(sdl_queries())
    target = draw(st.sampled_from(parent.predicates))
    delta = draw(predicates_for(target.attribute))
    child = SDLQuery(
        delta
        if p.attribute == target.attribute and not isinstance(delta, NoConstraint)
        else p
        for p in parent.predicates
    )
    relaxed = SDLQuery(
        NoConstraint(p.attribute) if p.attribute == target.attribute else p
        for p in parent.predicates
    )
    return relaxed, child


def outcome(fn, *args, **kwargs):
    """``("ok", value)`` or ``("error", ExceptionType)`` — never raises.

    Differential comparisons treat raising the same exception type as
    agreement: the indexed path must fail exactly where the plain path
    fails.
    """
    try:
        return ("ok", fn(*args, **kwargs))
    except Exception as error:
        return ("error", type(error).__name__)


def counters_except_skips(engine) -> Dict[str, int]:
    """Counter snapshot minus the purely observational skip tally."""
    snapshot = engine.counter.snapshot()
    snapshot.pop("skipped_partitions", None)
    return snapshot


def equal_outcomes(left, right) -> bool:
    if left[0] != right[0]:
        return False
    if left[0] == "error":
        return left[1] == right[1]
    a, b = left[1], right[1]
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and np.array_equal(a, b)
    return a == b
