"""Differential gate: tracing must be invisible to the answers.

The observability layer's contract is *read-only*: a request served with
span tracing active returns byte-identical advice to the same request
served untraced — across the backend grid (plain / indexed /
partitioned) and the approximate tier.  A divergence means the
instrumentation leaked into the computation (reordered work, consumed a
cache differently, perturbed a seed), which this suite exists to catch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.codec import dumps
from repro.api.protocol import Request
from repro.service import AdvisorService
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "tonnage", "departure_harbour"]
_ROWS, _SEED = 300, 7

#: Backend specs spanning the execution grid: plain, skipping indexes,
#: partitioned-parallel, and the approximate (sketch) tier over each.
_GRID = (
    "memory",
    "memory?index=all",
    "memory?index=all&partitions=3&workers=2",
    "memory?approx=256",
    "memory?approx=256&index=all&partitions=3&workers=2",
)


def _service(spec: str) -> AdvisorService:
    return AdvisorService(
        generate_voc(rows=_ROWS, seed=_SEED), batch_window=0.0, backend=spec
    )


def _wire_bytes(advice) -> str:
    """Canonical advice bytes with the one wall-clock field zeroed.

    ``advice.trace`` here is the HB-cuts evaluation trace (a ranking
    artefact predating span tracing) — its ``runtime_seconds`` is the
    only advice field that is not a pure function of data and
    configuration.
    """
    trace = dataclasses.replace(advice.trace, runtime_seconds=0.0)
    return dumps(dataclasses.replace(advice, trace=trace))


def _advise(service: AdvisorService, session: str, traced: bool):
    service.submit(Request(op="open_session", session=session, table="voc"))
    response = service.submit(
        Request(
            op="advise",
            session=session,
            context=_CONTEXT,
            trace={} if traced else None,
        )
    )
    assert response.ok, response.error
    return response


class TestTracingInvisibility:
    @pytest.mark.parametrize("spec", _GRID)
    def test_traced_advice_is_byte_identical_to_untraced(self, spec):
        traced = _advise(_service(spec), "traced", traced=True)
        plain = _advise(_service(spec), "plain", traced=False)
        assert traced.trace is not None and plain.trace is None
        assert _wire_bytes(traced.result) == _wire_bytes(plain.result), (
            f"tracing changed the advice on backend {spec!r}"
        )

    @pytest.mark.parametrize("spec", _GRID[:2])
    def test_tracing_is_invisible_to_drilldowns(self, spec):
        runs = {}
        for label, traced in (("traced", True), ("plain", False)):
            service = _service(spec)
            trace = {} if traced else None
            service.submit(Request(op="open_session", session="s", table="voc"))
            service.submit(
                Request(op="advise", session="s", context=_CONTEXT, trace=trace)
            )
            drilled = service.submit(
                Request(
                    op="drill", session="s", answer_index=0, segment_index=0,
                    trace=trace,
                )
            )
            assert drilled.ok, drilled.error
            runs[label] = _wire_bytes(drilled.result)
        assert runs["traced"] == runs["plain"]

    def test_traced_and_untraced_interleave_on_one_service(self):
        # The stronger property: on a *single* service instance, a traced
        # request between two untraced ones changes nothing (shared
        # caches included).
        service = _service("memory?index=all")
        service.submit(Request(op="open_session", session="a", table="voc"))
        first = service.submit(
            Request(op="advise", session="a", context=_CONTEXT)
        )
        service.submit(Request(op="open_session", session="b", table="voc"))
        traced = service.submit(
            Request(op="advise", session="b", context=_CONTEXT, trace={})
        )
        service.submit(Request(op="open_session", session="c", table="voc"))
        second = service.submit(
            Request(op="advise", session="c", context=_CONTEXT)
        )
        assert (
            _wire_bytes(first.result)
            == _wire_bytes(traced.result)
            == _wire_bytes(second.result)
        )
