"""Differential testing: skipping indexes are observationally invisible.

Every engine configuration — zone maps, bitmap indexes, mask reuse, any
partition count — must produce *bit-for-bit* the answers of the plain
unindexed engine: same counts, same selection vectors, same medians and
frequency tables, same exception types on malformed queries, and the
same operation counters and cache traffic (the only permitted divergence
is the purely observational ``skipped_partitions`` tally, proven sound
separately in ``test_shard_skip_accounting.py``).
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given

from diff_strategies import (
    counters_except_skips,
    drilldowns,
    equal_outcomes,
    outcome,
    sdl_queries,
    small_tables,
)
from repro.storage import QueryEngine

#: (index features, partitions) grid compared against the plain baseline.
#: ``partitions=9`` intentionally exceeds many generated row counts so the
#: empty-shard edge stays covered.
CONFIGS = (
    ("all", 1),
    ("zonemap,bitmap", 4),
    ("all", 4),
    ("all", 9),
)


def _run_workload(engine: QueryEngine, queries) -> list:
    """One engine's observable trace over a query workload.

    Each query runs twice (the repeat exercises the mask cache) and
    contributes its count, selection vector, a numeric median and a
    nominal frequency table; the trace ends with the engine's counter
    snapshot and cache statistics so any divergence in *how* the answers
    were produced fails the comparison too.
    """
    trace = []
    for query in queries:
        for _ in range(2):
            trace.append(outcome(engine.count, query))
        trace.append(outcome(engine.evaluate, query))
        trace.append(outcome(engine.median, "num", query))
        trace.append(outcome(engine.value_frequencies, "cat", query))
    trace.append(counters_except_skips(engine))
    trace.append(engine.cache.stats().snapshot())
    return trace


@given(table=small_tables(), queries=st.lists(sdl_queries(), min_size=1, max_size=5))
def test_indexed_engines_match_plain(table, queries):
    plain = _run_workload(QueryEngine(table), queries)
    for features, partitions in CONFIGS:
        indexed = _run_workload(
            QueryEngine(table, use_index=features, partitions=partitions), queries
        )
        assert len(plain) == len(indexed)
        for step, (expected, actual) in enumerate(zip(plain, indexed)):
            if isinstance(expected, tuple):
                assert equal_outcomes(expected, actual), (
                    f"config index={features!r} partitions={partitions}: "
                    f"step {step} diverged: {expected!r} != {actual!r}"
                )
            else:
                assert expected == actual, (
                    f"config index={features!r} partitions={partitions}: "
                    f"trace tail diverged: {expected!r} != {actual!r}"
                )


@given(table=small_tables(), pairs=st.lists(drilldowns(), min_size=1, max_size=4))
def test_mask_reuse_is_invisible(table, pairs):
    """Drill-downs with hints answer exactly like the plain engine.

    ``hint_parent`` is called on both engines (it is a no-op without the
    feature), so the two runs are call-for-call identical — including the
    evaluation counters and cache hit/miss traffic, which mask reuse is
    required to leave untouched.
    """
    plain = QueryEngine(table)
    reuse = QueryEngine(table, use_index="maskreuse")
    for parent, child in pairs:
        results = []
        for engine in (plain, reuse):
            step = [outcome(engine.count, parent)]
            engine.hint_parent(child, parent)
            step.append(outcome(engine.count, child))
            step.append(outcome(engine.evaluate, child))
            results.append(step)
        for expected, actual in zip(*results):
            assert equal_outcomes(expected, actual), (
                f"mask reuse diverged on parent={parent.to_sdl()!r} "
                f"child={child.to_sdl()!r}: {expected!r} != {actual!r}"
            )
    assert counters_except_skips(plain) == counters_except_skips(reuse)
    assert plain.cache.stats().snapshot() == reuse.cache.stats().snapshot()


@given(table=small_tables(), queries=st.lists(sdl_queries(), min_size=1, max_size=4))
def test_batches_match_plain(table, queries):
    """The deduplicated batch entry points agree under every index tier."""
    plain = QueryEngine(table)
    expected = outcome(plain.count_batch, queries)
    for features, partitions in CONFIGS:
        engine = QueryEngine(table, use_index=features, partitions=partitions)
        assert equal_outcomes(expected, outcome(engine.count_batch, queries))
        assert counters_except_skips(plain) == counters_except_skips(engine)
