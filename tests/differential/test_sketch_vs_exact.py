"""Differential testing: the sketch tier's answers are *provably* close.

Unlike the index harness (which demands bit-identical answers), the
approximate tier is allowed to be wrong — but only within the error
bound it reports alongside each answer.  That claim is falsifiable, and
this suite falsifies it or passes:

* every ``approx_count`` estimate sits within ``rows * bound`` of the
  exact count, and malformed queries fail with the same exception type;
* every unconstrained ``approx_median`` lands within the advertised rank
  tolerance of the true median's rank (and empty columns raise the same
  :class:`EmptyColumnError`);
* interactive advice ranks substantially the same segmentations as the
  exact path on the paper's VOC workload;
* exact refinement of an interactive session is *byte-identical* on the
  wire to a plain advise over the same backend configuration, across the
  approx × index × partitions grid;
* the sketch tier's traffic is fully accounted on its own counters and
  never leaks into the exact engine's counters or result cache.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

import dataclasses

from diff_strategies import COLUMNS, outcome, predicates_for, small_tables
from repro.api.codec import dumps
from repro.backends.approx import ApproxEngine
from repro.core import Charles, ExplorationSession
from repro.sdl import SDLQuery
from repro.storage import QueryEngine
from repro.workloads import generate_voc

_CONTEXT = ["type_of_boat", "departure_harbour", "tonnage", "built"]

#: Small budgets force stride compaction even on 120-row tables, so the
#: bound accounting is exercised, not just the exact small-sketch path.
_BUDGET = 16


@st.composite
def single_predicate_queries(draw) -> SDLQuery:
    # The count bound is provable for one constrained predicate; joint
    # selectivities multiply marginals (a heuristic, not a bound).
    attribute = draw(st.sampled_from(COLUMNS))
    return SDLQuery([draw(predicates_for(attribute))])


class TestCountContainment:
    @given(table=small_tables(), query=single_predicate_queries())
    @settings(max_examples=80, deadline=None)
    def test_estimate_within_reported_bound(self, table, query):
        exact = outcome(QueryEngine(table).count, query)
        approx = ApproxEngine(QueryEngine(table), budget=_BUDGET)
        actual = outcome(approx.count, query)
        assert exact[0] == actual[0], (
            f"outcome kinds diverged on {query.to_sdl()!r}: "
            f"{exact!r} != {actual!r}"
        )
        if exact[0] == "error":
            assert exact[1] == actual[1]
            return
        estimate = approx.approx_count(query)
        assert estimate.approximate is True
        assert actual[1] == estimate.estimate
        slack = table.num_rows * estimate.error_bound + 0.5
        assert abs(exact[1] - estimate.estimate) <= slack, (
            f"count estimate {estimate.estimate} ± {estimate.error_bound:.3f} "
            f"misses exact {exact[1]} on {query.to_sdl()!r}"
        )


class TestMedianContainment:
    @given(table=small_tables(), attribute=st.sampled_from(["num", "val"]))
    @settings(max_examples=80, deadline=None)
    def test_unconstrained_median_within_rank_tolerance(self, table, attribute):
        exact = outcome(QueryEngine(table).median, attribute)
        approx = ApproxEngine(QueryEngine(table), budget=_BUDGET)
        actual = outcome(approx.median, attribute)
        assert exact[0] == actual[0]
        if exact[0] == "error":
            # All-missing columns raise EmptyColumnError on both paths.
            assert exact[1] == actual[1]
            return
        estimate = approx.approx_median(attribute)
        data = np.sort(
            np.asarray(
                [
                    value
                    for value in table.column(attribute).values_list(None)
                    if value is not None
                ],
                dtype=np.float64,
            )
        )
        target = round(0.5 * (data.size - 1))
        low = int(np.searchsorted(data, float(estimate.estimate), side="left"))
        high = int(np.searchsorted(data, float(estimate.estimate), side="right")) - 1
        distance = max(0, low - target, target - high)
        assert distance <= estimate.error_bound * data.size, (
            f"median estimate {estimate.estimate} sits {distance} ranks from "
            f"target over {data.size} values, beyond the advertised "
            f"{estimate.error_bound:.4f} tolerance"
        )


class TestAdviceOverlap:
    def test_interactive_ranking_overlaps_exact(self):
        advisor = Charles(generate_voc(rows=400, seed=3))
        exact = advisor.advise(_CONTEXT, max_answers=6)
        interactive = advisor.advise(_CONTEXT, max_answers=6, mode="interactive")
        assert exact.approximate is False and exact.error_bound is None
        assert interactive.approximate is True
        assert interactive.error_bound is not None
        assert 0.0 <= interactive.error_bound <= 1.0
        exact_keys = [a.segmentation.cut_attributes for a in exact.answers]
        approx_keys = [a.segmentation.cut_attributes for a in interactive.answers]
        assert approx_keys, "interactive advise produced no answers"
        overlap = sum(1 for key in approx_keys if key in exact_keys)
        assert 2 * overlap >= len(approx_keys), (
            f"sketch ranking {approx_keys} shares only {overlap} cut sets "
            f"with the exact top ranking {exact_keys}"
        )


#: Extra backend parameters composed with ``approx=256`` (and mirrored
#: without it for the plain baseline): the refinement contract must hold
#: whatever indexes or partitioning ride underneath the sketch tier.
_GRID = ("", "index=all", "index=all&partitions=3&workers=2")


def _specs(base: str):
    approx = "memory?approx=256" + (f"&{base}" if base else "")
    plain = "memory" + (f"?{base}" if base else "")
    return approx, plain


def _wire_bytes(advice) -> str:
    """The advice's wire text with the one wall-clock field zeroed.

    ``runtime_seconds`` is a measured duration — the only advice field
    that is not a pure function of the data and configuration.
    """
    trace = dataclasses.replace(advice.trace, runtime_seconds=0.0)
    return dumps(dataclasses.replace(advice, trace=trace))


class TestRefinementIdentity:
    @pytest.mark.parametrize("base", _GRID)
    def test_refined_advice_is_byte_identical_to_plain(self, base):
        approx_spec, plain_spec = _specs(base)
        context = ["type_of_boat", "tonnage", "departure_harbour"]
        session = ExplorationSession(
            Charles(generate_voc(rows=300, seed=7), backend=approx_spec),
            max_answers=5,
        )
        first = session.start(context, mode="interactive")
        assert first.approximate is True
        refined = session.refine()
        assert refined.approximate is False and refined.error_bound is None
        plain = Charles(generate_voc(rows=300, seed=7), backend=plain_spec).advise(
            context, max_answers=5
        )
        assert _wire_bytes(refined) == _wire_bytes(plain), (
            f"refinement on {approx_spec!r} diverged from a plain advise "
            f"on {plain_spec!r}"
        )

    def test_refinement_is_idempotent_and_replaces_the_step(self):
        session = ExplorationSession(
            Charles(generate_voc(rows=200, seed=13), backend="memory?approx=128"),
            max_answers=4,
        )
        session.start(["type_of_boat", "tonnage"], mode="interactive")
        refined = session.refine()
        assert session.advise() is refined  # the step now serves exact advice
        assert session.refine() is refined  # and refining again is a no-op


class TestTrafficAccounting:
    def test_interactive_advise_never_touches_the_exact_engine(self):
        advisor = Charles(generate_voc(rows=300, seed=11))
        exact_engine = advisor.engine
        counters_before = exact_engine.counter.snapshot()
        cache_before = exact_engine.cache.stats().snapshot()
        advice = advisor.advise(["type_of_boat", "tonnage"], max_answers=4,
                                mode="interactive")
        assert advice.approximate is True
        assert exact_engine.counter.snapshot() == counters_before
        assert exact_engine.cache.stats().snapshot() == cache_before

    def test_sketch_traffic_lands_on_the_advice_counters(self):
        advisor = Charles(generate_voc(rows=300, seed=11))
        exact = advisor.advise(["type_of_boat", "tonnage"], max_answers=4)
        interactive = advisor.advise(["type_of_boat", "tonnage"], max_answers=4,
                                     mode="interactive")
        # The exact path evaluates selection masks; the sketch path never
        # does — its counts/medians are answered from merged summaries.
        assert exact.engine_operations.get("evaluations", 0) > 0
        assert interactive.engine_operations.get("evaluations", 0) == 0
        assert interactive.engine_operations.get("count_calls", 0) > 0
