"""Unit tests for the bounded slow-operation log."""

from repro.obs.slowlog import DEFAULT_PER_OP, SlowOpLog


class TestRecording:
    def test_keeps_only_the_worst_per_op(self):
        log = SlowOpLog(per_op=3)
        for index in range(10):
            log.record("advise", seconds=index / 10.0)
        document = log.document()
        entries = document["ops"]["advise"]
        assert [entry["seconds"] for entry in entries] == [0.9, 0.8, 0.7]

    def test_fast_requests_do_not_displace_slow_ones(self):
        log = SlowOpLog(per_op=2)
        log.record("count", 5.0)
        log.record("count", 4.0)
        log.record("count", 0.001)
        entries = log.document()["ops"]["count"]
        assert [entry["seconds"] for entry in entries] == [5.0, 4.0]

    def test_entries_carry_session_request_and_trace(self):
        log = SlowOpLog()
        log.record(
            "advise",
            1.5,
            session="voyages",
            request_id="r-1",
            trace={"name": "service.advise", "trace_id": "t-1"},
        )
        (entry,) = log.document()["ops"]["advise"]
        assert entry["session"] == "voyages"
        assert entry["request_id"] == "r-1"
        assert entry["trace"]["trace_id"] == "t-1"
        assert entry["recorded_at"] > 0

    def test_untraced_entries_omit_optional_fields(self):
        log = SlowOpLog()
        log.record("count", 0.5)
        (entry,) = log.document()["ops"]["count"]
        assert "session" not in entry
        assert "trace" not in entry

    def test_clear_empties_the_log(self):
        log = SlowOpLog()
        log.record("advise", 1.0)
        log.clear()
        assert log.document()["ops"] == {}


class TestDocuments:
    def test_limit_caps_entries_per_op(self):
        log = SlowOpLog(per_op=8)
        for index in range(8):
            log.record("advise", float(index))
        document = log.document(limit=2)
        assert document["per_op"] == 2
        assert [e["seconds"] for e in document["ops"]["advise"]] == [7.0, 6.0]

    def test_default_per_op_applies(self):
        assert SlowOpLog().per_op == DEFAULT_PER_OP

    def test_merge_reranks_the_union(self):
        left, right = SlowOpLog(per_op=2), SlowOpLog(per_op=2)
        left.record("advise", 3.0)
        left.record("advise", 1.0)
        right.record("advise", 2.0)
        right.record("count", 0.5)
        merged = SlowOpLog.merge_documents([left.document(), right.document()])
        assert [e["seconds"] for e in merged["ops"]["advise"]] == [3.0, 2.0]
        assert [e["seconds"] for e in merged["ops"]["count"]] == [0.5]

    def test_merge_honours_an_explicit_limit(self):
        left, right = SlowOpLog(), SlowOpLog()
        for index in range(5):
            left.record("advise", float(index))
            right.record("advise", float(index) + 0.5)
        merged = SlowOpLog.merge_documents(
            [left.document(), right.document()], limit=3
        )
        assert merged["per_op"] == 3
        assert [e["seconds"] for e in merged["ops"]["advise"]] == [4.5, 4.0, 3.5]

    def test_merge_of_nothing_is_empty(self):
        merged = SlowOpLog.merge_documents([])
        assert merged["ops"] == {}
        assert merged["per_op"] == DEFAULT_PER_OP
