"""Unit tests for the span-tree tracing core."""

import pytest

from repro.obs.trace import (
    NO_SPAN,
    Span,
    current_span,
    format_span_tree,
    span,
    start_trace,
    tracing_active,
)


class TestInactivePath:
    def test_span_is_the_noop_singleton_outside_a_trace(self):
        assert span("anything") is NO_SPAN
        assert not NO_SPAN
        assert current_span() is None
        assert not tracing_active()

    def test_noop_span_absorbs_the_full_api(self):
        with span("outer") as node:
            assert node is NO_SPAN
            node.annotate(ignored=True)
            assert node.child("x") is NO_SPAN
            assert node.record("x", 0.5) is NO_SPAN
            node.adopt({"name": "remote"})
            assert node.finish() is NO_SPAN


class TestSpanTree:
    def test_nested_spans_share_one_trace_id(self):
        root = start_trace("service.advise", op="advise")
        with root:
            assert tracing_active()
            assert current_span() is root
            with span("session.advise", mode="exact") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert current_span() is child
                grandchild = span("engine.count")
                grandchild.finish()
            assert current_span() is root
        assert current_span() is None
        document = root.to_document()
        assert document["trace_id"] == root.trace_id
        (session_doc,) = document["children"]
        assert session_doc["name"] == "session.advise"
        assert session_doc["attributes"] == {"mode": "exact"}
        (engine_doc,) = session_doc["children"]
        assert engine_doc["name"] == "engine.count"

    def test_join_an_existing_distributed_trace(self):
        root = start_trace("node.advise", trace_id="t-router", parent_id="s-router")
        assert root.trace_id == "t-router"
        assert root.parent_id == "s-router"

    def test_retroactive_record_backdates_the_leaf(self):
        root = start_trace("root")
        leaf = root.record("engine.count", 0.25, partitions=3, cache_hit=True)
        assert leaf.duration_seconds == 0.25
        assert leaf.started_at <= root.to_document()["started_at"] + 1.0
        document = root.to_document()
        (leaf_doc,) = document["children"]
        assert leaf_doc["attributes"] == {"partitions": 3, "cache_hit": True}
        assert leaf_doc["duration_seconds"] == 0.25

    def test_adopted_remote_documents_pass_through_verbatim(self):
        root = start_trace("router.advise")
        remote = {"name": "service.advise", "trace_id": root.trace_id, "children": []}
        root.adopt(remote)
        document = root.to_document()
        assert document["children"][0]["name"] == "service.advise"

    def test_exceptions_are_recorded_and_reraised(self):
        root = start_trace("root")
        with pytest.raises(ValueError):
            with root:
                raise ValueError("boom")
        assert root.error == "ValueError: boom"
        assert root.duration_seconds is not None
        assert "error" in root.to_document()

    def test_finish_is_idempotent(self):
        node = Span("x")
        first = node.finish().duration_seconds
        assert node.finish().duration_seconds == first

    def test_empty_sections_are_omitted_from_the_document(self):
        document = Span("bare").to_document()
        assert "attributes" not in document
        assert "children" not in document
        assert "error" not in document


class TestFormatting:
    def test_tree_renders_indented_with_attributes_and_errors(self):
        root = start_trace("service.advise", op="advise")
        with root:
            with span("session.advise", cached=True):
                pass
        root.error = "RuntimeError: late"
        text = format_span_tree(root.to_document())
        lines = text.splitlines()
        assert "service.advise" in lines[0]
        assert "[op=advise]" in lines[0]
        assert "!error=RuntimeError: late" in lines[0]
        assert lines[1].startswith("  ")
        assert "session.advise" in lines[1]
        assert "[cached=True]" in lines[1]
        assert "ms" in lines[0]
