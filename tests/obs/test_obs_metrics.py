"""Unit tests for the metrics registry, instruments and merging."""

import pytest

from repro.obs.metrics import (
    DEFAULT_HISTOGRAM_BUDGET,
    Histogram,
    MetricsRegistry,
    render_document,
)


class TestCountersAndGauges:
    def test_owned_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0

    def test_view_counter_reads_its_source_and_rejects_inc(self):
        registry = MetricsRegistry()
        tally = {"hits": 7}
        counter = registry.counter("hits_total", fn=lambda: tally["hits"])
        assert counter.value() == 7.0
        tally["hits"] = 9
        assert counter.value() == 9.0
        with pytest.raises(ValueError):
            counter.inc()

    def test_view_gauge_tracks_and_rejects_set(self):
        registry = MetricsRegistry()
        state = {"entries": 4}
        gauge = registry.gauge("cache_entries", fn=lambda: state["entries"])
        assert gauge.value() == 4.0
        with pytest.raises(ValueError):
            gauge.set(1)

    def test_registration_is_idempotent_by_name_and_labels(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", labels={"op": "count"})
        again = registry.counter("x_total", labels={"op": "count"})
        other = registry.counter("x_total", labels={"op": "median"})
        assert first is again
        assert first is not other


class TestHistograms:
    def test_quantiles_come_from_the_sketch(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")
        for value in range(1, 101):
            histogram.observe(value / 100.0)
        count, total, sketch = histogram.snapshot()
        assert count == 100
        assert total == pytest.approx(50.5)
        assert sketch.quantile(0.5) == pytest.approx(0.5, abs=0.1)

    def test_pending_folds_at_the_threshold(self):
        histogram = Histogram("x", (), "", budget=32)
        for _ in range(Histogram.FOLD_THRESHOLD):
            histogram.observe(1.0)
        assert len(histogram._pending) == 0
        assert histogram._sketch.total_weight == Histogram.FOLD_THRESHOLD


class TestDocumentAndRendering:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests.").inc(5)
        registry.gauge("cache_entries", "Entries.", labels={"table": "voc"}).set(3)
        histogram = registry.histogram(
            "request_seconds", "Latency.", labels={"op": "advise"}
        )
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        return registry

    def test_document_round_trips_through_the_renderer(self):
        registry = self._registry()
        text = render_document(registry.to_document())
        assert "# TYPE charles_requests_total counter" in text
        assert "charles_requests_total 5" in text
        assert 'charles_cache_entries{table="voc"} 3' in text
        assert "# TYPE charles_request_seconds summary" in text
        assert 'charles_request_seconds{op="advise",quantile="0.5"}' in text
        assert 'charles_request_seconds{op="advise",quantile="0.95"}' in text
        assert 'charles_request_seconds{op="advise",quantile="0.99"}' in text
        assert 'charles_request_seconds_count{op="advise"} 3' in text
        assert text == registry.render_prometheus()

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("idle_seconds")
        text = registry.render_prometheus()
        assert 'charles_idle_seconds{quantile="0.5"} NaN' in text
        assert "charles_idle_seconds_count 0" in text

    def test_namespace_prefixes_every_name(self):
        registry = MetricsRegistry(namespace="other")
        registry.counter("x_total").inc()
        assert "other_x_total 1" in registry.render_prometheus()


class TestMerging:
    def test_merge_sums_scalars_and_merges_sketches(self):
        def node():
            registry = MetricsRegistry()
            registry.counter("requests_total").inc(10)
            registry.gauge("cache_entries").set(4)
            histogram = registry.histogram("request_seconds", labels={"op": "advise"})
            for value in (0.1, 0.2):
                histogram.observe(value)
            return registry.to_document()

        merged = MetricsRegistry.merge_documents([node(), node()])
        (counter,) = merged["counters"]
        assert counter["value"] == 20.0
        (gauge,) = merged["gauges"]
        assert gauge["value"] == 8.0
        (histogram,) = merged["histograms"]
        assert histogram["count"] == 4
        assert histogram["sum"] == pytest.approx(0.6)
        assert histogram["total_weight"] == 4

    def test_merged_document_still_renders(self):
        registry = MetricsRegistry()
        registry.histogram("request_seconds").observe(1.0)
        merged = MetricsRegistry.merge_documents(
            [registry.to_document(), registry.to_document()]
        )
        text = render_document(merged)
        assert "charles_request_seconds_count 2" in text

    def test_disjoint_rows_union(self):
        left = MetricsRegistry()
        left.counter("a_total").inc()
        right = MetricsRegistry()
        right.counter("b_total").inc()
        merged = MetricsRegistry.merge_documents(
            [left.to_document(), right.to_document()]
        )
        assert [row["name"] for row in merged["counters"]] == ["a_total", "b_total"]

    def test_default_budget_is_sane(self):
        assert DEFAULT_HISTOGRAM_BUDGET >= 2
