"""Property-based tests: median splits, quantile cuts and the HB-cuts output."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.core import (
    HBCuts,
    HBCutsConfig,
    cut_query,
    entropy,
    equal_frequency_segmentation,
    median_split,
)
from repro.errors import CannotCutError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMedianSplitProperties:
    @_SETTINGS
    @given(
        values=st.lists(st.integers(min_value=-10_000, max_value=10_000),
                        min_size=2, max_size=200)
    )
    def test_numeric_split_covers_every_value_exactly_once(self, values):
        table = Table.from_dict({"x": values})
        engine = QueryEngine(table)
        try:
            spec = median_split(engine, SDLQuery.over(["x"]), "x")
        except CannotCutError:
            assert len(set(values)) < 2
            return
        for value in values:
            matches = int(spec.lower.matches_value(value)) + int(spec.upper.matches_value(value))
            assert matches == 1

    @_SETTINGS
    @given(
        values=st.lists(st.sampled_from(list("abcdefgh")), min_size=2, max_size=200)
    )
    def test_nominal_split_partitions_the_value_set(self, values):
        table = Table.from_dict({"t": values})
        engine = QueryEngine(table)
        try:
            spec = median_split(engine, SDLQuery.over(["t"]), "t")
        except CannotCutError:
            assert len(set(values)) < 2
            return
        assert spec.lower.values | spec.upper.values == set(values)
        assert not spec.lower.values & spec.upper.values

    @_SETTINGS
    @given(
        values=st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=300)
    )
    def test_binary_cut_is_never_worse_than_three_to_one_on_distinct_data(self, values):
        # With at least four distinct values, the median split keeps both
        # pieces non-empty; on continuous-ish data it is roughly balanced.
        if len(set(values)) < 4:
            return
        table = Table.from_dict({"x": values})
        engine = QueryEngine(table)
        segmentation = cut_query(engine, SDLQuery.over(["x"]), "x")
        assert min(segmentation.counts) >= 1
        assert sum(segmentation.counts) == len(values)


class TestQuantileCutProperties:
    @_SETTINGS
    @given(
        values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=8, max_size=300),
        pieces=st.integers(min_value=2, max_value=6),
    )
    def test_equal_frequency_cut_partitions(self, values, pieces):
        table = Table.from_dict({"x": values})
        engine = QueryEngine(table)
        try:
            segmentation = equal_frequency_segmentation(
                engine, SDLQuery.over(["x"]), "x", pieces=pieces
            )
        except CannotCutError:
            return
        assert 2 <= segmentation.depth <= pieces
        assert sum(segmentation.counts) == len(values)
        assert check_partition(engine, segmentation).is_partition


class TestHBCutsProperties:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        rows=st.integers(min_value=50, max_value=400),
        cardinality=st.integers(min_value=2, max_value=6),
    )
    def test_every_answer_is_a_valid_partition_sorted_by_entropy(self, seed, rows, cardinality):
        rng = np.random.default_rng(seed)
        table = Table.from_dict(
            {
                "a": rng.integers(0, cardinality, size=rows).tolist(),
                "b": rng.integers(0, 100, size=rows).tolist(),
                "c": [f"v{int(v)}" for v in rng.integers(0, cardinality, size=rows)],
            }
        )
        engine = QueryEngine(table)
        result = HBCuts(HBCutsConfig(max_depth=8)).run(engine, SDLQuery.over(["a", "b", "c"]))
        entropies = [entropy(segmentation) for segmentation in result]
        assert entropies == sorted(entropies, reverse=True)
        for segmentation in result:
            assert segmentation.depth <= 8
            assert check_partition(engine, segmentation).is_partition
            assert sum(segmentation.counts) == rows
