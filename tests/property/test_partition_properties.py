"""Property-based tests: the partition invariants of CUT, COMPOSE and product.

Whatever data the generators produce, the primitives must return valid
partitions of their context (Definition 3): pairwise-disjoint queries whose
union covers the context, with counts summing to the context cardinality.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import compose, cut_query, cut_segmentation, product
from repro.errors import CannotCutError
from repro.sdl import SDLQuery, check_partition
from repro.storage import QueryEngine, Table

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def mixed_tables(draw):
    """Small tables with one numeric and one nominal column, arbitrary content."""
    size = draw(st.integers(min_value=4, max_value=60))
    numeric = draw(
        st.lists(st.integers(min_value=-1000, max_value=1000), min_size=size, max_size=size)
    )
    labels = draw(
        st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=size, max_size=size)
    )
    return Table.from_dict({"x": numeric, "t": labels}, name="random")


@st.composite
def numeric_tables(draw):
    size = draw(st.integers(min_value=4, max_value=80))
    first = draw(
        st.lists(st.integers(min_value=0, max_value=500), min_size=size, max_size=size)
    )
    second = draw(
        st.lists(st.integers(min_value=0, max_value=500), min_size=size, max_size=size)
    )
    return Table.from_dict({"x": first, "y": second}, name="random")


class TestCutInvariants:
    @_SETTINGS
    @given(table=mixed_tables(), attribute=st.sampled_from(["x", "t"]))
    def test_cut_query_partitions_the_context(self, table, attribute):
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "t"])
        try:
            segmentation = cut_query(engine, context, attribute)
        except CannotCutError:
            return  # degenerate column: nothing to check
        assert segmentation.depth == 2
        assert sum(segmentation.counts) == table.num_rows
        assert check_partition(engine, segmentation).is_partition
        assert all(count > 0 for count in segmentation.counts)

    @_SETTINGS
    @given(table=numeric_tables())
    def test_repeated_cuts_remain_partitions(self, table):
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "y"])
        try:
            segmentation = cut_query(engine, context, "x")
            segmentation = cut_segmentation(engine, segmentation, "y")
            segmentation = cut_segmentation(engine, segmentation, "x")
        except CannotCutError:
            return
        assert check_partition(engine, segmentation).is_partition
        assert sum(segmentation.counts) == table.num_rows


class TestComposeAndProductInvariants:
    @_SETTINGS
    @given(table=numeric_tables())
    def test_compose_partitions_the_context(self, table):
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "y"])
        try:
            first = cut_query(engine, context, "x")
            second = cut_query(engine, context, "y")
        except CannotCutError:
            return
        composed = compose(engine, first, second)
        assert check_partition(engine, composed).is_partition
        assert sum(composed.counts) == table.num_rows
        assert set(composed.cut_attributes) == {"x", "y"}

    @_SETTINGS
    @given(table=numeric_tables())
    def test_product_partitions_and_never_exceeds_kl_cells(self, table):
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "y"])
        try:
            first = cut_query(engine, context, "x")
            second = cut_query(engine, context, "y")
        except CannotCutError:
            return
        cells = product(engine, first, second)
        assert cells.depth <= first.depth * second.depth
        assert sum(cells.counts) == table.num_rows
        assert check_partition(engine, cells).is_partition

    @_SETTINGS
    @given(table=mixed_tables())
    def test_product_counts_equal_compose_counts_total(self, table):
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "t"])
        try:
            first = cut_query(engine, context, "x")
            second = cut_query(engine, context, "t")
        except CannotCutError:
            return
        composed = compose(engine, first, second)
        cells = product(engine, first, second)
        assert sum(composed.counts) == sum(cells.counts) == table.num_rows


class TestConstrainedContexts:
    @_SETTINGS
    @given(
        table=numeric_tables(),
        low=st.integers(min_value=0, max_value=250),
        span=st.integers(min_value=10, max_value=250),
    )
    def test_cut_inside_a_range_context(self, table, low, span):
        from repro.sdl import NoConstraint, RangePredicate

        engine = QueryEngine(table)
        context = SDLQuery([RangePredicate("x", low, low + span), NoConstraint("y")])
        context_count = engine.count(context)
        try:
            segmentation = cut_query(engine, context, "y")
        except CannotCutError:
            return
        assert segmentation.context_count == context_count
        assert sum(segmentation.counts) == context_count
        assert check_partition(engine, segmentation).is_partition
