"""Property-based tests: SDL and SQL text round-trips.

The query/predicate generators live in ``sdl_strategies.py``, shared
with the wire-codec round-trip suite (``test_wire_roundtrip.py``).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from sdl_strategies import queries, sql_friendly_queries

from repro.sdl import (
    RangePredicate,
    SetPredicate,
    parse_query,
    query_signature,
)
from repro.storage import parse_where, query_to_where

_SETTINGS = settings(max_examples=120, deadline=None)


class TestSDLRoundTrip:
    @_SETTINGS
    @given(query=queries())
    def test_parse_of_to_sdl_is_identity(self, query):
        assert parse_query(query.to_sdl()) == query

    @_SETTINGS
    @given(query=queries())
    def test_signature_is_stable_across_round_trip(self, query):
        assert query_signature(parse_query(query.to_sdl())) == query_signature(query)

    @_SETTINGS
    @given(query=queries(), which=st.integers(min_value=0, max_value=2))
    def test_round_trip_preserves_row_semantics(self, query, which):
        reparsed = parse_query(query.to_sdl())
        # Build a probe row with type-appropriate values derived from the
        # predicates themselves (bounds for ranges, members for sets).
        row = {}
        for predicate in query.predicates:
            if isinstance(predicate, RangePredicate):
                candidates = [predicate.low, predicate.high, predicate.high + 1]
            elif isinstance(predicate, SetPredicate):
                member = next(iter(predicate.sorted_values))
                candidates = [member, member, "certainly-not-a-member"]
            else:
                candidates = [0, "anything", None]
            row[predicate.attribute] = candidates[which]
        assert query.matches_row(row) == reparsed.matches_row(row)


class TestSQLRoundTrip:
    @_SETTINGS
    @given(query=sql_friendly_queries())
    def test_where_clause_round_trip_preserves_constraints(self, query):
        reparsed = parse_where(query_to_where(query))
        for attribute in query.constrained_attributes:
            assert reparsed.predicate_for(attribute) == query.predicate_for(attribute)
