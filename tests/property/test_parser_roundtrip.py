"""Property-based tests: SDL and SQL text round-trips."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sdl import (
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
    parse_query,
    query_signature,
)
from repro.storage import parse_where, query_to_where

_SETTINGS = settings(max_examples=120, deadline=None)

_ATTRIBUTE_NAMES = st.sampled_from(
    ["tonnage", "type_of_boat", "departure_harbour", "year", "magnitude", "col_1", "a"]
)

_SAFE_TEXT = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_- "),
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)

_NUMBERS = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False).map(
        lambda value: round(value, 4)
    ),
)


@st.composite
def range_predicates(draw):
    attribute = draw(_ATTRIBUTE_NAMES)
    first = draw(_NUMBERS)
    second = draw(_NUMBERS)
    low, high = min(first, second), max(first, second)
    include_low = draw(st.booleans())
    include_high = draw(st.booleans())
    if low == high:
        include_low = include_high = True
    return RangePredicate(
        attribute, low=low, high=high, include_low=include_low, include_high=include_high
    )


@st.composite
def set_predicates(draw):
    attribute = draw(_ATTRIBUTE_NAMES)
    values = draw(
        st.one_of(
            st.sets(_SAFE_TEXT, min_size=1, max_size=5),
            st.sets(st.integers(min_value=-100, max_value=100), min_size=1, max_size=5),
        )
    )
    return SetPredicate(attribute, frozenset(values))


@st.composite
def queries(draw):
    attributes = draw(
        st.lists(_ATTRIBUTE_NAMES, min_size=1, max_size=5, unique=True)
    )
    predicates = []
    for attribute in attributes:
        kind = draw(st.sampled_from(["none", "range", "set"]))
        if kind == "none":
            predicates.append(NoConstraint(attribute))
        elif kind == "range":
            predicate = draw(range_predicates())
            predicates.append(
                RangePredicate(
                    attribute,
                    low=predicate.low,
                    high=predicate.high,
                    include_low=predicate.include_low,
                    include_high=predicate.include_high,
                )
            )
        else:
            predicate = draw(set_predicates())
            predicates.append(SetPredicate(attribute, predicate.values))
    return SDLQuery(predicates)


class TestSDLRoundTrip:
    @_SETTINGS
    @given(query=queries())
    def test_parse_of_to_sdl_is_identity(self, query):
        assert parse_query(query.to_sdl()) == query

    @_SETTINGS
    @given(query=queries())
    def test_signature_is_stable_across_round_trip(self, query):
        assert query_signature(parse_query(query.to_sdl())) == query_signature(query)

    @_SETTINGS
    @given(query=queries(), which=st.integers(min_value=0, max_value=2))
    def test_round_trip_preserves_row_semantics(self, query, which):
        reparsed = parse_query(query.to_sdl())
        # Build a probe row with type-appropriate values derived from the
        # predicates themselves (bounds for ranges, members for sets).
        row = {}
        for predicate in query.predicates:
            if isinstance(predicate, RangePredicate):
                candidates = [predicate.low, predicate.high, predicate.high + 1]
            elif isinstance(predicate, SetPredicate):
                member = next(iter(predicate.sorted_values))
                candidates = [member, member, "certainly-not-a-member"]
            else:
                candidates = [0, "anything", None]
            row[predicate.attribute] = candidates[which]
        assert query.matches_row(row) == reparsed.matches_row(row)


@st.composite
def sql_friendly_queries(draw):
    """Queries whose predicates survive a WHERE-clause round trip.

    The WHERE grammar loses half-open bounds (they become >=/< pairs, which
    parse back identically) but cannot express string ranges, so those are
    excluded here.
    """
    attributes = draw(st.lists(_ATTRIBUTE_NAMES, min_size=1, max_size=4, unique=True))
    predicates = []
    for attribute in attributes:
        kind = draw(st.sampled_from(["range", "set"]))
        if kind == "range":
            first = draw(st.integers(min_value=-1000, max_value=1000))
            second = draw(st.integers(min_value=-1000, max_value=1000))
            predicates.append(
                RangePredicate(attribute, min(first, second), max(first, second))
            )
        else:
            values = draw(st.sets(_SAFE_TEXT.filter(lambda s: "'" not in s),
                                  min_size=1, max_size=4))
            predicates.append(SetPredicate(attribute, frozenset(values)))
    return SDLQuery(predicates)


class TestSQLRoundTrip:
    @_SETTINGS
    @given(query=sql_friendly_queries())
    def test_where_clause_round_trip_preserves_constraints(self, query):
        reparsed = parse_where(query_to_where(query))
        for attribute in query.constrained_attributes:
            assert reparsed.predicate_for(attribute) == query.predicate_for(attribute)
