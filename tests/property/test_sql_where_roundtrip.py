"""Property tests: ``parse_where(query_to_where(q))`` reproduces ``q``.

The PR 2 satellite: the SDL → WHERE → SDL round trip must be the identity
across range, set, exclusion and no-constraint predicates — this is what
lets :class:`repro.backends.sqlite.SQLiteBackend` treat the SQL glue as a
lossless wire format.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
    query_signature,
)
from repro.storage import parse_where, query_to_where

_SETTINGS = settings(max_examples=150, deadline=None)

_ATTRIBUTES = st.sampled_from(
    ["tonnage", "type_of_boat", "departure_harbour", "built", "col_1", "between"]
)

_TEXT_VALUES = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="_-' "),
    min_size=1,
    max_size=10,
).map(str.strip).filter(bool)

_SET_VALUES = st.one_of(
    st.sets(_TEXT_VALUES, min_size=1, max_size=4),
    st.sets(st.integers(min_value=-500, max_value=500), min_size=1, max_size=4),
)


@st.composite
def predicates(draw, attribute):
    kind = draw(st.sampled_from(["none", "range", "one_sided", "set", "exclusion"]))
    if kind == "none":
        return NoConstraint(attribute)
    if kind == "range":
        first = draw(st.integers(min_value=-10_000, max_value=10_000))
        second = draw(st.integers(min_value=-10_000, max_value=10_000))
        low, high = min(first, second), max(first, second)
        include_high = draw(st.booleans()) if low != high else True
        return RangePredicate(attribute, low, high, include_high=include_high)
    if kind == "one_sided":
        bound = draw(st.integers(min_value=-10_000, max_value=10_000))
        direction = draw(st.sampled_from(["<", "<=", ">", ">="]))
        if direction in ("<", "<="):
            return RangePredicate(
                attribute, float("-inf"), bound, include_high=direction == "<="
            )
        return RangePredicate(
            attribute, bound, float("inf"), include_low=direction == ">="
        )
    values = frozenset(draw(_SET_VALUES))
    if kind == "set":
        return SetPredicate(attribute, values)
    return ExclusionPredicate(attribute, values)


@st.composite
def queries(draw):
    attributes = draw(st.lists(_ATTRIBUTES, min_size=1, max_size=4, unique=True))
    return SDLQuery([draw(predicates(attribute)) for attribute in attributes])


class TestWhereRoundTrip:
    @_SETTINGS
    @given(query=queries())
    def test_round_trip_is_identity(self, query):
        """``parse_where ∘ query_to_where`` reproduces the constrained part.

        Unconstrained predicates are dropped by the WHERE rendering (a
        missing column constrains nothing), so equality is asserted on
        the constrained projection of the original query.
        """
        constrained = SDLQuery(p for p in query.predicates if p.is_constrained)
        if not constrained.predicates:
            assert query_to_where(query) == "TRUE"
            return
        assert parse_where(query_to_where(query)) == constrained

    @_SETTINGS
    @given(query=queries())
    def test_signature_stable_across_round_trip(self, query):
        constrained = SDLQuery(p for p in query.predicates if p.is_constrained)
        if not constrained.predicates:
            return
        reparsed = parse_where(query_to_where(query))
        assert query_signature(reparsed) == query_signature(constrained)

    @_SETTINGS
    @given(query=queries(), which=st.integers(min_value=0, max_value=1))
    def test_row_semantics_preserved(self, query, which):
        constrained = SDLQuery(p for p in query.predicates if p.is_constrained)
        if not constrained.predicates:
            return
        reparsed = parse_where(query_to_where(query))
        row = {}
        for predicate in constrained.predicates:
            if isinstance(predicate, RangePredicate):
                probes = [predicate.low, predicate.high]
            elif isinstance(predicate, (SetPredicate, ExclusionPredicate)):
                member = next(iter(predicate.sorted_values))
                probes = [member, "certainly-not-a-member"]
            else:  # pragma: no cover - constrained projection excludes these
                probes = [0, 1]
            probe = probes[which]
            if isinstance(probe, float) and probe in (float("inf"), float("-inf")):
                probe = 0
            row[predicate.attribute] = probe
        assert constrained.matches_row(row) == reparsed.matches_row(row)
