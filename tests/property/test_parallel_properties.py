"""Property-based tests: partitioned execution never changes an answer.

For randomized tables and queries, counts, medians and the full ranked
``hb_cuts`` output must be identical to the unpartitioned sequential
engine for every ``partitions × workers`` combination tested — including
``partitions > rows`` (trailing empty shards).
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.backends.parallel import ParallelEngine
from repro.backends.pool import ExecutorPool
from repro.core import HBCuts, HBCutsConfig
from repro.errors import EmptyColumnError, TypeMismatchError
from repro.sdl import RangePredicate, SDLQuery, SetPredicate
from repro.storage import PartitionedTable, QueryEngine, Table
from repro.storage.expression import query_mask

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every combination exercised per example; partitions of 97 exceed the
#: largest generated table, so empty shards are always covered.
_GRID = ((1, 1), (2, 1), (3, 2), (4, 4), (97, 2))

#: One pool per worker count, shared across examples (pools are shared by
#: design; creating thousands of executors would only slow the suite).
_POOLS = {workers: ExecutorPool(workers) for workers in (1, 2, 4)}


@st.composite
def tables(draw):
    size = draw(st.integers(min_value=1, max_value=60))
    numeric = draw(
        st.lists(
            st.one_of(st.integers(min_value=-50, max_value=50), st.none()),
            min_size=size,
            max_size=size,
        )
    )
    labels = draw(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=size, max_size=size)
    )
    return Table.from_dict({"x": numeric, "t": labels}, name="random")


@st.composite
def queries(draw):
    low = draw(st.integers(min_value=-60, max_value=60))
    span = draw(st.integers(min_value=0, max_value=80))
    values = draw(st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1))
    predicates = [RangePredicate("x", low, low + span)]
    if draw(st.booleans()):
        predicates.append(SetPredicate("t", frozenset(values)))
    return SDLQuery(predicates)


class TestPartitionedResultParity:
    @_SETTINGS
    @given(table=tables(), query=queries())
    def test_counts_and_masks_identical(self, table, query):
        expected_mask = query_mask(table, query)
        expected_count = int(np.count_nonzero(expected_mask))
        for partitions, workers in _GRID:
            partitioned = PartitionedTable(table, partitions)
            pool = _POOLS[workers]
            assert np.array_equal(
                partitioned.query_mask(query, pool.map), expected_mask
            )
            assert partitioned.count(query, pool.map) == expected_count
            engine = QueryEngine(table, partitions=partitions, pool=pool)
            assert engine.count(query) == expected_count

    @_SETTINGS
    @given(table=tables(), query=queries())
    def test_medians_identical(self, table, query):
        baseline = QueryEngine(table)
        # An all-None "numeric" column is inferred as nominal, so the
        # sequential median raises TypeMismatchError; an empty selection
        # raises EmptyColumnError.  Either way the partitioned path must
        # fail identically — errors are part of the parity contract.
        expected_error = None
        try:
            expected = baseline.median("x", query)
        except (EmptyColumnError, TypeMismatchError) as exc:
            expected = None
            expected_error = type(exc)
        for partitions, workers in _GRID:
            engine = QueryEngine(table, partitions=partitions, pool=_POOLS[workers])
            if expected_error is not None:
                with pytest.raises(expected_error):
                    engine.median("x", query)
            else:
                assert engine.median("x", query) == expected

    @_SETTINGS
    @given(table=tables())
    def test_full_hb_cuts_output_identical(self, table):
        context = SDLQuery.over(["x", "t"])
        baseline = HBCuts(HBCutsConfig()).run(QueryEngine(table), context)

        def fingerprint(result):
            return (
                [
                    (
                        segmentation.cut_attributes,
                        tuple(segmentation.counts),
                        tuple(s.query.to_sdl() for s in segmentation.segments),
                    )
                    for segmentation in result.segmentations
                ],
                result.trace.indep_values,
                result.trace.compositions,
                result.trace.stop_reason,
            )

        expected = fingerprint(baseline)
        for partitions, workers in _GRID:
            pool = _POOLS[workers]
            engine = ParallelEngine(table, partitions=partitions, pool=pool)
            result = HBCuts(HBCutsConfig(), pool=pool).run(engine, context)
            assert fingerprint(result) == expected
