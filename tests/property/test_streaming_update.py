"""Property tests: P² sketches absorbing ingested batches stay accurate.

The live-data satellite of the streaming module: a
:class:`~repro.storage.streaming.StreamingMedianSketch` fed through
``update_batch`` (the row-mapping form an ingest produces) must track the
exact median of everything appended so far — exactly for tiny streams,
and within a quantile-rank tolerance for long ones, *at every batch
boundary*, not just at the end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.streaming import StreamingMedianSketch
from repro.workloads import batched, generate_voc

#: The estimate must land within this central quantile band of the data
#: consumed so far (0.5 is the exact median's rank).
_RANK_BAND = (0.35, 0.65)


def _rows(values):
    return [{"x": value} for value in values]


class TestUpdateBatchSemantics:
    def test_counts_consumed_and_skips_missing(self):
        sketch = StreamingMedianSketch()
        consumed = sketch.update_batch(
            [{"x": 1.0}, {"x": None}, {"y": 3.0}, {"x": 2.0}], "x"
        )
        assert consumed == 2
        assert sketch.count == 2

    def test_all_missing_forms_are_skipped(self):
        # NaN and empty strings are missing per the column store's
        # semantics; they must not poison (or crash) the estimator.
        sketch = StreamingMedianSketch()
        consumed = sketch.update_batch(
            [{"x": float("nan")}, {"x": ""}, {"x": 5.0}], "x"
        )
        assert consumed == 1
        assert sketch.median() == 5.0

    def test_dates_are_consumed_as_ordinals(self):
        import datetime as dt

        sketch = StreamingMedianSketch()
        sketch.update_batch(
            _rows(
                [dt.date(1700, 1, 1), dt.date(1700, 1, 9), dt.date(1700, 1, 3)]
            ),
            "x",
        )
        assert sketch.median() == dt.date(1700, 1, 3).toordinal()

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=5))
    def test_exact_for_tiny_streams(self, values):
        sketch = StreamingMedianSketch()
        sketch.update_batch(_rows(values), "x")
        ordered = sorted(values)
        position = int(round(0.5 * (len(ordered) - 1)))
        assert sketch.median() == ordered[position]

    @given(
        st.lists(
            st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=40),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50)
    def test_estimate_stays_within_the_observed_range(self, batches):
        sketch = StreamingMedianSketch()
        seen = []
        for values in batches:
            sketch.update_batch(_rows(values), "x")
            seen.extend(values)
            assert min(seen) <= sketch.median() <= max(seen)


class TestToleranceAcrossAppends:
    @pytest.mark.parametrize(
        "make_values",
        [
            lambda rng, n: rng.uniform(0, 1000, size=n),
            lambda rng, n: rng.normal(100, 15, size=n),
            lambda rng, n: rng.exponential(50, size=n),
        ],
        ids=["uniform", "gaussian", "exponential"],
    )
    @pytest.mark.parametrize("batch_size", [64, 333])
    def test_rank_of_estimate_tracks_the_median(self, make_values, batch_size):
        rng = np.random.default_rng(7)
        values = make_values(rng, 8000)
        sketch = StreamingMedianSketch()
        consumed = []
        for start in range(0, values.size, batch_size):
            batch = values[start:start + batch_size]
            sketch.update_batch(_rows(batch.tolist()), "x")
            consumed.extend(batch.tolist())
            if len(consumed) < 100:
                continue
            # Where does the estimate fall in the data seen so far?
            rank = float(np.mean(np.asarray(consumed) <= sketch.median()))
            low, high = _RANK_BAND
            assert low <= rank <= high, (
                f"after {len(consumed)} rows the estimate sits at rank "
                f"{rank:.3f}, outside [{low}, {high}]"
            )
        exact = float(np.median(values))
        assert sketch.median() == pytest.approx(exact, rel=0.05, abs=1.0)

class TestMergedSketchTolerance:
    """Merged streaming sketches honour the advertised rank tolerance."""

    @given(
        st.lists(
            st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400),
            min_size=2,
            max_size=5,
        ),
        st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9]),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_quantile_error_within_rank_tolerance(self, shards, q):
        sketches = []
        for shard in shards:
            sketch = StreamingMedianSketch(budget=32)
            sketch.update_batch(_rows(shard), "x")
            sketches.append(sketch)
        merged = sketches[0]
        for sketch in sketches[1:]:
            merged = merged.merge(sketch)
        combined = np.sort(np.concatenate([np.asarray(s) for s in shards]))
        assert merged.count == combined.size
        estimate = merged.quantile(q)
        # The estimate is always one of the observed values, and its rank
        # sits within the advertised tolerance of the target rank.
        target = round(q * (combined.size - 1))
        low = np.searchsorted(combined, estimate, side="left")
        high = np.searchsorted(combined, estimate, side="right") - 1
        distance = max(0, int(low - target), int(target - high))
        tolerance = merged.rank_tolerance() * combined.size
        assert distance <= tolerance, (
            f"quantile {q} estimate {estimate} sits {distance} ranks from "
            f"target, beyond the advertised {tolerance:.1f}"
        )

    def test_merge_preserves_counts_and_accepts_further_updates(self):
        left = StreamingMedianSketch()
        right = StreamingMedianSketch()
        left.update_batch(_rows([1.0, 2.0, 3.0]), "x")
        right.update_batch(_rows([10.0, 20.0]), "x")
        merged = left.merge(right)
        assert merged.count == 5
        assert 1.0 <= merged.median() <= 20.0
        merged.update(30.0)
        assert merged.count == 6


class TestLiveTableTracking:
    def test_tracks_a_live_table_column_across_ingest(self):
        # VOC tonnage is multi-modal (one Gaussian per boat type): value
        # error is a poor metric in the density valley around the median,
        # but the estimate's *rank* must stay tight at every batch.
        table = generate_voc(rows=2000, seed=31)
        sketch = StreamingMedianSketch()
        seen = []
        for rows in batched(table, 250):
            sketch.update_batch(rows, "tonnage")
            seen.extend(
                row["tonnage"] for row in rows if row["tonnage"] is not None
            )
            rank = float(np.mean(np.asarray(seen) <= sketch.median()))
            low, high = _RANK_BAND
            assert low <= rank <= high
        assert sketch.count == len(seen)
