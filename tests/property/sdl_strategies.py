"""Shared Hypothesis strategies for SDL values, predicates and queries.

Extracted from ``test_parser_roundtrip.py`` so the SDL-text round-trip
tests and the wire-codec round-trip tests generate from the same value
domain.  The ``wire_*`` strategies extend the text-safe domain with
everything the JSON codec must carry losslessly but SDL text cannot
express faithfully (dates, booleans, arbitrary unicode).
"""

from __future__ import annotations

import datetime

import hypothesis.strategies as st

from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
)

ATTRIBUTE_NAMES = st.sampled_from(
    ["tonnage", "type_of_boat", "departure_harbour", "year", "magnitude", "col_1", "a"]
)

SAFE_TEXT = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_- "),
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)

NUMBERS = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False).map(
        lambda value: round(value, 4)
    ),
)

#: Set members of the full wire value domain: unicode strings, numbers,
#: booleans and dates (everything the substrate's columns can hold).
WIRE_SET_VALUES = st.one_of(
    st.text(min_size=0, max_size=16),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False),
    st.booleans(),
    st.dates(),
)

#: Orderable bounds for wire range predicates (dates included).
WIRE_RANGE_BOUNDS = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.dates(),
)


@st.composite
def range_predicates(draw, bounds=NUMBERS):
    attribute = draw(ATTRIBUTE_NAMES)
    first = draw(bounds)
    second = draw(bounds)
    if isinstance(first, datetime.date) != isinstance(second, datetime.date):
        second = first  # mixed date/number bounds are not comparable
    low, high = min(first, second), max(first, second)
    include_low = draw(st.booleans())
    include_high = draw(st.booleans())
    if low == high:
        include_low = include_high = True
    return RangePredicate(
        attribute, low=low, high=high, include_low=include_low, include_high=include_high
    )


@st.composite
def set_predicates(draw, values=None):
    attribute = draw(ATTRIBUTE_NAMES)
    if values is None:
        drawn = draw(
            st.one_of(
                st.sets(SAFE_TEXT, min_size=1, max_size=5),
                st.sets(st.integers(min_value=-100, max_value=100), min_size=1, max_size=5),
            )
        )
    else:
        drawn = draw(st.sets(values, min_size=1, max_size=5))
    return SetPredicate(attribute, frozenset(drawn))


@st.composite
def exclusion_predicates(draw, values=WIRE_SET_VALUES):
    attribute = draw(ATTRIBUTE_NAMES)
    drawn = draw(st.sets(values, min_size=1, max_size=5))
    return ExclusionPredicate(attribute, frozenset(drawn))


@st.composite
def queries(draw):
    """SDL-text-safe queries (the historical parser round-trip domain)."""
    attributes = draw(
        st.lists(ATTRIBUTE_NAMES, min_size=1, max_size=5, unique=True)
    )
    predicates = []
    for attribute in attributes:
        kind = draw(st.sampled_from(["none", "range", "set"]))
        if kind == "none":
            predicates.append(NoConstraint(attribute))
        elif kind == "range":
            predicate = draw(range_predicates())
            predicates.append(
                RangePredicate(
                    attribute,
                    low=predicate.low,
                    high=predicate.high,
                    include_low=predicate.include_low,
                    include_high=predicate.include_high,
                )
            )
        else:
            predicate = draw(set_predicates())
            predicates.append(SetPredicate(attribute, predicate.values))
    return SDLQuery(predicates)


@st.composite
def wire_queries(draw):
    """Queries over the full wire value domain (unicode, dates, booleans).

    Wider than :func:`queries`: exclusion predicates are included and set
    members / range bounds range over everything the JSON codec must
    round-trip, not just what SDL text can express.
    """
    attributes = draw(
        st.lists(ATTRIBUTE_NAMES, min_size=1, max_size=5, unique=True)
    )
    predicates = []
    for attribute in attributes:
        kind = draw(st.sampled_from(["none", "range", "set", "exclusion"]))
        if kind == "none":
            predicates.append(NoConstraint(attribute))
        elif kind == "range":
            drawn = draw(range_predicates(bounds=WIRE_RANGE_BOUNDS))
            predicates.append(
                RangePredicate(
                    attribute,
                    low=drawn.low,
                    high=drawn.high,
                    include_low=drawn.include_low,
                    include_high=drawn.include_high,
                )
            )
        elif kind == "set":
            drawn = draw(set_predicates(values=WIRE_SET_VALUES))
            predicates.append(SetPredicate(attribute, drawn.values))
        else:
            drawn = draw(exclusion_predicates())
            predicates.append(ExclusionPredicate(attribute, drawn.values))
    return SDLQuery(predicates)


@st.composite
def sql_friendly_queries(draw):
    """Queries whose predicates survive a WHERE-clause round trip.

    The WHERE grammar loses half-open bounds (they become >=/< pairs, which
    parse back identically) but cannot express string ranges, so those are
    excluded here.
    """
    attributes = draw(st.lists(ATTRIBUTE_NAMES, min_size=1, max_size=4, unique=True))
    predicates = []
    for attribute in attributes:
        kind = draw(st.sampled_from(["range", "set"]))
        if kind == "range":
            first = draw(st.integers(min_value=-1000, max_value=1000))
            second = draw(st.integers(min_value=-1000, max_value=1000))
            predicates.append(
                RangePredicate(attribute, min(first, second), max(first, second))
            )
        else:
            values = draw(st.sets(SAFE_TEXT.filter(lambda s: "'" not in s),
                                  min_size=1, max_size=4))
            predicates.append(SetPredicate(attribute, frozenset(values)))
    return SDLQuery(predicates)
