"""Property-based tests: entropy, balance and INDEP invariants (Section 3, Prop. 1)."""

from __future__ import annotations

import math

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    balance,
    cut_query,
    entropy,
    indep,
    indep_from_table,
    max_entropy,
    mutual_information,
    score_segmentation,
)
from repro.errors import CannotCutError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, Segment, Segmentation
from repro.storage import QueryEngine, Table

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _segmentation_from_counts(counts) -> Segmentation:
    context = SDLQuery([NoConstraint("x")])
    segments = []
    low = 0
    for count in counts:
        segments.append(Segment(context.refine(RangePredicate("x", low, low + 9)), count))
        low += 10
    return Segmentation(context, segments, cut_attributes=("x",))


counts_strategy = st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=12)


class TestEntropyBounds:
    @_SETTINGS
    @given(counts=counts_strategy)
    def test_entropy_within_zero_and_log_m(self, counts):
        if sum(counts) == 0:
            return
        segmentation = _segmentation_from_counts(counts)
        value = entropy(segmentation)
        assert 0.0 <= value <= max_entropy(segmentation) + 1e-9

    @_SETTINGS
    @given(counts=counts_strategy)
    def test_balance_within_unit_interval(self, counts):
        if sum(counts) == 0:
            return
        segmentation = _segmentation_from_counts(counts)
        assert 0.0 <= balance(segmentation) <= 1.0 + 1e-9

    @_SETTINGS
    @given(pieces=st.integers(min_value=1, max_value=12),
           size=st.integers(min_value=1, max_value=500))
    def test_perfectly_balanced_segmentation_reaches_log_m(self, pieces, size):
        segmentation = _segmentation_from_counts([size] * pieces)
        assert entropy(segmentation) == pytest.approx(math.log(pieces), abs=1e-9)

    @_SETTINGS
    @given(counts=counts_strategy, extra=st.integers(min_value=1, max_value=1000))
    def test_adding_an_empty_piece_never_changes_entropy(self, counts, extra):
        if sum(counts) == 0:
            return
        base = _segmentation_from_counts(counts)
        padded = _segmentation_from_counts(counts + [0])
        assert entropy(padded) == pytest.approx(entropy(base))

    @_SETTINGS
    @given(counts=counts_strategy)
    def test_scores_are_internally_consistent(self, counts):
        if sum(counts) == 0:
            return
        segmentation = _segmentation_from_counts(counts)
        scores = score_segmentation(segmentation)
        assert scores.entropy == pytest.approx(entropy(segmentation))
        assert scores.depth == len(counts)
        assert scores.covered_fraction == pytest.approx(1.0)


class TestIndepTableProperties:
    tables_strategy = st.lists(
        st.lists(st.integers(min_value=0, max_value=500), min_size=2, max_size=5),
        min_size=2,
        max_size=5,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1)

    @_SETTINGS
    @given(rows=tables_strategy)
    def test_indep_between_zero_and_one(self, rows):
        table = np.array(rows, dtype=float)
        value = indep_from_table(table)
        assert 0.0 <= value <= 1.0 + 1e-9

    @_SETTINGS
    @given(rows=tables_strategy)
    def test_mutual_information_non_negative(self, rows):
        assert mutual_information(np.array(rows, dtype=float)) >= -1e-12

    @_SETTINGS
    @given(
        row_weights=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=4),
        column_weights=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=4),
        scale=st.integers(min_value=1, max_value=20),
    )
    def test_outer_product_tables_are_independent(self, row_weights, column_weights, scale):
        # A contingency table that factors into its marginals describes
        # independent variables: INDEP must be exactly 1.
        table = np.outer(row_weights, column_weights).astype(float) * scale
        assert indep_from_table(table) == pytest.approx(1.0, abs=1e-9)
        assert mutual_information(table) == pytest.approx(0.0, abs=1e-9)


class TestProposition1OnData:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=200, max_value=1500),
    )
    def test_independent_columns_have_indep_close_to_one(self, seed, rows):
        rng = np.random.default_rng(seed)
        table = Table.from_dict(
            {
                "x": rng.integers(0, 4, size=rows).tolist(),
                "y": rng.integers(0, 4, size=rows).tolist(),
            }
        )
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "y"])
        try:
            first = cut_query(engine, context, "x")
            second = cut_query(engine, context, "y")
        except CannotCutError:
            return
        value = indep(engine, first, second)
        # Finite-sample noise keeps it slightly below 1, never above.
        assert 0.9 <= value <= 1.0 + 1e-9

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_copied_column_has_indep_one_half(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2, size=400).tolist()
        table = Table.from_dict({"x": values, "y": list(values)})
        engine = QueryEngine(table)
        context = SDLQuery.over(["x", "y"])
        try:
            first = cut_query(engine, context, "x")
            second = cut_query(engine, context, "y")
        except CannotCutError:
            return
        assert indep(engine, first, second) == pytest.approx(0.5, abs=0.01)
