"""Property-based tests: lossless wire-codec round-trips.

The acceptance bar of the wire API: ``from_wire(to_wire(x)) == x`` — and
the same through the JSON *text* form ``loads(dumps(x))`` — for SDL
queries over the full value domain (unicode, dates, booleans, floats),
for advice payloads, and for request/response envelopes.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from sdl_strategies import WIRE_SET_VALUES, queries, wire_queries

from repro.api.codec import dumps, from_wire, loads, to_wire
from repro.api.protocol import Request, Response
from repro.core.advisor import Advice, RankedAnswer
from repro.core.hbcuts import HBCutsTrace
from repro.core.metrics import score_segmentation
from repro.sdl.segmentation import Segment, Segmentation

_SETTINGS = settings(max_examples=120, deadline=None)

#: Parameter values an envelope may carry: scalars of the full wire
#: domain plus nested lists and string-keyed mappings of them.
_PARAM_VALUES = st.recursive(
    st.one_of(st.none(), WIRE_SET_VALUES),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=8,
)


def _round_trip(obj):
    structural = from_wire(to_wire(obj))
    textual = loads(dumps(obj))
    assert structural == obj
    assert textual == obj
    return structural


class TestQueryRoundTrip:
    @_SETTINGS
    @given(query=queries())
    def test_sdl_text_domain_round_trips(self, query):
        _round_trip(query)

    @_SETTINGS
    @given(query=wire_queries())
    def test_full_wire_domain_round_trips(self, query):
        # Wider than SDL text: dates, booleans, arbitrary unicode and
        # exclusion predicates all survive the JSON codec losslessly.
        _round_trip(query)

    @_SETTINGS
    @given(query=wire_queries())
    def test_wire_text_is_deterministic(self, query):
        assert dumps(query) == dumps(loads(dumps(query)))


@st.composite
def segmentations(draw):
    context = draw(wire_queries())
    counts = draw(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6))
    segments = [
        Segment(draw(wire_queries()), count) for count in counts
    ]
    return Segmentation(
        context,
        segments,
        context_count=sum(counts),
        cut_attributes=tuple(draw(st.lists(st.sampled_from(["a", "b", "c"]), max_size=3))),
    )


@st.composite
def advice_payloads(draw):
    context = draw(wire_queries())
    answers = []
    for rank in range(draw(st.integers(min_value=0, max_value=3)) + 1):
        segmentation = draw(segmentations())
        answers.append(
            RankedAnswer(
                rank=rank + 1,
                segmentation=segmentation,
                scores=score_segmentation(segmentation),
                score=draw(st.floats(allow_nan=False)),
            )
        )
    trace = HBCutsTrace(
        initial_candidates=draw(st.lists(st.text(min_size=1, max_size=8), max_size=4)),
        uncuttable_attributes=draw(st.lists(st.text(min_size=1, max_size=8), max_size=3)),
        iterations=draw(st.integers(min_value=0, max_value=50)),
        pair_evaluations=draw(st.integers(min_value=0, max_value=500)),
        pair_cache_hits=draw(st.integers(min_value=0, max_value=500)),
        batched_passes=draw(st.integers(min_value=0, max_value=50)),
        parallel_rounds=draw(st.integers(min_value=0, max_value=50)),
        compositions=[
            tuple(composition)
            for composition in draw(
                st.lists(
                    st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=3),
                    max_size=3,
                )
            )
        ],
        indep_values=draw(
            st.lists(st.floats(min_value=0.0, max_value=1.5, allow_nan=False), max_size=4)
        ),
        stop_reason=draw(st.sampled_from(["indep", "depth", "exhausted", "no_candidates"])),
        runtime_seconds=draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False)),
    )
    return Advice(
        context=context,
        answers=answers,
        trace=trace,
        ranker_name=draw(st.text(min_size=1, max_size=12)),
        engine_operations=draw(
            st.dictionaries(
                st.text(min_size=1, max_size=10),
                st.integers(min_value=0, max_value=10**6),
                max_size=5,
            )
        ),
    )


class TestAdvicePayloadRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(advice=advice_payloads())
    def test_advice_round_trips(self, advice):
        restored = _round_trip(advice)
        # Spot-check deep structure beyond __eq__: scores and cut
        # attributes are reconstructed field-for-field.
        for original, decoded in zip(advice.answers, restored.answers):
            assert decoded.scores == original.scores
            assert decoded.segmentation.cut_attributes == original.segmentation.cut_attributes
            assert decoded.segmentation.counts == original.segmentation.counts


class TestEnvelopeRoundTrip:
    @_SETTINGS
    @given(
        op=st.sampled_from(["advise", "drill", "count", "stats", "describe"]),
        session=st.text(max_size=12),
        params=st.dictionaries(st.text(min_size=1, max_size=10), _PARAM_VALUES, max_size=5),
        request_id=st.text(min_size=1, max_size=16),
    )
    def test_request_envelopes_round_trip(self, op, session, params, request_id):
        request = Request(op=op, session=session, params=params, request_id=request_id)
        assert Request.from_wire(request.to_wire()) == request

    @_SETTINGS
    @given(
        ok=st.booleans(),
        result=_PARAM_VALUES,
        error_code=st.one_of(st.none(), st.sampled_from(["core_session", "protocol"])),
        elapsed=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    )
    def test_response_envelopes_round_trip(self, ok, result, error_code, elapsed):
        response = Response(
            ok=ok,
            op="advise",
            session="s",
            result=result,
            error=None if error_code is None else "boom",
            error_code=error_code,
            request_id="r-1",
            elapsed_seconds=elapsed,
        )
        assert Response.from_wire(response.to_wire()) == response

    @settings(max_examples=60, deadline=None)
    @given(query=wire_queries(), date_param=st.dates(), flag=st.booleans())
    def test_envelope_params_carry_domain_values(self, query, date_param, flag):
        # Unicode/date/bool parameter values survive the full envelope
        # encode→decode cycle together with a structured SDL context.
        request = Request(
            op="advise",
            session="sesión-✓",
            params={"context": query, "since": date_param, "exact": flag},
        )
        decoded = Request.from_wire(request.to_wire())
        assert decoded.params["context"] == query
        assert decoded.params["since"] == date_param
        assert decoded.params["exact"] is flag
