"""Unit tests for column and table profiling."""

from __future__ import annotations

import math

import pytest

from repro.sdl import RangePredicate, SDLQuery
from repro.storage import DataType, Table, profile_column, profile_table
from repro.storage.statistics import column_entropy


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        {
            "tonnage": [1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700],
            "type": ["fluit"] * 6 + ["jacht"] * 2,
            "constant": ["same"] * 8,
            "with_missing": [1, None, 3, None, 5, 6, 7, 8],
        },
        name="boats",
    )


class TestColumnEntropy:
    def test_uniform_distribution(self):
        assert column_entropy({"a": 5, "b": 5}) == pytest.approx(math.log(2))

    def test_single_value_is_zero(self):
        assert column_entropy({"a": 10}) == 0.0

    def test_empty_histogram_is_zero(self):
        assert column_entropy({}) == 0.0

    def test_skewed_lower_than_uniform(self):
        skewed = column_entropy({"a": 9, "b": 1})
        assert 0.0 < skewed < math.log(2)


class TestColumnProfile:
    def test_numeric_profile(self, table):
        profile = profile_column(table.column("tonnage"))
        assert profile.dtype is DataType.INT
        assert profile.minimum == 1000
        assert profile.maximum == 1700
        assert profile.median == pytest.approx(1350)
        assert profile.distinct_count == 8
        assert profile.quantiles[0.5] in (1300, 1400)

    def test_nominal_profile(self, table):
        profile = profile_column(table.column("type"))
        assert profile.top_values[0] == ("fluit", 6)
        assert profile.median is None
        assert not profile.quantiles

    def test_missing_counted(self, table):
        profile = profile_column(table.column("with_missing"))
        assert profile.missing_count == 2
        assert profile.valid_count == 6

    def test_constant_column_flagged(self, table):
        assert profile_column(table.column("constant")).is_constant

    def test_describe_runs(self, table):
        for name in table.column_names:
            assert name in profile_column(table.column(name)).describe()


class TestTableProfile:
    def test_profiles_every_column(self, table):
        profile = profile_table(table)
        assert set(profile.columns) == set(table.column_names)
        assert profile.row_count == 8

    def test_column_subset(self, table):
        profile = profile_table(table, columns=["tonnage"])
        assert list(profile.columns) == ["tonnage"]

    def test_cuttable_columns_excludes_constants(self, table):
        profile = profile_table(table)
        cuttable = profile.cuttable_columns()
        assert "constant" not in cuttable
        assert "tonnage" in cuttable

    def test_context_restricts_rows(self, table):
        context = SDLQuery([RangePredicate("tonnage", 1000, 1200)])
        profile = profile_table(table, context=context)
        assert profile.row_count == 3
        assert profile.column("type").top_values[0] == ("fluit", 3)

    def test_describe_runs(self, table):
        text = profile_table(table).describe()
        assert "boats" in text
        assert "tonnage" in text
