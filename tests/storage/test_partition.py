"""Tests for row-range partitioning and partition-aware evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError, TypeMismatchError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate
from repro.storage import PartitionedTable, QueryEngine, Table, partition_bounds
from repro.storage.expression import query_mask
from repro.workloads import generate_voc


@pytest.fixture(scope="module")
def table():
    return generate_voc(rows=500, seed=42)


def _fluit_query():
    return SDLQuery([SetPredicate("type_of_boat", frozenset({"fluit"}))])


def _range_query():
    return SDLQuery(
        [RangePredicate("tonnage", 500, 2500), NoConstraint("departure_harbour")]
    )


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spreads_over_leading_partitions(self):
        assert partition_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_single_partition_covers_everything(self):
        assert partition_bounds(7, 1) == [(0, 7)]

    def test_more_partitions_than_rows_yields_empty_tails(self):
        bounds = partition_bounds(3, 5)
        assert bounds == [(0, 1), (1, 2), (2, 3), (3, 3), (3, 3)]

    def test_bounds_are_contiguous_and_complete(self):
        for rows in (0, 1, 17, 100):
            for partitions in (1, 2, 3, 7, 150):
                bounds = partition_bounds(rows, partitions)
                assert len(bounds) == partitions
                assert bounds[0][0] == 0
                assert bounds[-1][1] == rows
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start

    def test_invalid_arguments(self):
        with pytest.raises(StorageError):
            partition_bounds(10, 0)
        with pytest.raises(StorageError):
            partition_bounds(-1, 2)


class TestPartitionedTable:
    def test_single_partition_shares_the_source_table(self, table):
        partitioned = PartitionedTable(table, 1)
        assert partitioned.shards[0] is table
        assert partitioned.num_partitions == 1

    def test_shards_reassemble_the_table(self, table):
        partitioned = PartitionedTable(table, 4)
        assert sum(shard.num_rows for shard in partitioned.shards) == table.num_rows
        offset = 0
        for shard in partitioned.shards:
            assert shard.column_names == table.column_names
            if shard.num_rows:
                assert shard.row(0) == table.row(offset)
            offset += shard.num_rows

    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_masks_concatenate(self, table, partitions):
        partitioned = PartitionedTable(table, partitions)
        for query in (_fluit_query(), _range_query()):
            expected = query_mask(table, query)
            assert np.array_equal(partitioned.query_mask(query), expected)
            parts = partitioned.partition_masks(query)
            assert np.array_equal(np.concatenate(parts), expected)

    @pytest.mark.parametrize("partitions", [1, 2, 5, 16])
    def test_counts_sum(self, table, partitions):
        partitioned = PartitionedTable(table, partitions)
        for query in (_fluit_query(), _range_query()):
            assert partitioned.count(query) == int(
                np.count_nonzero(query_mask(table, query))
            )

    @pytest.mark.parametrize("partitions", [1, 2, 3, 8])
    def test_medians_merge(self, table, partitions):
        partitioned = PartitionedTable(table, partitions)
        query = _range_query()
        mask = query_mask(table, query)
        expected = table.column("tonnage").median(mask)
        assert partitioned.median("tonnage", mask) == expected

    def test_median_merges_dates(self, table, partitions=3):
        partitioned = PartitionedTable(table, partitions)
        mask = query_mask(table, _fluit_query())
        expected = table.column("departure_date").median(mask)
        assert partitioned.median("departure_date", mask) == expected

    def test_median_rejects_nominal_columns(self, table):
        partitioned = PartitionedTable(table, 2)
        mask = np.ones(table.num_rows, dtype=bool)
        with pytest.raises(TypeMismatchError):
            partitioned.median("type_of_boat", mask)

    def test_shards_are_zero_copy_views(self, table):
        partitioned = PartitionedTable(table, 4)
        for (start, stop), shard in zip(partitioned.bounds, partitioned.shards):
            if start == stop:
                continue
            for name in table.column_names:
                source = table.column(name)
                shard_data = getattr(
                    shard.column(name), "_data", None
                )
                source_data = getattr(source, "_data", None)
                if shard_data is None:  # nominal columns store codes
                    shard_data = shard.column(name)._codes
                    source_data = source._codes
                assert shard_data.base is not None
                assert np.shares_memory(shard_data, source_data[start:stop])

    def test_more_partitions_than_rows(self):
        tiny = Table.from_dict({"x": [1, 2, 3]}, name="tiny")
        partitioned = PartitionedTable(tiny, 7)
        query = SDLQuery([RangePredicate("x", 2, 3)])
        assert partitioned.count(query) == 2
        assert np.array_equal(
            partitioned.query_mask(query), query_mask(tiny, query)
        )
        mask = partitioned.query_mask(query)
        assert partitioned.median("x", mask) == tiny.column("x").median(mask)

    def test_custom_map_fn_receives_every_shard(self, table):
        partitioned = PartitionedTable(table, 4)
        seen = []

        def spy_map(fn, items):
            seen.extend(items)
            return [fn(item) for item in items]

        partitioned.count(_fluit_query(), spy_map)
        assert len(seen) == 4


class TestPartitionedEngine:
    """The engine path: sequential is the ``partitions=1`` special case."""

    @pytest.mark.parametrize("partitions", [2, 3, 9])
    def test_counts_and_medians_match_sequential(self, table, partitions):
        sequential = QueryEngine(table)
        partitioned = QueryEngine(table, partitions=partitions)
        for query in (_fluit_query(), _range_query()):
            assert partitioned.count(query) == sequential.count(query)
        assert partitioned.median("tonnage", _range_query()) == sequential.median(
            "tonnage", _range_query()
        )
        assert partitioned.counter.snapshot() == sequential.counter.snapshot()

    def test_partitioned_masks_land_in_the_shared_cache(self, table):
        from repro.storage import ResultCache

        cache = ResultCache(capacity=32)
        partitioned = QueryEngine(table, cache=cache, partitions=4)
        sequential = QueryEngine(table, cache=cache)
        partitioned.count(_fluit_query())
        sequential.count(_fluit_query())
        # The sequential engine answers from the partitioned engine's mask.
        assert sequential.counter.evaluations == 0
        assert sequential.counter.cache_hits == 1

    def test_uncached_fast_path_sums_partition_counts(self, table):
        uncached = QueryEngine(table, cache_size=0, partitions=4)
        baseline = QueryEngine(table, cache_size=0)
        assert uncached.count(_range_query()) == baseline.count(_range_query())
        assert uncached.counter.snapshot() == baseline.counter.snapshot()

    def test_batches_match_sequential(self, table):
        sequential = QueryEngine(table)
        partitioned = QueryEngine(table, partitions=3)
        queries = [_fluit_query(), _range_query(), _fluit_query()]
        assert partitioned.count_batch(queries) == sequential.count_batch(queries)
        medians = [None, _range_query(), _range_query()]
        assert partitioned.median_batch("tonnage", medians) == (
            sequential.median_batch("tonnage", medians)
        )
        assert partitioned.counter.snapshot() == sequential.counter.snapshot()

    def test_sample_keeps_partitions_and_pool(self, table):
        from repro.backends.pool import ExecutorPool

        pool = ExecutorPool(2)
        engine = QueryEngine(table, partitions=4, pool=pool)
        sampled = engine.sample(0.5, seed=9)
        assert sampled.partitions == 4
        assert sampled.partitioned_table.num_partitions == 4
        assert sampled.pool is pool

    def test_sibling_shares_shards_and_pool(self, table):
        from repro.backends.pool import ExecutorPool

        pool = ExecutorPool(2)
        engine = QueryEngine(table, partitions=4, pool=pool)
        sibling = engine.sibling()
        assert sibling.partitioned_table is engine.partitioned_table
        assert sibling.pool is engine.pool
        assert sibling.cache is engine.cache
        assert sibling.counter is not engine.counter
