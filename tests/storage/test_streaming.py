"""Unit and property tests for the P² streaming quantile estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EmptyColumnError, StorageError
from repro.sdl import RangePredicate, SDLQuery
from repro.storage import QueryEngine, Table
from repro.storage.streaming import (
    P2QuantileEstimator,
    StreamingMedianSketch,
    streaming_median,
)


class TestP2Estimator:
    def test_rejects_invalid_quantile(self):
        with pytest.raises(StorageError):
            P2QuantileEstimator(0.0)
        with pytest.raises(StorageError):
            P2QuantileEstimator(1.0)

    def test_estimate_before_any_observation(self):
        with pytest.raises(EmptyColumnError):
            P2QuantileEstimator(0.5).estimate()

    def test_exact_for_fewer_than_five_observations(self):
        estimator = P2QuantileEstimator(0.5)
        estimator.extend([10, 2, 8])
        assert estimator.estimate() == 8  # middle of the sorted prefix

    def test_median_of_uniform_stream(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1000, size=20_000)
        estimator = P2QuantileEstimator(0.5)
        estimator.extend(values)
        assert estimator.estimate() == pytest.approx(float(np.median(values)), rel=0.02)

    def test_median_of_gaussian_stream(self):
        rng = np.random.default_rng(2)
        values = rng.normal(100, 15, size=20_000)
        estimator = P2QuantileEstimator(0.5)
        estimator.extend(values)
        assert estimator.estimate() == pytest.approx(float(np.median(values)), abs=1.0)

    def test_tail_quantile_of_skewed_stream(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(mean=3.0, sigma=1.0, size=30_000)
        estimator = P2QuantileEstimator(0.9)
        estimator.extend(values)
        exact = float(np.quantile(values, 0.9))
        assert estimator.estimate() == pytest.approx(exact, rel=0.05)

    def test_count_tracks_observations(self):
        estimator = P2QuantileEstimator(0.5)
        estimator.extend(range(100))
        assert estimator.count == 100

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=400,
        )
    )
    def test_estimate_always_within_observed_range(self, values):
        estimator = P2QuantileEstimator(0.5)
        estimator.extend(values)
        estimate = estimator.estimate()
        assert min(values) <= estimate <= max(values)


class TestStreamingMedianSketch:
    def test_median_and_extra_quantiles(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 100, size=10_000)
        sketch = StreamingMedianSketch(extra_quantiles=(0.25, 0.75))
        sketch.extend(values)
        assert sketch.median() == pytest.approx(50, abs=3)
        assert sketch.quantile(0.25) == pytest.approx(25, abs=3)
        assert sketch.quantile(0.75) == pytest.approx(75, abs=3)
        assert sketch.count == 10_000

    def test_untracked_quantile_rejected(self):
        sketch = StreamingMedianSketch()
        sketch.update(1.0)
        with pytest.raises(StorageError):
            sketch.quantile(0.9)


class TestStreamingMedianOverEngine:
    @pytest.fixture()
    def engine(self) -> QueryEngine:
        rng = np.random.default_rng(5)
        return QueryEngine(
            Table.from_dict(
                {
                    "value": [float(v) for v in rng.normal(500, 50, size=8000)],
                    "group": ["a" if v else "b" for v in rng.integers(0, 2, size=8000)],
                }
            )
        )

    def test_matches_exact_median_closely(self, engine):
        exact = engine.median("value")
        estimate = streaming_median(engine, "value")
        assert estimate == pytest.approx(exact, rel=0.02)

    def test_respects_query_restriction(self, engine):
        query = SDLQuery([RangePredicate("value", 0, 500)])
        exact = engine.median("value", query)
        estimate = streaming_median(engine, "value", query)
        assert estimate == pytest.approx(exact, rel=0.03)
        assert estimate <= 502

    def test_rejects_nominal_columns(self, engine):
        with pytest.raises(StorageError):
            streaming_median(engine, "group")

    def test_empty_selection_rejected(self, engine):
        query = SDLQuery([RangePredicate("value", 10_000, 20_000)])
        with pytest.raises(EmptyColumnError):
            streaming_median(engine, "value", query)
