"""Unit tests for the query engine (counts, medians, caching, accounting)."""

from __future__ import annotations

import pytest

from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate
from repro.storage import QueryEngine, Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        {
            "tonnage": [1000, 1100, 1200, 1300, 1400, 1500],
            "type": ["fluit", "fluit", "fluit", "jacht", "jacht", "jacht"],
            "year": [1700, 1705, 1710, 1750, 1755, 1760],
        },
        name="boats",
    )


@pytest.fixture()
def engine(table: Table) -> QueryEngine:
    return QueryEngine(table)


def _fluit_query() -> SDLQuery:
    return SDLQuery([SetPredicate("type", frozenset({"fluit"})), NoConstraint("tonnage")])


class TestEvaluationAndCounts:
    def test_count_whole_table(self, engine):
        assert engine.count(SDLQuery.over(["tonnage"])) == 6

    def test_count_with_predicate(self, engine):
        assert engine.count(_fluit_query()) == 3

    def test_cover_table_relative(self, engine):
        assert engine.cover(_fluit_query()) == pytest.approx(0.5)

    def test_cover_context_relative(self, engine):
        context = SDLQuery([RangePredicate("tonnage", 1000, 1200)])
        query = _fluit_query().refine(RangePredicate("tonnage", 1000, 1100))
        assert engine.cover(query, context) == pytest.approx(2 / 3)

    def test_cover_of_empty_context_is_zero(self, engine):
        context = SDLQuery([RangePredicate("tonnage", 9000, 9999)])
        assert engine.cover(_fluit_query(), context) == 0.0


class TestAggregates:
    def test_median_whole_table(self, engine):
        assert engine.median("tonnage") == pytest.approx(1250)

    def test_median_under_query(self, engine):
        assert engine.median("tonnage", _fluit_query()) == 1100

    def test_minmax(self, engine):
        assert engine.minmax("tonnage") == (1000, 1500)
        assert engine.minmax("tonnage", _fluit_query()) == (1000, 1200)

    def test_value_frequencies(self, engine):
        assert engine.value_frequencies("type") == {"fluit": 3, "jacht": 3}
        query = SDLQuery([RangePredicate("year", 1750, 1760)])
        assert engine.value_frequencies("type", query) == {"jacht": 3}

    def test_distinct_count(self, engine):
        assert engine.distinct_count("type") == 2
        assert engine.distinct_count("type", _fluit_query()) == 1

    def test_unconstrained_query_equals_no_query(self, engine):
        context = SDLQuery.over(["tonnage", "type"])
        assert engine.median("tonnage", context) == engine.median("tonnage")


class TestCaching:
    def test_cache_hits_recorded(self, engine):
        query = _fluit_query()
        engine.count(query)
        engine.count(query)
        assert engine.counter.cache_hits >= 1
        assert engine.counter.evaluations == 1

    def test_cache_disabled(self, table):
        engine = QueryEngine(table, cache_size=0)
        query = _fluit_query()
        engine.count(query)
        engine.count(query)
        assert engine.counter.cache_hits == 0
        assert engine.counter.evaluations == 2

    def test_cache_eviction(self, table):
        engine = QueryEngine(table, cache_size=2)
        for low in range(1000, 1500, 100):
            engine.count(SDLQuery([RangePredicate("tonnage", low, low + 50)]))
        assert engine.cache_info["entries"] <= 2
        assert engine.cache_info["evictions"] > 0

    def test_clear_cache(self, engine):
        engine.count(_fluit_query())
        engine.clear_cache()
        assert engine.cache_info["entries"] == 0

    def test_equivalent_queries_share_cache_entry(self, engine):
        first = SDLQuery([SetPredicate("type", frozenset({"fluit"})), NoConstraint("tonnage")])
        second = SDLQuery([NoConstraint("tonnage"), SetPredicate("type", frozenset({"fluit"}))])
        engine.count(first)
        before = engine.counter.evaluations
        engine.count(second)
        assert engine.counter.evaluations == before


class TestOperationCounter:
    def test_counts_each_operation_type(self, engine):
        engine.counter.reset()
        query = _fluit_query()
        engine.count(query)
        engine.median("tonnage", query)
        engine.minmax("tonnage", query)
        engine.value_frequencies("type", query)
        snapshot = engine.counter.snapshot()
        assert snapshot["count_calls"] == 1
        assert snapshot["median_calls"] == 1
        assert snapshot["minmax_calls"] == 1
        assert snapshot["frequency_calls"] == 1
        assert snapshot["total_database_operations"] == 4

    def test_reset(self, engine):
        engine.count(_fluit_query())
        engine.counter.reset()
        assert engine.counter.total_database_operations == 0


class TestMaterialise:
    def test_materialize_returns_filtered_table(self, engine):
        result = engine.materialize(_fluit_query())
        assert result.num_rows == 3
        assert set(result.to_dict()["type"]) == {"fluit"}

    def test_counts_for_batch(self, engine):
        queries = [_fluit_query(), SDLQuery([RangePredicate("tonnage", 1300, 1500)])]
        assert engine.counts_for(queries) == (3, 3)


class TestSharedCache:
    def test_engines_share_masks(self, table):
        from repro.storage import ResultCache

        cache = ResultCache(capacity=32)
        first = QueryEngine(table, cache=cache)
        second = QueryEngine(table, cache=cache)
        first.count(_fluit_query())
        second.count(_fluit_query())
        assert second.counter.evaluations == 0
        assert second.counter.cache_hits == 1
        assert cache.stats().hits == 1

    def test_aggregate_caching_skips_the_mask(self, table):
        from repro.storage import ResultCache

        cache = ResultCache(capacity=32)
        first = QueryEngine(table, cache=cache, cache_aggregates=True)
        second = QueryEngine(table, cache=cache, cache_aggregates=True)
        assert first.count(_fluit_query()) == second.count(_fluit_query())
        assert first.median("tonnage", _fluit_query()) == second.median(
            "tonnage", _fluit_query()
        )
        assert second.counter.evaluations == 0
        assert second.counter.aggregate_hits == 2
        # Logical accounting is unchanged by the cache.
        assert second.counter.count_calls == 1
        assert second.counter.median_calls == 1

    def test_count_batch_matches_counts_for(self, engine):
        queries = [_fluit_query(), SDLQuery([RangePredicate("tonnage", 1300, 1500)])]
        assert engine.count_batch(queries) == engine.counts_for(queries)
        assert engine.counter.batch_calls == 1

    def test_median_batch(self, engine):
        queries = [None, _fluit_query()]
        assert engine.median_batch("tonnage", queries) == (
            engine.median("tonnage"),
            engine.median("tonnage", _fluit_query()),
        )

    def test_median_batch_deduplicates_like_count_batch(self, table):
        engine = QueryEngine(table)
        queries = [_fluit_query(), _fluit_query(), None, None]
        results = engine.median_batch("tonnage", queries)
        assert results == (1100, 1100, 1250, 1250)
        # One median call per request; the coalesced duplicates are
        # recorded as cache hits, mirroring deduplicated_count_batch.
        assert engine.counter.batch_calls == 1
        assert engine.counter.median_calls == 4
        assert engine.counter.cache_hits == 2
        # Each unique selection was evaluated exactly once.
        assert engine.counter.evaluations == 1

    def test_median_batch_accounting_matches_sqlite(self, table):
        from repro.backends.sqlite import SQLiteBackend

        queries = [_fluit_query(), _fluit_query(), None]
        engine = QueryEngine(table)
        backend = SQLiteBackend.from_table(table)
        assert engine.median_batch("tonnage", queries) == backend.median_batch(
            "tonnage", queries
        )
        assert (
            engine.counter.batch_calls,
            engine.counter.median_calls,
        ) == (backend.counter.batch_calls, backend.counter.median_calls)


class TestOperationCounterThreadSafety:
    def test_concurrent_adds_never_drop_counts(self):
        import threading

        from repro.storage import OperationCounter

        counter = OperationCounter()
        rounds = 2000

        def tally():
            for _ in range(rounds):
                counter.add(count_calls=1, cache_hits=2)

        threads = [threading.Thread(target=tally) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.count_calls == 8 * rounds
        assert counter.cache_hits == 16 * rounds

    def test_merge_folds_per_worker_counters(self):
        from repro.storage import OperationCounter

        total = OperationCounter()
        worker_a = OperationCounter(count_calls=3, evaluations=1)
        worker_b = OperationCounter(count_calls=2, median_calls=5)
        total.merge(worker_a)
        total.merge(worker_b)
        assert total.count_calls == 5
        assert total.evaluations == 1
        assert total.median_calls == 5
        assert total.total_database_operations == 10

    def test_add_rejects_unknown_tallies(self):
        from repro.storage import OperationCounter

        with pytest.raises(AttributeError):
            OperationCounter().add(bogus=1)


class TestIndexedEngine:
    def test_indexed_median_matches_plain(self, table):
        plain = QueryEngine(table, use_index=False)
        indexed = QueryEngine(table, use_index=True)
        assert plain.median("tonnage") == indexed.median("tonnage")
        assert plain.minmax("year") == indexed.minmax("year")

    def test_index_is_reused(self, table):
        engine = QueryEngine(table, use_index=True)
        first = engine.index_for("tonnage")
        second = engine.index_for("tonnage")
        assert first is second
