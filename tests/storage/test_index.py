"""Unit tests for sorted-column indexes."""

from __future__ import annotations

import pytest

from repro.errors import EmptyColumnError
from repro.storage.column import DateColumn, NumericColumn, StringColumn
from repro.storage.index import SortedIndex
from repro.storage.types import DataType


class TestNumericIndex:
    def test_min_max_median(self):
        column = NumericColumn("x", [5, 3, 9, 1, 7], DataType.INT)
        index = SortedIndex(column)
        assert index.minimum() == 1
        assert index.maximum() == 9
        assert index.median() == 5

    def test_median_matches_column(self):
        values = [4, 8, 15, 16, 23, 42]
        column = NumericColumn("x", values, DataType.INT)
        assert SortedIndex(column).median() == column.median()

    def test_quantiles(self):
        column = NumericColumn("x", list(range(1, 101)), DataType.INT)
        index = SortedIndex(column)
        assert index.quantile(0.0) == 1
        assert index.quantile(1.0) == 100
        assert abs(index.quantile(0.25) - 26) <= 1

    def test_quantile_out_of_range(self):
        index = SortedIndex(NumericColumn("x", [1, 2], DataType.INT))
        with pytest.raises(ValueError):
            index.quantile(1.5)

    def test_range_count(self):
        column = NumericColumn("x", list(range(10)), DataType.INT)
        index = SortedIndex(column)
        assert index.range_count(2, 5) == 4
        assert index.range_count(2, 5, include_high=False) == 3
        assert index.range_count(2, 5, include_low=False) == 3
        assert index.range_count(100, 200) == 0

    def test_range_count_matches_mask(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]
        column = NumericColumn("x", values, DataType.INT)
        index = SortedIndex(column)
        mask_count = int(column.mask_range(2, 5).sum())
        assert index.range_count(2, 5) == mask_count

    def test_rank(self):
        column = NumericColumn("x", [10, 20, 30], DataType.INT)
        index = SortedIndex(column)
        assert index.rank(20, side="left") == 1
        assert index.rank(20, side="right") == 2

    def test_missing_values_excluded(self):
        column = NumericColumn("x", [1, None, 3], DataType.INT)
        assert len(SortedIndex(column)) == 2

    def test_empty_index_raises(self):
        column = NumericColumn("x", [None, None], DataType.INT)
        index = SortedIndex(column)
        assert index.is_empty
        with pytest.raises(EmptyColumnError):
            index.median()
        assert index.range_count(0, 10) == 0


class TestDateIndex:
    def test_median_is_a_date(self):
        column = DateColumn("d", ["2020-01-01", "2020-01-05", "2020-01-09"])
        median = SortedIndex(column).median()
        assert median == column.median()


class TestStringIndex:
    def test_min_max_and_middle(self):
        column = StringColumn("s", ["pear", "apple", "cherry"])
        index = SortedIndex(column)
        assert index.minimum() == "apple"
        assert index.maximum() == "pear"
        assert index.median() == "cherry"

    def test_range_count_lexicographic(self):
        column = StringColumn("s", ["apple", "banana", "cherry", "date"])
        index = SortedIndex(column)
        assert index.range_count("b", "d") == 2
