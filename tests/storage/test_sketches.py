"""Unit tests for the mergeable sketch tier (:mod:`repro.storage.sketches`).

The bound proofs: every estimate a sketch reports must sit within the
error it advertises — exactly, since construction is deterministic —
across builds, merges, compactions and restrictions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.partition import PartitionedTable
from repro.storage.sketches import (
    DEFAULT_SKETCH_BUDGET,
    MergeableQuantileSketch,
    NominalCountSketch,
)
from repro.workloads import generate_voc

_floats = st.floats(-1e9, 1e9, allow_nan=False)


def _true_range_count(data, low, high, include_low, include_high):
    lower = data >= low if include_low else data > low
    upper = data <= high if include_high else data < high
    return int(np.count_nonzero(lower & upper))


class TestQuantileSketchBuild:
    def test_small_input_is_held_exactly(self):
        sketch = MergeableQuantileSketch.from_values(np.array([3.0, 1.0, 2.0]), 8)
        assert sketch.rank_error == 0
        assert sketch.total_weight == 3
        assert list(sketch.values) == [1.0, 2.0, 3.0]
        assert sketch.quantile(0.5) == 2.0

    def test_large_input_compacts_under_budget(self):
        sketch = MergeableQuantileSketch.from_values(np.arange(10_000.0), 64)
        assert sketch.values.size <= 64
        assert sketch.total_weight == 10_000
        assert sketch.rank_error > 0
        assert sketch.rank_error_fraction < 0.05

    def test_identical_inputs_build_identical_sketches(self):
        data = np.random.default_rng(3).normal(size=5000)
        a = MergeableQuantileSketch.from_values(data, 128)
        b = MergeableQuantileSketch.from_values(data.copy(), 128)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.weights, b.weights)
        assert a.rank_error == b.rank_error

    def test_empty_sketch_raises_on_quantile(self):
        sketch = MergeableQuantileSketch.empty(16)
        assert sketch.total_weight == 0
        assert sketch.rank_error_fraction == 0.0
        with pytest.raises(ValueError):
            sketch.quantile(0.5)


class TestQuantileSketchBounds:
    @given(
        st.lists(
            st.lists(_floats, min_size=0, max_size=500),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_quantiles_within_advertised_rank_error(self, shards, budget):
        data = np.sort(np.concatenate([np.asarray(s, dtype=float) for s in shards]))
        merged = MergeableQuantileSketch.empty(budget)
        for shard in shards:
            merged = merged.merge(
                MergeableQuantileSketch.from_values(np.asarray(shard), budget)
            )
        assert merged.total_weight == data.size
        if data.size == 0:
            return
        tolerance = merged.rank_error_fraction * data.size
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            estimate = merged.quantile(q)
            target = round(q * (data.size - 1))
            low = np.searchsorted(data, estimate, side="left")
            high = np.searchsorted(data, estimate, side="right") - 1
            distance = max(0, int(low - target), int(target - high))
            assert distance <= tolerance

    @given(
        st.lists(_floats, min_size=0, max_size=800),
        st.integers(min_value=2, max_value=48),
        _floats,
        _floats,
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_weight_within_advertised_error(
        self, values, budget, a, b, include_low, include_high
    ):
        low, high = min(a, b), max(a, b)
        data = np.asarray(values, dtype=float)
        sketch = MergeableQuantileSketch.from_values(data, budget)
        estimate, error = sketch.range_weight(low, high, include_low, include_high)
        true = _true_range_count(data, low, high, include_low, include_high)
        assert abs(true - estimate) <= error

    def test_merge_accumulates_error_honestly(self):
        rng = np.random.default_rng(11)
        parts = [rng.normal(size=3000) for _ in range(4)]
        merged = MergeableQuantileSketch.empty(32)
        for part in parts:
            merged = merged.merge(MergeableQuantileSketch.from_values(part, 32))
        data = np.sort(np.concatenate(parts))
        estimate, error = merged.range_weight(-1.0, 1.0)
        true = _true_range_count(data, -1.0, 1.0, True, True)
        assert abs(true - estimate) <= error
        assert error < data.size  # the bound stays informative

    def test_restrict_keeps_weights_and_error(self):
        sketch = MergeableQuantileSketch.from_values(np.arange(100.0), 16)
        restricted = sketch.restrict(20.0, 60.0)
        assert restricted.total_weight <= sketch.total_weight
        assert restricted.rank_error == sketch.rank_error
        assert all(20.0 <= v <= 60.0 for v in restricted.values)


class TestNominalCountSketch:
    def test_under_cap_is_exact(self):
        sketch = NominalCountSketch.from_counts({"a": 5, "b": 3}, cap=8)
        assert sketch.estimate("a") == (5, 0)
        assert sketch.estimate("missing") == (0, 0)
        assert sketch.spilled_weight == 0

    def test_over_cap_spill_accounting(self):
        counts = {f"v{i}": i + 1 for i in range(10)}  # v9 -> 10 ... v0 -> 1
        sketch = NominalCountSketch.from_counts(counts, cap=4)
        assert len(sketch.counts) == 4
        # The four largest survive; the spilled mass is the rest, exactly.
        assert set(sketch.counts) == {"v9", "v8", "v7", "v6"}
        assert sketch.spilled_weight == sum(range(1, 7))
        assert sketch.max_dropped == 6
        count, undercount = sketch.estimate("v5")
        assert count == 0 and undercount == 6

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from([f"k{i}" for i in range(12)]),
                st.integers(min_value=1, max_value=50),
                max_size=12,
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_estimates_within_undercount_bound(self, shard_counts, cap):
        merged = None
        exact: dict = {}
        for counts in shard_counts:
            for key, count in counts.items():
                exact[key] = exact.get(key, 0) + count
            sketch = NominalCountSketch.from_counts(counts, cap=cap)
            merged = sketch if merged is None else merged.merge(sketch)
        assert merged is not None
        assert merged.total_weight == sum(exact.values())
        for key in list(exact) + ["absent"]:
            estimate, undercount = merged.estimate(key)
            true = exact.get(key, 0)
            assert estimate <= true  # never overcounts
            assert true - estimate <= undercount

    def test_deterministic_retention_order(self):
        counts = {"b": 2, "a": 2, "c": 2}
        first = NominalCountSketch.from_counts(counts, cap=2)
        second = NominalCountSketch.from_counts(dict(reversed(counts.items())), cap=2)
        assert first.counts == second.counts


class TestTableSketchesTier:
    @pytest.fixture(scope="class")
    def sharded(self):
        return PartitionedTable(generate_voc(rows=600, seed=9), partitions=4)

    def test_memoised_per_budget_on_the_partitioned_table(self, sharded):
        assert sharded.sketches(64) is sharded.sketches(64)
        assert sharded.sketches(64) is not sharded.sketches(128)
        assert sharded.sketches() is sharded.sketches(DEFAULT_SKETCH_BUDGET)

    def test_quantile_sketches_only_for_numeric_columns(self, sharded):
        tier = sharded.sketches(64)
        assert tier.quantile_sketch(0, "tonnage") is not None
        assert tier.quantile_sketch(0, "type_of_boat") is None
        assert tier.merged_quantile("type_of_boat") is None
        assert tier.is_nominal("type_of_boat")
        assert not tier.is_nominal("tonnage")

    def test_merged_stats_match_exact_extrema(self, sharded):
        tier = sharded.sketches(64)
        column = sharded.table.column("tonnage")
        rows, valid, minimum, maximum = tier.merged_stats("tonnage")
        assert rows == sharded.num_rows
        assert minimum == column.minimum()
        assert maximum == column.maximum()

    def test_merged_nominal_matches_exact_value_counts_under_cap(self, sharded):
        tier = sharded.sketches(64)
        merged = tier.merged_nominal("type_of_boat")
        assert merged.counts == sharded.table.column("type_of_boat").value_counts()
        assert merged.spilled_weight == 0

    def test_fresh_partitioned_table_gets_fresh_sketches(self):
        table = generate_voc(rows=100, seed=1)
        first = PartitionedTable(table, 2).sketches(32)
        second = PartitionedTable(table, 2).sketches(32)
        assert first is not second
