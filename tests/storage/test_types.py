"""Unit tests for data types, inference and coercion."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.errors import TypeMismatchError
from repro.storage.types import (
    DataType,
    coerce_value,
    date_to_ordinal,
    infer_collection_type,
    infer_value_type,
    is_missing,
    ordinal_to_date,
    parse_date,
)


class TestDataType:
    def test_numeric_types(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric

    def test_nominal_types(self):
        assert DataType.STRING.is_nominal
        assert DataType.BOOL.is_nominal
        assert not DataType.INT.is_nominal


class TestMissing:
    @pytest.mark.parametrize("value", [None, float("nan"), "", "   "])
    def test_missing_values(self, value):
        assert is_missing(value)

    @pytest.mark.parametrize("value", [0, 0.0, False, "x", dt.date(2020, 1, 1)])
    def test_present_values(self, value):
        assert not is_missing(value)


class TestDates:
    def test_parse_iso_date(self):
        assert parse_date("2020-03-01") == dt.date(2020, 3, 1)

    def test_parse_day_first_date(self):
        assert parse_date("01/03/2020") == dt.date(2020, 3, 1)

    def test_parse_datetime(self):
        assert parse_date(dt.datetime(2020, 3, 1, 12, 30)) == dt.date(2020, 3, 1)

    def test_parse_invalid_date(self):
        with pytest.raises(TypeMismatchError):
            parse_date("not a date")
        with pytest.raises(TypeMismatchError):
            parse_date(3.14)

    def test_ordinal_round_trip(self):
        date = dt.date(1650, 6, 15)
        assert ordinal_to_date(date_to_ordinal(date)) == date


class TestValueInference:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (5, DataType.INT),
            (5.5, DataType.FLOAT),
            (True, DataType.BOOL),
            (dt.date(2020, 1, 1), DataType.DATE),
            ("hello", DataType.STRING),
            ("42", DataType.INT),
            ("4.2", DataType.FLOAT),
            ("true", DataType.BOOL),
            ("2020-01-01", DataType.DATE),
        ],
    )
    def test_infer_value_type(self, value, expected):
        assert infer_value_type(value) is expected

    def test_missing_value_is_none(self):
        assert infer_value_type(None) is None

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeMismatchError):
            infer_value_type(object())


class TestCollectionInference:
    def test_pure_int(self):
        assert infer_collection_type([1, 2, 3]) is DataType.INT

    def test_int_widens_to_float(self):
        assert infer_collection_type([1, 2.5]) is DataType.FLOAT

    def test_bool_only(self):
        assert infer_collection_type([True, False]) is DataType.BOOL

    def test_mixed_text_falls_back_to_string(self):
        assert infer_collection_type([1, "abc"]) is DataType.STRING

    def test_missing_values_ignored(self):
        assert infer_collection_type([None, 3, None]) is DataType.INT

    def test_all_missing_defaults_to_string(self):
        assert infer_collection_type([None, ""]) is DataType.STRING

    def test_dates(self):
        assert infer_collection_type(["2020-01-01", "2021-05-05"]) is DataType.DATE


class TestCoercion:
    def test_int_coercion(self):
        assert coerce_value("42", DataType.INT) == 42
        assert coerce_value(7.0, DataType.INT) == 7

    def test_int_coercion_rejects_fraction(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(7.5, DataType.INT)

    def test_float_coercion(self):
        assert coerce_value("3.25", DataType.FLOAT) == pytest.approx(3.25)

    def test_bool_coercion(self):
        assert coerce_value("yes", DataType.BOOL) is True
        assert coerce_value(0, DataType.BOOL) is False
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", DataType.BOOL)

    def test_date_coercion_stores_ordinal(self):
        assert coerce_value("2020-01-01", DataType.DATE) == dt.date(2020, 1, 1).toordinal()

    def test_string_coercion(self):
        assert coerce_value(42, DataType.STRING) == "42"

    def test_missing_values_stay_none(self):
        for dtype in DataType:
            assert coerce_value(None, dtype) is None

    def test_invalid_numeric_text(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", DataType.INT)
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", DataType.FLOAT)
