"""Unit tests for CSV loading and writing."""

from __future__ import annotations

import pytest

from repro.errors import CSVFormatError
from repro.storage import DataType, Table, load_csv, load_csv_text, write_csv

_SAMPLE = """tonnage,type,year,note
1000,fluit,1700,first
1100,jacht,1710,
1200,fluit,1720,third
"""


class TestLoadCSVText:
    def test_types_are_inferred(self):
        table = load_csv_text(_SAMPLE, name="boats")
        assert table.num_rows == 3
        schema = table.schema()
        assert schema["tonnage"] is DataType.INT
        assert schema["type"] is DataType.STRING
        assert schema["year"] is DataType.INT

    def test_empty_fields_become_missing(self):
        table = load_csv_text(_SAMPLE)
        assert table.row(1)["note"] is None

    def test_type_override(self):
        table = load_csv_text(_SAMPLE, types={"tonnage": DataType.FLOAT})
        assert table.dtype("tonnage") is DataType.FLOAT

    def test_limit(self):
        table = load_csv_text(_SAMPLE, limit=2)
        assert table.num_rows == 2

    def test_blank_lines_skipped(self):
        text = "a,b\n1,2\n\n3,4\n"
        assert load_csv_text(text).num_rows == 2

    def test_custom_delimiter(self):
        table = load_csv_text("a;b\n1;2\n", delimiter=";")
        assert table.column_names == ["a", "b"]

    def test_empty_input_rejected(self):
        with pytest.raises(CSVFormatError):
            load_csv_text("")

    def test_header_only_rejected(self):
        with pytest.raises(CSVFormatError):
            load_csv_text("a,b\n")

    def test_ragged_row_rejected(self):
        with pytest.raises(CSVFormatError):
            load_csv_text("a,b\n1,2,3\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(CSVFormatError):
            load_csv_text("a,a\n1,2\n")

    def test_empty_column_name_rejected(self):
        with pytest.raises(CSVFormatError):
            load_csv_text("a,\n1,2\n")


class TestLoadCSVFile:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "boats.csv"
        path.write_text(_SAMPLE, encoding="utf-8")
        table = load_csv(path)
        assert table.name == "boats"
        assert table.num_rows == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(CSVFormatError):
            load_csv(tmp_path / "does_not_exist.csv")


class TestWriteCSV:
    def test_write_and_reload(self, tmp_path):
        table = Table.from_dict(
            {"x": [1, 2, None], "label": ["a", None, "c"]}, name="data"
        )
        path = tmp_path / "out.csv"
        write_csv(table, path)
        reloaded = load_csv(path)
        assert reloaded.num_rows == 3
        assert reloaded.row(2)["label"] == "c"
        assert reloaded.row(1)["label"] is None
