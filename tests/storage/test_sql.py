"""Unit tests for SDL ↔ SQL translation."""

from __future__ import annotations

import pytest

from repro.errors import SQLGenerationError, SQLParseError
from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
)
from repro.storage.sql import (
    count_query_sql,
    parse_where,
    predicate_to_sql,
    query_to_sql,
    query_to_where,
    sql_literal,
)


class TestSQLLiteral:
    def test_numbers(self):
        assert sql_literal(42) == "42"
        assert sql_literal(3.5) == "3.5"

    def test_booleans(self):
        assert sql_literal(True) == "TRUE"
        assert sql_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert sql_literal("d'Orville") == "'d''Orville'"

    def test_null_rejected(self):
        with pytest.raises(SQLGenerationError):
            sql_literal(None)


class TestPredicateToSQL:
    def test_no_constraint(self):
        assert predicate_to_sql(NoConstraint("a")) == "TRUE"

    def test_closed_range(self):
        sql = predicate_to_sql(RangePredicate("tonnage", 1000, 2000))
        assert sql == '"tonnage" >= 1000 AND "tonnage" <= 2000'

    def test_half_open_range(self):
        sql = predicate_to_sql(RangePredicate("tonnage", 1000, 2000, include_high=False))
        assert sql == '"tonnage" >= 1000 AND "tonnage" < 2000'

    def test_set_predicate(self):
        sql = predicate_to_sql(SetPredicate("type", frozenset({"jacht", "fluit"})))
        assert sql == "\"type\" IN ('fluit', 'jacht')"


class TestQueryToSQL:
    def test_where_clause(self):
        query = SDLQuery(
            [RangePredicate("tonnage", 1000, 2000), NoConstraint("year"),
             SetPredicate("type", frozenset({"fluit"}))]
        )
        where = query_to_where(query)
        assert '"tonnage" >= 1000' in where
        assert "IN ('fluit')" in where
        assert "year" not in where  # unconstrained columns do not filter

    def test_unconstrained_query(self):
        assert query_to_where(SDLQuery.over(["a", "b"])) == "TRUE"

    def test_full_select(self):
        query = SDLQuery([RangePredicate("tonnage", 1, 2)])
        sql = query_to_sql(query, "voyages")
        assert sql.startswith('SELECT * FROM "voyages" WHERE')

    def test_count_select(self):
        query = SDLQuery([RangePredicate("tonnage", 1, 2)])
        assert "COUNT(*)" in count_query_sql(query, "voyages")


class TestParseWhere:
    def test_between_and_in(self):
        query = parse_where(
            "tonnage BETWEEN 1000 AND 5000 AND type_of_boat IN ('jacht', 'fluit')"
        )
        assert query.predicate_for("tonnage") == RangePredicate("tonnage", 1000, 5000)
        assert query.predicate_for("type_of_boat") == SetPredicate(
            "type_of_boat", frozenset({"jacht", "fluit"})
        )

    def test_comparison_operators(self):
        query = parse_where("tonnage >= 1000 AND tonnage < 2000")
        predicate = query.predicate_for("tonnage")
        assert isinstance(predicate, RangePredicate)
        assert predicate.low == 1000 and predicate.include_low
        assert predicate.high == 2000 and not predicate.include_high

    def test_equality_on_string(self):
        query = parse_where("type = 'fluit'")
        assert query.predicate_for("type") == SetPredicate("type", frozenset({"fluit"}))

    def test_equality_on_number(self):
        query = parse_where("year = 1700")
        assert query.predicate_for("year") == RangePredicate("year", 1700, 1700)

    def test_quoted_identifier(self):
        query = parse_where('"departure harbour" = \'Bantam\'')
        assert query.predicate_for("departure harbour") is not None

    def test_parenthesised_comparison(self):
        query = parse_where("(tonnage >= 10) AND (tonnage <= 20)")
        assert query.predicate_for("tonnage") == RangePredicate("tonnage", 10, 20)

    def test_keyword_case_insensitive(self):
        query = parse_where("tonnage between 1 and 5 and type in ('x')")
        assert len(query.constrained_attributes) == 2

    def test_contradictory_constraints_rejected(self):
        with pytest.raises(SQLParseError):
            parse_where("tonnage >= 100 AND tonnage <= 50")

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "tonnage <> 5",
            "tonnage LIKE 'a%'",
            "tonnage >= 'abc'",
            "tonnage >=",
            "tonnage IN ()",
            "AND tonnage = 1",
        ],
    )
    def test_invalid_where_rejected(self, text):
        with pytest.raises(SQLParseError):
            parse_where(text)


class TestRoundTrip:
    def test_sdl_to_sql_to_sdl(self):
        original = SDLQuery(
            [
                RangePredicate("tonnage", 1000, 2000),
                SetPredicate("type", frozenset({"fluit", "jacht"})),
            ]
        )
        where = query_to_where(original)
        reparsed = parse_where(where)
        assert reparsed.predicate_for("tonnage") == original.predicate_for("tonnage")
        assert reparsed.predicate_for("type") == original.predicate_for("type")


class TestParseWhereExtensions:
    """The PR 2 satellite: NOT IN, quoted identifiers, clear OR errors."""

    def test_not_in(self):
        query = parse_where("type_of_boat NOT IN ('fluit', 'pinas')")
        assert query.predicate_for("type_of_boat") == ExclusionPredicate(
            "type_of_boat", frozenset({"fluit", "pinas"})
        )

    def test_not_in_case_insensitive(self):
        query = parse_where("type not in ('x') AND tonnage >= 10")
        assert isinstance(query.predicate_for("type"), ExclusionPredicate)

    def test_quoted_identifier_shadowing_keyword(self):
        query = parse_where('"between" = 5 AND "in" IN (1, 2)')
        assert query.predicate_for("between") == RangePredicate("between", 5, 5)
        assert query.predicate_for("in") == SetPredicate("in", frozenset({1, 2}))

    def test_bare_keyword_in_column_position_rejected(self):
        with pytest.raises(SQLParseError):
            parse_where("between = 5")

    def test_or_raises_a_clear_error(self):
        with pytest.raises(SQLParseError) as excinfo:
            parse_where("tonnage > 5 OR tonnage < 2")
        message = str(excinfo.value)
        assert "OR is not supported" in message
        assert "conjunction" in message

    def test_not_without_in_rejected(self):
        with pytest.raises(SQLParseError):
            parse_where("tonnage NOT BETWEEN 1 AND 5")

    def test_not_in_merges_with_set(self):
        query = parse_where("t IN ('a', 'b', 'c') AND t NOT IN ('b')")
        assert query.predicate_for("t") == SetPredicate("t", frozenset({"a", "c"}))


class TestExclusionSQL:
    def test_not_in_renders(self):
        predicate = ExclusionPredicate("type", frozenset({"fluit", "jacht"}))
        assert predicate_to_sql(predicate) == "\"type\" NOT IN ('fluit', 'jacht')"

    def test_round_trip(self):
        original = SDLQuery([ExclusionPredicate("type", frozenset({"fluit"}))])
        assert parse_where(query_to_where(original)) == original


class TestUnboundedRanges:
    def test_one_sided_low(self):
        predicate = RangePredicate("x", float("-inf"), 5, include_high=False)
        assert predicate_to_sql(predicate) == "\"x\" < 5"

    def test_one_sided_high(self):
        predicate = RangePredicate("x", 3, float("inf"))
        assert predicate_to_sql(predicate) == "\"x\" >= 3"

    def test_fully_unbounded(self):
        predicate = RangePredicate("x", float("-inf"), float("inf"))
        assert predicate_to_sql(predicate) == "\"x\" IS NOT NULL"

    def test_round_trip_of_comparisons(self):
        for text in ("x < 5", "x <= 5", "x > 5", "x >= 5"):
            assert parse_where(query_to_where(parse_where(text))) == parse_where(text)
