"""Unit tests for SDL ↔ SQL translation."""

from __future__ import annotations

import pytest

from repro.errors import SQLGenerationError, SQLParseError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate
from repro.storage.sql import (
    count_query_sql,
    parse_where,
    predicate_to_sql,
    query_to_sql,
    query_to_where,
    sql_literal,
)


class TestSQLLiteral:
    def test_numbers(self):
        assert sql_literal(42) == "42"
        assert sql_literal(3.5) == "3.5"

    def test_booleans(self):
        assert sql_literal(True) == "TRUE"
        assert sql_literal(False) == "FALSE"

    def test_string_escaping(self):
        assert sql_literal("d'Orville") == "'d''Orville'"

    def test_null_rejected(self):
        with pytest.raises(SQLGenerationError):
            sql_literal(None)


class TestPredicateToSQL:
    def test_no_constraint(self):
        assert predicate_to_sql(NoConstraint("a")) == "TRUE"

    def test_closed_range(self):
        sql = predicate_to_sql(RangePredicate("tonnage", 1000, 2000))
        assert sql == '"tonnage" >= 1000 AND "tonnage" <= 2000'

    def test_half_open_range(self):
        sql = predicate_to_sql(RangePredicate("tonnage", 1000, 2000, include_high=False))
        assert sql == '"tonnage" >= 1000 AND "tonnage" < 2000'

    def test_set_predicate(self):
        sql = predicate_to_sql(SetPredicate("type", frozenset({"jacht", "fluit"})))
        assert sql == "\"type\" IN ('fluit', 'jacht')"


class TestQueryToSQL:
    def test_where_clause(self):
        query = SDLQuery(
            [RangePredicate("tonnage", 1000, 2000), NoConstraint("year"),
             SetPredicate("type", frozenset({"fluit"}))]
        )
        where = query_to_where(query)
        assert '"tonnage" >= 1000' in where
        assert "IN ('fluit')" in where
        assert "year" not in where  # unconstrained columns do not filter

    def test_unconstrained_query(self):
        assert query_to_where(SDLQuery.over(["a", "b"])) == "TRUE"

    def test_full_select(self):
        query = SDLQuery([RangePredicate("tonnage", 1, 2)])
        sql = query_to_sql(query, "voyages")
        assert sql.startswith('SELECT * FROM "voyages" WHERE')

    def test_count_select(self):
        query = SDLQuery([RangePredicate("tonnage", 1, 2)])
        assert "COUNT(*)" in count_query_sql(query, "voyages")


class TestParseWhere:
    def test_between_and_in(self):
        query = parse_where(
            "tonnage BETWEEN 1000 AND 5000 AND type_of_boat IN ('jacht', 'fluit')"
        )
        assert query.predicate_for("tonnage") == RangePredicate("tonnage", 1000, 5000)
        assert query.predicate_for("type_of_boat") == SetPredicate(
            "type_of_boat", frozenset({"jacht", "fluit"})
        )

    def test_comparison_operators(self):
        query = parse_where("tonnage >= 1000 AND tonnage < 2000")
        predicate = query.predicate_for("tonnage")
        assert isinstance(predicate, RangePredicate)
        assert predicate.low == 1000 and predicate.include_low
        assert predicate.high == 2000 and not predicate.include_high

    def test_equality_on_string(self):
        query = parse_where("type = 'fluit'")
        assert query.predicate_for("type") == SetPredicate("type", frozenset({"fluit"}))

    def test_equality_on_number(self):
        query = parse_where("year = 1700")
        assert query.predicate_for("year") == RangePredicate("year", 1700, 1700)

    def test_quoted_identifier(self):
        query = parse_where('"departure harbour" = \'Bantam\'')
        assert query.predicate_for("departure harbour") is not None

    def test_parenthesised_comparison(self):
        query = parse_where("(tonnage >= 10) AND (tonnage <= 20)")
        assert query.predicate_for("tonnage") == RangePredicate("tonnage", 10, 20)

    def test_keyword_case_insensitive(self):
        query = parse_where("tonnage between 1 and 5 and type in ('x')")
        assert len(query.constrained_attributes) == 2

    def test_contradictory_constraints_rejected(self):
        with pytest.raises(SQLParseError):
            parse_where("tonnage >= 100 AND tonnage <= 50")

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "tonnage <> 5",
            "tonnage LIKE 'a%'",
            "tonnage >= 'abc'",
            "tonnage >=",
            "tonnage IN ()",
            "AND tonnage = 1",
        ],
    )
    def test_invalid_where_rejected(self, text):
        with pytest.raises(SQLParseError):
            parse_where(text)


class TestRoundTrip:
    def test_sdl_to_sql_to_sdl(self):
        original = SDLQuery(
            [
                RangePredicate("tonnage", 1000, 2000),
                SetPredicate("type", frozenset({"fluit", "jacht"})),
            ]
        )
        where = query_to_where(original)
        reparsed = parse_where(where)
        assert reparsed.predicate_for("tonnage") == original.predicate_for("tonnage")
        assert reparsed.predicate_for("type") == original.predicate_for("type")
