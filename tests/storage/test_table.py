"""Unit tests for the Table relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.storage import DataType, Table
from repro.storage.column import NumericColumn, StringColumn


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        {
            "tonnage": [1000, 1100, 1200, 1300],
            "type": ["fluit", "jacht", "fluit", "jacht"],
            "year": [1700, 1710, 1720, 1730],
        },
        name="boats",
    )


class TestConstruction:
    def test_from_dict_infers_types(self, table):
        schema = table.schema()
        assert schema["tonnage"] is DataType.INT
        assert schema["type"] is DataType.STRING

    def test_from_dict_type_override(self):
        table = Table.from_dict({"x": [1, 2]}, types={"x": DataType.FLOAT})
        assert table.dtype("x") is DataType.FLOAT

    def test_from_rows_preserves_first_seen_order(self):
        table = Table.from_rows([{"a": 1, "b": 2}, {"b": 3, "a": 4, "c": 5}])
        assert table.column_names == ["a", "b", "c"]
        assert table.row(0)["c"] is None

    def test_from_rows_with_explicit_columns(self):
        table = Table.from_rows([{"a": 1, "b": 2}], columns=["b", "a"])
        assert table.column_names == ["b", "a"]

    def test_from_rows_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows([])

    def test_requires_at_least_one_column(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                "t",
                [
                    NumericColumn("a", [1, 2], DataType.INT),
                    NumericColumn("b", [1], DataType.INT),
                ],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                "t",
                [
                    NumericColumn("a", [1], DataType.INT),
                    NumericColumn("a", [2], DataType.INT),
                ],
            )


class TestAccess:
    def test_row_access(self, table):
        assert table.row(0) == {"tonnage": 1000, "type": "fluit", "year": 1700}
        assert table.row(-1)["tonnage"] == 1300

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(99)

    def test_unknown_column(self, table):
        with pytest.raises(UnknownColumnError) as excinfo:
            table.column("missing")
        assert "missing" in str(excinfo.value)
        assert "tonnage" in str(excinfo.value)

    def test_iter_rows_and_to_dict(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 4
        assert table.to_dict()["type"] == ["fluit", "jacht", "fluit", "jacht"]

    def test_head(self, table):
        assert len(table.head(2)) == 2
        assert len(table.head(99)) == 4

    def test_has_column(self, table):
        assert table.has_column("tonnage")
        assert not table.has_column("missing")


class TestDerivation:
    def test_filter(self, table):
        mask = np.array([True, False, True, False])
        filtered = table.filter(mask)
        assert filtered.num_rows == 2
        assert filtered.to_dict()["type"] == ["fluit", "fluit"]

    def test_filter_length_mismatch(self, table):
        with pytest.raises(SchemaError):
            table.filter(np.array([True]))

    def test_take(self, table):
        taken = table.take([3, 0])
        assert taken.to_dict()["tonnage"] == [1300, 1000]

    def test_take_out_of_range(self, table):
        with pytest.raises(SchemaError):
            table.take([99])

    def test_select_columns(self, table):
        projected = table.select_columns(["year", "type"])
        assert projected.column_names == ["year", "type"]

    def test_with_column_adds(self, table):
        extra = StringColumn("flag", ["a", "b", "c", "d"])
        extended = table.with_column(extra)
        assert "flag" in extended.column_names
        assert table.num_columns == 3  # original unchanged

    def test_with_column_replaces(self, table):
        replacement = NumericColumn("tonnage", [1, 2, 3, 4], DataType.INT)
        replaced = table.with_column(replacement)
        assert replaced.to_dict()["tonnage"] == [1, 2, 3, 4]
        assert replaced.num_columns == 3

    def test_with_column_length_mismatch(self, table):
        with pytest.raises(SchemaError):
            table.with_column(NumericColumn("flag", [1], DataType.INT))

    def test_rename(self, table):
        assert table.rename("other").name == "other"


class TestDisplay:
    def test_repr_and_describe(self, table):
        assert "boats" in repr(table)
        described = table.describe()
        assert "4 rows" in described
        assert "tonnage" in described
