"""Unit tests for sampling strategies and the sampled engine."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.sdl import RangePredicate, SDLQuery, SetPredicate
from repro.storage import SampledEngine, Table, sample_table, uniform_sample_indices
from repro.storage.sampling import reservoir_sample
from repro.workloads import generate_voc


class TestUniformSampleIndices:
    def test_sample_size(self):
        indices = uniform_sample_indices(100, sample_size=10, seed=1)
        assert len(indices) == 10
        assert len(set(indices.tolist())) == 10
        assert indices.max() < 100

    def test_fraction(self):
        indices = uniform_sample_indices(200, fraction=0.25, seed=1)
        assert len(indices) == 50

    def test_indices_are_sorted(self):
        indices = uniform_sample_indices(100, sample_size=20, seed=3)
        assert indices.tolist() == sorted(indices.tolist())

    def test_sample_capped_at_population(self):
        indices = uniform_sample_indices(5, sample_size=50, seed=1)
        assert len(indices) == 5

    def test_deterministic_with_seed(self):
        first = uniform_sample_indices(100, sample_size=10, seed=42)
        second = uniform_sample_indices(100, sample_size=10, seed=42)
        assert first.tolist() == second.tolist()

    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(StorageError):
            uniform_sample_indices(10)
        with pytest.raises(StorageError):
            uniform_sample_indices(10, sample_size=2, fraction=0.5)

    def test_invalid_fraction(self):
        with pytest.raises(StorageError):
            uniform_sample_indices(10, fraction=0.0)
        with pytest.raises(StorageError):
            uniform_sample_indices(10, fraction=1.5)

    def test_invalid_sample_size(self):
        with pytest.raises(StorageError):
            uniform_sample_indices(10, sample_size=0)


class TestReservoirSample:
    def test_sample_size_respected(self):
        sample = reservoir_sample(range(1000), k=10, seed=7)
        assert len(sample) == 10
        assert all(0 <= value < 1000 for value in sample)

    def test_short_stream_returned_whole(self):
        assert reservoir_sample(range(3), k=10, seed=7) == [0, 1, 2]

    def test_invalid_k(self):
        with pytest.raises(StorageError):
            reservoir_sample(range(10), k=0)

    def test_deterministic_with_seed(self):
        assert reservoir_sample(range(100), 5, seed=1) == reservoir_sample(range(100), 5, seed=1)


class TestSampleTable:
    def test_sampled_table_size(self):
        table = Table.from_dict({"x": list(range(100))})
        sampled = sample_table(table, fraction=0.2, seed=1)
        assert sampled.num_rows == 20
        assert sampled.column_names == ["x"]


class TestSampledEngine:
    @pytest.fixture(scope="class")
    def voc(self):
        return generate_voc(rows=4000, seed=5)

    def test_invalid_fraction_rejected(self, voc):
        with pytest.raises(StorageError):
            SampledEngine(voc, fraction=0.0)

    def test_count_estimates_are_scaled(self, voc):
        engine = SampledEngine(voc, fraction=0.25, seed=1)
        query = SDLQuery([SetPredicate("type_of_boat", frozenset({"fluit"}))])
        exact = engine.exact_count(query)
        estimate = engine.count(query)
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_estimation_error_reasonable(self, voc):
        engine = SampledEngine(voc, fraction=0.3, seed=2)
        query = SDLQuery([RangePredicate("tonnage", 1000, 2000)])
        assert engine.estimation_error(query) < 0.2

    def test_median_close_to_exact(self, voc):
        engine = SampledEngine(voc, fraction=0.25, seed=3)
        exact_median = engine.base_engine.median("tonnage")
        sampled_median = engine.median("tonnage")
        assert abs(sampled_median - exact_median) / exact_median < 0.1

    def test_scale_factor(self, voc):
        engine = SampledEngine(voc, fraction=0.5, seed=1)
        assert engine.scale_factor == pytest.approx(2.0, rel=0.05)

    def test_zero_exact_count_error_is_zero_or_one(self, voc):
        engine = SampledEngine(voc, fraction=0.5, seed=1)
        query = SDLQuery([RangePredicate("tonnage", 90_000, 99_000)])
        assert engine.estimation_error(query) in (0.0, 1.0)
