"""Unit tests for the table catalog."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.storage import Catalog, QueryEngine, Table


def _table(name: str = "boats") -> Table:
    return Table.from_dict({"x": [1, 2, 3]}, name=name)


class TestRegistration:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(_table())
        assert "boats" in catalog
        assert catalog.table("boats").num_rows == 3

    def test_register_under_custom_name(self):
        catalog = Catalog()
        catalog.register(_table(), name="other")
        assert "other" in catalog
        assert "boats" not in catalog

    def test_register_empty_name_rejected(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.register(_table(name=""))

    def test_register_factory_is_lazy(self):
        calls = []

        def factory() -> Table:
            calls.append(1)
            return _table("lazy")

        catalog = Catalog()
        catalog.register_factory("lazy", factory)
        assert "lazy" in catalog
        assert not calls
        catalog.table("lazy")
        catalog.table("lazy")
        assert len(calls) == 1

    def test_unknown_table(self):
        with pytest.raises(SchemaError):
            Catalog().table("missing")

    def test_names_iteration_len(self):
        catalog = Catalog()
        catalog.register(_table("b"))
        catalog.register_factory("a", lambda: _table("a"))
        assert catalog.names() == ["a", "b"]
        assert list(catalog) == ["a", "b"]
        assert len(catalog) == 2

    def test_drop(self):
        catalog = Catalog()
        catalog.register(_table())
        catalog.drop("boats")
        assert "boats" not in catalog


class TestEngines:
    def test_engine_is_cached(self):
        catalog = Catalog()
        catalog.register(_table())
        assert catalog.engine("boats") is catalog.engine("boats")

    def test_engine_with_options_is_fresh(self):
        catalog = Catalog()
        catalog.register(_table())
        default = catalog.engine("boats")
        custom = catalog.engine("boats", cache_size=0)
        assert custom is not default
        assert isinstance(custom, QueryEngine)

    def test_reregistering_invalidates_engine(self):
        catalog = Catalog()
        catalog.register(_table())
        old_engine = catalog.engine("boats")
        catalog.register(_table())
        assert catalog.engine("boats") is not old_engine


class TestDirectoryLoading:
    def test_load_directory(self, tmp_path):
        (tmp_path / "one.csv").write_text("a,b\n1,2\n", encoding="utf-8")
        (tmp_path / "two.csv").write_text("c\nx\n", encoding="utf-8")
        catalog = Catalog()
        registered = catalog.load_directory(tmp_path)
        assert registered == ["one", "two"]
        assert catalog.table("two").column_names == ["c"]

    def test_load_directory_requires_directory(self, tmp_path):
        with pytest.raises(SchemaError):
            Catalog().load_directory(tmp_path / "missing")

    def test_describe(self, tmp_path):
        catalog = Catalog()
        catalog.register(_table())
        catalog.register_factory("lazy", lambda: _table("lazy"))
        text = catalog.describe()
        assert "boats" in text
        assert "(lazy)" in text
