"""Unit tests for the skipping-index tier: zone maps, bitmap indexes,
feature resolution, cache peeking and mask-reuse implication algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import open_backend
from repro.errors import BackendError, StorageError, TypeMismatchError
from repro.sdl import (
    ExclusionPredicate,
    NoConstraint,
    RangePredicate,
    SDLQuery,
    SetPredicate,
)
from repro.storage import (
    DataType,
    QueryEngine,
    ResultCache,
    Table,
    build_column,
    predicate_implies,
    refinement_delta,
    resolve_index_features,
)
from repro.storage.expression import query_mask
from repro.storage.index import BitmapIndex
from repro.storage.partition import PartitionedTable
from repro.storage.zonemap import ZoneMap


def _int_column(values, name="num"):
    return build_column(name, values, DataType.INT)


def _str_column(values, name="cat"):
    return build_column(name, values, DataType.STRING)


def _bool_column(values, name="flag"):
    return build_column(name, values, DataType.BOOL)


class TestZoneMapNumeric:
    def test_statistics(self):
        zone = ZoneMap(_int_column([3, None, 7, 5]))
        assert zone.rows == 4
        assert zone.null_count == 1
        assert zone.valid_rows == 3
        assert zone.low == 3.0 and zone.high == 7.0
        assert zone.distinct == frozenset({3.0, 5.0, 7.0})

    def test_range_pruning(self):
        zone = ZoneMap(_int_column([10, 20, 30]))
        assert zone.allows(RangePredicate("num", 15, 25))
        assert not zone.allows(RangePredicate("num", 40, 50))
        assert not zone.allows(RangePredicate("num", 0, 5))
        # Exclusive bounds at the extremes.
        assert zone.allows(RangePredicate("num", 30, 99))
        assert not zone.allows(RangePredicate("num", 30, 99, include_low=False))

    def test_distinct_gap_pruning(self):
        # The range [11, 19] sits inside [10, 30] but between the points.
        zone = ZoneMap(_int_column([10, 20, 30]))
        assert not zone.allows(RangePredicate("num", 11, 19))

    def test_set_pruning_respects_int_truncation(self):
        # mask_set truncates float members to the INT dtype: 10.7 -> 10.
        zone = ZoneMap(_int_column([10, 20]))
        assert zone.allows(SetPredicate("num", frozenset({10.7})))
        assert not zone.allows(SetPredicate("num", frozenset({11.7})))

    def test_exclusion_pruning(self):
        zone = ZoneMap(_int_column([10, 10, 20]))
        assert zone.allows(ExclusionPredicate("num", frozenset({10})))
        assert not zone.allows(ExclusionPredicate("num", frozenset({10, 20})))

    def test_all_missing_shard_allows_nothing(self):
        zone = ZoneMap(_int_column([None, None]))
        assert not zone.allows(RangePredicate("num", 0, 100))
        assert not zone.allows(SetPredicate("num", frozenset({1})))
        assert not zone.allows(ExclusionPredicate("num", frozenset({1})))

    def test_bad_bound_raises_like_evaluation(self):
        zone = ZoneMap(_int_column([1, 2]))
        with pytest.raises(TypeMismatchError):
            zone.allows(RangePredicate("num", "aaa", "zzz"))


class TestZoneMapNominal:
    def test_string_set_and_exclusion(self):
        zone = ZoneMap(_str_column(["a", "b", None, "b"]))
        assert zone.distinct == frozenset({"a", "b"})
        assert zone.allows(SetPredicate("cat", frozenset({"b", "z"})))
        assert not zone.allows(SetPredicate("cat", frozenset({"z"})))
        assert zone.allows(ExclusionPredicate("cat", frozenset({"a"})))
        assert not zone.allows(ExclusionPredicate("cat", frozenset({"a", "b"})))

    def test_bool_range(self):
        zone = ZoneMap(_bool_column([False, False, None]))
        assert zone.allows(RangePredicate("flag", False, False))
        assert not zone.allows(RangePredicate("flag", True, True))

    def test_missing_only_set_is_empty_everywhere(self):
        zone = ZoneMap(_str_column(["a"]))
        assert not zone.allows(SetPredicate("cat", frozenset({None})))


class TestBitmapIndex:
    def test_matches_column_mask_set(self):
        column = _str_column(["a", "b", None, "a", "c"])
        index = BitmapIndex(column)
        for values in ({"a"}, {"b", "c"}, {"z"}, {"a", None}, {None}):
            expected = column.mask_set(frozenset(values))
            assert np.array_equal(index.mask_set(frozenset(values)), expected)

    def test_matches_column_mask_exclusion(self):
        column = _str_column(["a", "b", None, "a"])
        index = BitmapIndex(column)
        for values in ({"a"}, {"a", "b"}, {"z"}):
            expected = column.valid_mask() & ~column.mask_set(frozenset(values))
            assert np.array_equal(index.mask_exclusion(frozenset(values)), expected)

    def test_repeated_lookups_do_not_corrupt_bitmaps(self):
        column = _str_column(["a", "b", "a"])
        index = BitmapIndex(column)
        first = index.mask_set(frozenset({"a"})).copy()
        index.mask_set(frozenset({"a", "b"}))
        index.mask_exclusion(frozenset({"a"}))
        assert np.array_equal(index.mask_set(frozenset({"a"})), first)


class TestFeatureResolution:
    def test_legacy_forms(self):
        assert resolve_index_features(False) == frozenset()
        assert resolve_index_features(None) == frozenset()
        assert resolve_index_features(True) == frozenset({"sorted"})

    def test_strings(self):
        assert resolve_index_features("none") == frozenset()
        assert resolve_index_features("off") == frozenset()
        assert resolve_index_features("zonemap,bitmap") == frozenset(
            {"zonemap", "bitmap"}
        )
        assert resolve_index_features("all") == frozenset(
            {"sorted", "zonemap", "bitmap", "maskreuse"}
        )
        assert resolve_index_features(" Zonemap , MASKREUSE ") == frozenset(
            {"zonemap", "maskreuse"}
        )

    def test_iterables_and_idempotence(self):
        features = resolve_index_features(["zonemap", "bitmap"])
        assert features == frozenset({"zonemap", "bitmap"})
        assert resolve_index_features(features) == features

    def test_unknown_feature_raises(self):
        with pytest.raises(StorageError):
            resolve_index_features("zonemaps")

    def test_backend_spec_parses_features(self, voc_table):
        engine = open_backend("memory?index=zonemap,bitmap", voc_table)
        assert engine.index_features == frozenset({"zonemap", "bitmap"})
        assert open_backend("memory?index=all", voc_table).index_features == frozenset(
            {"sorted", "zonemap", "bitmap", "maskreuse"}
        )

    def test_backend_spec_typo_raises_backend_error(self, voc_table):
        with pytest.raises(BackendError):
            open_backend("memory?index=zonemapz", voc_table)

    def test_repr_shows_features(self, voc_table):
        assert "zonemap" in repr(QueryEngine(voc_table, use_index="zonemap"))
        assert "index=off" in repr(QueryEngine(voc_table))


class TestCachePeek:
    def test_peek_has_no_side_effects(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1, version=1)
        before = cache.stats().snapshot()
        assert cache.peek("a", version=1) == 1
        assert cache.peek("a", version=2) is None  # stale: no drop either
        assert cache.peek("missing") is None
        assert cache.stats().snapshot() == before
        assert cache.peek("a", version=1) == 1  # stale probe kept the entry

    def test_peek_does_not_refresh_lru(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")  # a get() here would mark "a" recently used
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_disabled_cache_peeks_none(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.peek("a") is None


class TestImplicationAlgebra:
    def setup_method(self):
        self.table = Table(
            "t",
            [
                _int_column([1, 2, 3, 4, 5]),
                _str_column(["a", "b", "c", "a", "b"]),
            ],
        )

    def test_predicate_implies_shapes(self):
        column = self.table.column("num")
        assert predicate_implies(
            RangePredicate("num", 2, 3), RangePredicate("num", 1, 4), column
        )
        assert not predicate_implies(
            RangePredicate("num", 0, 3), RangePredicate("num", 1, 4), column
        )
        assert predicate_implies(RangePredicate("num", 2, 3), NoConstraint("num"), column)
        cat = self.table.column("cat")
        assert predicate_implies(
            SetPredicate("cat", frozenset({"a"})),
            SetPredicate("cat", frozenset({"a", "b"})),
            cat,
        )
        assert predicate_implies(
            ExclusionPredicate("cat", frozenset({"a", "b"})),
            ExclusionPredicate("cat", frozenset({"a"})),
            cat,
        )
        # Cross-shape implication is deliberately not claimed.
        assert not predicate_implies(
            SetPredicate("num", frozenset({2})), RangePredicate("num", 1, 4), column
        )

    def test_refinement_delta_single_new_predicate(self):
        parent = SDLQuery([NoConstraint("num"), SetPredicate("cat", frozenset({"a"}))])
        child = SDLQuery(
            [RangePredicate("num", 2, 4), SetPredicate("cat", frozenset({"a"}))]
        )
        delta = refinement_delta(child, parent, self.table)
        assert delta == RangePredicate("num", 2, 4)

    def test_refinement_delta_rejects_tightened_predicates(self):
        parent = SDLQuery([SetPredicate("cat", frozenset({"a", "b"}))])
        child = SDLQuery([SetPredicate("cat", frozenset({"a"}))])
        assert refinement_delta(child, parent, self.table) is None

    def test_refinement_delta_rejects_two_deltas(self):
        parent = SDLQuery([NoConstraint("num"), NoConstraint("cat")])
        child = SDLQuery(
            [RangePredicate("num", 2, 4), SetPredicate("cat", frozenset({"a"}))]
        )
        assert refinement_delta(child, parent, self.table) is None

    def test_refinement_delta_requires_same_attributes(self):
        parent = SDLQuery([NoConstraint("num")])
        child = SDLQuery([RangePredicate("num", 2, 4), NoConstraint("cat")])
        assert refinement_delta(child, parent, self.table) is None


class TestSkippingIndexes:
    def test_skip_decisions_and_masks_agree(self):
        table = Table("t", [_int_column(sorted(range(100)))])
        partitioned = PartitionedTable(table, 5)
        skipping = partitioned.skipping()
        query = SDLQuery([RangePredicate("num", 5, 15)])
        decisions = skipping.skip_decisions(query)
        assert sum(decisions) == 4  # every 20-row shard beyond [0, 20)
        mask, skipped = skipping.query_mask(query)
        assert skipped == 4
        assert np.array_equal(mask, query_mask(table, query))
        count, skipped = skipping.count(query)
        assert (count, skipped) == (11, 4)

    def test_skipping_memo_shared_and_version_keyed(self, voc_table):
        partitioned = PartitionedTable(voc_table, 4)
        assert partitioned.skipping() is partitioned.skipping()
        engine = QueryEngine(voc_table, use_index="all", partitions=4)
        first = engine.partitioned_table.skipping()
        engine.ingest([next(iter(voc_table.iter_rows()))])
        assert engine.partitioned_table.skipping() is not first
