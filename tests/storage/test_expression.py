"""Unit tests for predicate/query evaluation into selection masks."""

from __future__ import annotations

import pytest

from repro.errors import UnknownColumnError
from repro.sdl import NoConstraint, RangePredicate, SDLQuery, SetPredicate
from repro.storage import Table
from repro.storage.expression import predicate_mask, query_mask


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        {
            "tonnage": [1000, 1100, 1200, 1300, None],
            "type": ["fluit", "jacht", "fluit", "galjoot", "fluit"],
        },
        name="boats",
    )


class TestPredicateMask:
    def test_no_constraint_selects_all(self, table):
        mask = predicate_mask(table, NoConstraint("tonnage"))
        assert mask.tolist() == [True] * 5

    def test_no_constraint_unknown_column(self, table):
        with pytest.raises(UnknownColumnError):
            predicate_mask(table, NoConstraint("missing"))

    def test_range_predicate(self, table):
        mask = predicate_mask(table, RangePredicate("tonnage", 1100, 1200))
        assert mask.tolist() == [False, True, True, False, False]

    def test_half_open_range_predicate(self, table):
        mask = predicate_mask(
            table, RangePredicate("tonnage", 1000, 1200, include_high=False)
        )
        assert mask.tolist() == [True, True, False, False, False]

    def test_set_predicate(self, table):
        mask = predicate_mask(table, SetPredicate("type", frozenset({"fluit"})))
        assert mask.tolist() == [True, False, True, False, True]

    def test_missing_values_never_match(self, table):
        mask = predicate_mask(table, RangePredicate("tonnage", 0, 10_000))
        assert mask.tolist()[-1] is False or mask.tolist()[-1] == False  # noqa: E712


class TestQueryMask:
    def test_conjunction(self, table):
        query = SDLQuery(
            [
                RangePredicate("tonnage", 1000, 1200),
                SetPredicate("type", frozenset({"fluit"})),
            ]
        )
        mask = query_mask(table, query)
        assert mask.tolist() == [True, False, True, False, False]

    def test_unconstrained_query_selects_all(self, table):
        query = SDLQuery.over(["tonnage", "type"])
        assert query_mask(table, query).sum() == 5

    def test_empty_query_selects_all(self, table):
        assert query_mask(table, SDLQuery()).sum() == 5

    def test_unconstrained_attribute_must_exist(self, table):
        query = SDLQuery([NoConstraint("missing")])
        with pytest.raises(UnknownColumnError):
            query_mask(table, query)

    def test_unsatisfiable_conjunction_is_empty(self, table):
        query = SDLQuery(
            [
                RangePredicate("tonnage", 1000, 1000),
                SetPredicate("type", frozenset({"jacht"})),
            ]
        )
        assert query_mask(table, query).sum() == 0

    def test_matches_row_and_mask_agree(self, table):
        query = SDLQuery(
            [
                RangePredicate("tonnage", 1050, 1300),
                SetPredicate("type", frozenset({"jacht", "galjoot"})),
            ]
        )
        mask = query_mask(table, query)
        for index, row in enumerate(table.iter_rows()):
            assert bool(mask[index]) == query.matches_row(row)
