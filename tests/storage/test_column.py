"""Unit tests for the typed column implementations."""

from __future__ import annotations

import datetime as dt

import numpy as np
import pytest

from repro.errors import EmptyColumnError, TypeMismatchError
from repro.storage.column import (
    BoolColumn,
    DateColumn,
    NumericColumn,
    StringColumn,
    build_column,
)
from repro.storage.types import DataType


class TestNumericColumn:
    def test_basic_aggregates(self):
        column = NumericColumn("x", [5, 1, 3, 2, 4], DataType.INT)
        assert len(column) == 5
        assert column.minimum() == 1
        assert column.maximum() == 5
        assert column.median() == 3

    def test_even_count_median_is_arithmetic(self):
        column = NumericColumn("x", [1, 2, 3, 4], DataType.INT)
        assert column.median() == pytest.approx(2.5)

    def test_missing_values_excluded(self):
        column = NumericColumn("x", [1, None, 3], DataType.INT)
        assert column.count_valid() == 2
        assert column.value_at(1) is None
        assert column.minimum() == 1
        assert column.maximum() == 3

    def test_empty_selection_raises(self):
        column = NumericColumn("x", [1, 2], DataType.INT)
        mask = np.zeros(2, dtype=bool)
        with pytest.raises(EmptyColumnError):
            column.minimum(mask)
        with pytest.raises(EmptyColumnError):
            column.median(mask)

    def test_value_counts(self):
        column = NumericColumn("x", [1, 1, 2, None], DataType.INT)
        assert column.value_counts() == {1: 2, 2: 1}
        assert column.distinct_count() == 2

    def test_mask_range_inclusivity(self):
        column = NumericColumn("x", [1, 2, 3, 4, 5], DataType.INT)
        closed = column.mask_range(2, 4)
        assert closed.tolist() == [False, True, True, True, False]
        half_open = column.mask_range(2, 4, include_high=False)
        assert half_open.tolist() == [False, True, True, False, False]

    def test_mask_range_excludes_missing(self):
        column = NumericColumn("x", [1, None, 3], DataType.INT)
        assert column.mask_range(0, 10).tolist() == [True, False, True]

    def test_mask_set(self):
        column = NumericColumn("x", [1, 2, 3], DataType.INT)
        assert column.mask_set([1, 3]).tolist() == [True, False, True]
        assert column.mask_set([]).tolist() == [False, False, False]

    def test_mask_range_rejects_non_numeric_bound(self):
        column = NumericColumn("x", [1, 2, 3], DataType.INT)
        with pytest.raises(TypeMismatchError):
            column.mask_range("abc", 5)

    def test_take_and_filter(self):
        column = NumericColumn("x", [10, 20, 30, 40], DataType.INT)
        taken = column.take(np.array([2, 0]))
        assert taken.values_list() == [30, 10]
        filtered = column.filter(np.array([True, False, True, False]))
        assert filtered.values_list() == [10, 30]

    def test_float_column_decoding(self):
        column = NumericColumn("x", [1.5, 2.5], DataType.FLOAT)
        assert column.value_at(0) == pytest.approx(1.5)
        assert isinstance(column.value_at(0), float)

    def test_masked_aggregate(self):
        column = NumericColumn("x", [1, 2, 3, 4], DataType.INT)
        mask = np.array([False, True, True, False])
        assert column.minimum(mask) == 2
        assert column.maximum(mask) == 3

    def test_mask_length_mismatch_rejected(self):
        column = NumericColumn("x", [1, 2, 3], DataType.INT)
        with pytest.raises(TypeMismatchError):
            column.count_valid(np.array([True, False]))


class TestDateColumn:
    def test_stores_and_decodes_dates(self):
        column = DateColumn("d", ["2020-01-01", dt.date(2021, 6, 1), None])
        assert column.value_at(0) == dt.date(2020, 1, 1)
        assert column.value_at(1) == dt.date(2021, 6, 1)
        assert column.value_at(2) is None

    def test_aggregates_return_dates(self):
        column = DateColumn("d", ["2020-01-01", "2020-01-03", "2020-01-05"])
        assert column.minimum() == dt.date(2020, 1, 1)
        assert column.maximum() == dt.date(2020, 1, 5)
        assert column.median() == dt.date(2020, 1, 3)

    def test_mask_range_accepts_dates_and_strings(self):
        column = DateColumn("d", ["2020-01-01", "2020-06-01", "2021-01-01"])
        mask = column.mask_range("2020-02-01", dt.date(2020, 12, 31))
        assert mask.tolist() == [False, True, False]

    def test_take_preserves_type(self):
        column = DateColumn("d", ["2020-01-01", "2020-06-01"])
        taken = column.take(np.array([1]))
        assert isinstance(taken, DateColumn)
        assert taken.value_at(0) == dt.date(2020, 6, 1)


class TestStringColumn:
    def test_dictionary_encoding(self):
        column = StringColumn("s", ["a", "b", "a", None])
        assert column.categories == ["a", "b"]
        assert column.value_at(0) == "a"
        assert column.value_at(3) is None
        assert column.count_valid() == 3

    def test_value_counts(self):
        column = StringColumn("s", ["a", "b", "a", None])
        assert column.value_counts() == {"a": 2, "b": 1}

    def test_mask_set_and_unknown_values(self):
        column = StringColumn("s", ["a", "b", "c"])
        assert column.mask_set(["a", "z"]).tolist() == [True, False, False]
        assert column.mask_set(["z"]).tolist() == [False, False, False]

    def test_mask_range_lexicographic(self):
        column = StringColumn("s", ["apple", "banana", "cherry"])
        assert column.mask_range("b", "c").tolist() == [False, True, False]

    def test_median_not_defined(self):
        column = StringColumn("s", ["a", "b"])
        with pytest.raises(TypeMismatchError):
            column.median()

    def test_min_max_lexicographic(self):
        column = StringColumn("s", ["pear", "apple", "cherry"])
        assert column.minimum() == "apple"
        assert column.maximum() == "pear"

    def test_empty_selection_raises(self):
        column = StringColumn("s", ["a"])
        with pytest.raises(EmptyColumnError):
            column.minimum(np.array([False]))

    def test_take_preserves_dictionary(self):
        column = StringColumn("s", ["a", "b", "c"])
        taken = column.take(np.array([2, 1]))
        assert taken.values_list() == ["c", "b"]

    def test_non_string_values_are_stringified(self):
        column = StringColumn("s", [200, 404, 200])
        assert column.value_counts() == {"200": 2, "404": 1}


class TestBoolColumn:
    def test_value_counts(self):
        column = BoolColumn("b", [True, False, True, None])
        assert column.value_counts() == {False: 1, True: 2}

    def test_mask_set(self):
        column = BoolColumn("b", [True, False, None])
        assert column.mask_set([True]).tolist() == [True, False, False]
        assert column.mask_set([True, False]).tolist() == [True, True, False]
        assert column.mask_set([]).tolist() == [False, False, False]

    def test_mask_range(self):
        column = BoolColumn("b", [True, False, True])
        assert column.mask_range(False, False).tolist() == [False, True, False]

    def test_median_not_defined(self):
        with pytest.raises(TypeMismatchError):
            BoolColumn("b", [True]).median()

    def test_min_max(self):
        column = BoolColumn("b", [True, False])
        assert column.minimum() is False
        assert column.maximum() is True

    def test_coercion_from_text(self):
        column = BoolColumn("b", ["true", "false", "1", "no"])
        assert column.values_list() == [True, False, True, False]


class TestBuildColumn:
    @pytest.mark.parametrize(
        ("dtype", "values", "expected_class"),
        [
            (DataType.INT, [1, 2], NumericColumn),
            (DataType.FLOAT, [1.0, 2.0], NumericColumn),
            (DataType.DATE, ["2020-01-01"], DateColumn),
            (DataType.STRING, ["a"], StringColumn),
            (DataType.BOOL, [True], BoolColumn),
        ],
    )
    def test_factory_dispatch(self, dtype, values, expected_class):
        column = build_column("c", values, dtype)
        assert isinstance(column, expected_class)
        assert column.dtype is dtype
