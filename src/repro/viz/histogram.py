"""Per-segment attribute distributions (paper, Section 5.2).

"The only information that Charles gives about the segments is their
counts.  It may be interesting to display more.  For instance, the
distribution of some attributes could be plotted."  These renderers do
exactly that in plain text:

* :func:`value_histogram` — a horizontal-bar histogram of one attribute
  under one query;
* :func:`segment_distributions` — the same attribute plotted side by side
  for every segment of a segmentation, so deviations from the context
  distribution are visible at a glance;
* :func:`numeric_sparkline` — a compact unicode sparkline of a numeric
  attribute's binned distribution, used inside the report views.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import VisualizationError
from repro.sdl.formatter import format_segment_label
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend

__all__ = ["value_histogram", "segment_distributions", "numeric_sparkline"]

_BAR = "▇"
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def value_histogram(
    engine: ExecutionBackend,
    attribute: str,
    query: Optional[SDLQuery] = None,
    width: int = 30,
    max_values: int = 10,
) -> str:
    """Horizontal-bar histogram of ``attribute`` under ``query``.

    Nominal attributes show their most frequent values; numeric attributes
    are shown value by value only when few distinct values exist, otherwise
    use :func:`numeric_sparkline`.
    """
    if width < 4:
        raise VisualizationError("histogram width must be at least 4")
    frequencies = engine.value_frequencies(attribute, query)
    if not frequencies:
        return f"{attribute}: (no values)"
    ordered = sorted(frequencies.items(), key=lambda kv: (-kv[1], str(kv[0])))
    shown = ordered[:max_values]
    hidden = ordered[max_values:]
    largest = max(count for _, count in shown)
    label_width = max(len(str(value)) for value, _ in shown)
    lines = [f"{attribute}:"]
    for value, count in shown:
        bar = _BAR * max(1, int(round(width * count / largest)))
        lines.append(f"  {str(value):<{label_width}}  {bar} {count}")
    if hidden:
        rest = sum(count for _, count in hidden)
        lines.append(f"  (+{len(hidden)} more values, {rest} rows)")
    return "\n".join(lines)


def numeric_sparkline(
    engine: ExecutionBackend,
    attribute: str,
    query: Optional[SDLQuery] = None,
    bins: int = 16,
) -> str:
    """A one-line sparkline of a numeric attribute's binned distribution."""
    if bins < 2:
        raise VisualizationError("a sparkline needs at least 2 bins")
    column = engine.table.column(attribute)
    if not column.dtype.is_numeric:
        raise VisualizationError(f"column {attribute!r} is not numeric")
    mask = None if query is None else engine.evaluate(query)
    values = [v for v in column.values_list(mask) if v is not None]
    if not values:
        return "(empty)"
    numeric = np.asarray(
        [v.toordinal() if hasattr(v, "toordinal") else float(v) for v in values],
        dtype=np.float64,
    )
    low, high = float(numeric.min()), float(numeric.max())
    if low == high:
        return _SPARK_LEVELS[-1] * bins
    histogram, _ = np.histogram(numeric, bins=bins, range=(low, high))
    top = histogram.max()
    glyphs = [
        _SPARK_LEVELS[int(round((len(_SPARK_LEVELS) - 1) * count / top))] if top else _SPARK_LEVELS[0]
        for count in histogram
    ]
    return "".join(glyphs)


def segment_distributions(
    engine: ExecutionBackend,
    segmentation: Segmentation,
    attribute: str,
    width: int = 24,
    max_values: int = 6,
) -> str:
    """The distribution of one attribute inside every segment, plus the context.

    Nominal attributes are shown as per-value percentage bars; numeric
    attributes as sparklines over a shared range.  The context row comes
    first, so per-segment deviations are immediately visible.
    """
    column = engine.table.column(attribute)
    lines = [f"distribution of {attribute!r} per segment:"]
    if column.dtype.is_numeric:
        lines.append(f"  context  {numeric_sparkline(engine, attribute, segmentation.context)}")
        for segment in segmentation.segments:
            label = format_segment_label(segment.query, segmentation.context, max_length=36)
            spark = numeric_sparkline(engine, attribute, segment.query)
            lines.append(f"  {spark}  {label}")
        return "\n".join(lines)

    context_frequencies = engine.value_frequencies(attribute, segmentation.context)
    ordered_values = [
        value
        for value, _ in sorted(
            context_frequencies.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )[:max_values]
    ]
    lines.append(_nominal_row(engine, segmentation.context, attribute, ordered_values,
                              "context", width))
    for segment in segmentation.segments:
        label = format_segment_label(segment.query, segmentation.context, max_length=36)
        lines.append(_nominal_row(engine, segment.query, attribute, ordered_values,
                                  label, width))
    return "\n".join(lines)


def _nominal_row(
    engine: ExecutionBackend,
    query: SDLQuery,
    attribute: str,
    ordered_values: Sequence,
    label: str,
    width: int,
) -> str:
    frequencies = engine.value_frequencies(attribute, query)
    total = sum(frequencies.values())
    cells: List[str] = []
    for value in ordered_values:
        share = frequencies.get(value, 0) / total if total else 0.0
        bar_length = int(round(share * width / max(1, len(ordered_values))))
        cells.append(f"{str(value)[:8]}:{_BAR * max(0, bar_length)}{share:>5.0%}")
    return "  " + "  ".join(cells) + f"   [{label}]"
