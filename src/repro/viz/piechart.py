"""Terminal pie charts.

The Figure 1 interface represents each segmentation as a pie chart whose
slices are SDL queries.  Headless reproduction cannot open a GUI, so this
module renders the same information as text: a proportional bar per
segment (the "slice"), its cover, its count and its short label, plus a
compact one-line variant used in ranked answer lists.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import VisualizationError
from repro.sdl.formatter import format_segment_label
from repro.sdl.segmentation import Segmentation

__all__ = ["pie_chart", "compact_pie", "slice_fractions"]

_FULL_BLOCK = "█"
_LIGHT_BLOCK = "░"
_SLICE_GLYPHS = "●◐○◑◒◓◔◕◖◗◍◎"


def slice_fractions(segmentation: Segmentation) -> List[float]:
    """The cover of each segment relative to the context, in segment order."""
    return list(segmentation.covers)


def pie_chart(
    segmentation: Segmentation,
    width: int = 40,
    sort_by_cover: bool = True,
    max_slices: Optional[int] = None,
    show_labels: bool = True,
) -> str:
    """Render a segmentation as a textual pie chart (one bar per slice).

    Parameters
    ----------
    width:
        Number of character cells representing 100% of the context.
    sort_by_cover:
        Largest slices first (how the interface orders them).
    max_slices:
        Collapse the smallest slices beyond this bound into an "other"
        line (the paper's "more than a dozen slices is hard to read").
    show_labels:
        Include the SDL label of each slice.
    """
    if width < 4:
        raise VisualizationError(f"pie chart width must be at least 4, got {width}")
    order = list(range(segmentation.depth))
    if sort_by_cover:
        order.sort(key=lambda index: segmentation.segments[index].count, reverse=True)

    collapsed_count = 0
    collapsed_cover = 0.0
    if max_slices is not None and len(order) > max_slices:
        for index in order[max_slices:]:
            collapsed_count += segmentation.segments[index].count
            collapsed_cover += segmentation.covers[index]
        order = order[:max_slices]

    lines = [
        f"pie: {segmentation.depth} slices over {segmentation.context_count} rows "
        f"(cut on {', '.join(segmentation.cut_attributes) or '-'})"
    ]
    for index in order:
        segment = segmentation.segments[index]
        cover = segmentation.covers[index]
        filled = int(round(cover * width))
        bar = _FULL_BLOCK * filled + _LIGHT_BLOCK * (width - filled)
        label = ""
        if show_labels:
            label = "  " + format_segment_label(segment.query, segmentation.context)
        lines.append(f"  {bar} {cover:6.1%} ({segment.count}){label}")
    if collapsed_count:
        filled = int(round(collapsed_cover * width))
        bar = _FULL_BLOCK * filled + _LIGHT_BLOCK * (width - filled)
        lines.append(
            f"  {bar} {collapsed_cover:6.1%} ({collapsed_count})  …other slices"
        )
    return "\n".join(lines)


def compact_pie(segmentation: Segmentation, width: int = 24) -> str:
    """A single-line proportional strip, one glyph run per slice.

    Used in the ranked answer list where each candidate gets one line, as
    in Figure 1's top panel.
    """
    if width < len(segmentation.segments):
        width = len(segmentation.segments)
    pieces: List[str] = []
    order = sorted(
        range(segmentation.depth),
        key=lambda index: segmentation.segments[index].count,
        reverse=True,
    )
    remaining = width
    for position, index in enumerate(order):
        cover = segmentation.covers[index]
        glyph = _SLICE_GLYPHS[position % len(_SLICE_GLYPHS)]
        cells = max(1, int(round(cover * width)))
        cells = min(cells, remaining - (len(order) - position - 1))
        cells = max(1, cells)
        pieces.append(glyph * cells)
        remaining -= cells
        if remaining <= 0:
            break
    return "[" + "".join(pieces)[:width].ljust(width) + "]"
