"""Multi-level pies (paper, Section 5.2).

"The display could be clarified with hierarchical visualizations, such as
tree-maps or multi-level pies."  HB-cuts builds its answers by composing
cuts attribute by attribute, so every composed segmentation has a natural
hierarchy: the outer level groups segments by their predicate on the first
cut attribute, the next level by the second, and so on.

:func:`hierarchy_of` recovers that tree from an ordinary
:class:`~repro.sdl.segmentation.Segmentation`, and :func:`multilevel_pie`
renders it as indented, proportionally-sized rings — the textual
equivalent of a sunburst / multi-level pie chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import VisualizationError
from repro.sdl.predicates import Predicate
from repro.sdl.segmentation import Segmentation

__all__ = ["HierarchyNode", "hierarchy_of", "multilevel_pie"]

_FULL_BLOCK = "█"
_LIGHT_BLOCK = "░"


@dataclass
class HierarchyNode:
    """One ring sector of the multi-level pie.

    Attributes
    ----------
    label:
        The SDL text of the predicate this sector adds (or ``"(all)"`` at
        the root).
    count:
        Rows captured by the sector (sum over its leaves).
    depth:
        0 for the root, 1 for the outermost ring, and so on.
    children:
        Sub-sectors on the next cut attribute.
    segment_indexes:
        Indexes (into the segmentation's segment list) of the leaves below
        this sector.
    """

    label: str
    count: int
    depth: int
    children: List["HierarchyNode"] = field(default_factory=list)
    segment_indexes: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def hierarchy_of(
    segmentation: Segmentation, attribute_order: Optional[Sequence[str]] = None
) -> HierarchyNode:
    """Group a segmentation's segments into the cut-attribute hierarchy.

    Parameters
    ----------
    attribute_order:
        The nesting order; defaults to the segmentation's
        :attr:`~repro.sdl.segmentation.Segmentation.cut_attributes`.

    Raises
    ------
    VisualizationError
        If the segmentation carries no cut attributes to group by.
    """
    order = list(attribute_order) if attribute_order is not None else list(
        segmentation.cut_attributes
    )
    if not order:
        raise VisualizationError(
            "the segmentation carries no cut attributes; nothing to nest by"
        )
    root = HierarchyNode(label="(all)", count=segmentation.covered_count, depth=0)
    root.segment_indexes = list(range(segmentation.depth))
    _split_node(root, segmentation, order)
    return root


def _predicate_label(predicate: Optional[Predicate]) -> str:
    if predicate is None or not predicate.is_constrained:
        return "(any)"
    return predicate.to_sdl()


def _split_node(node: HierarchyNode, segmentation: Segmentation, order: Sequence[str]) -> None:
    if node.depth >= len(order):
        return
    attribute = order[node.depth]
    groups: Dict[str, HierarchyNode] = {}
    for index in node.segment_indexes:
        segment = segmentation.segments[index]
        label = _predicate_label(segment.query.predicate_for(attribute))
        child = groups.get(label)
        if child is None:
            child = HierarchyNode(label=label, count=0, depth=node.depth + 1)
            groups[label] = child
            node.children.append(child)
        child.count += segment.count
        child.segment_indexes.append(index)
    node.children.sort(key=lambda child: child.count, reverse=True)
    for child in node.children:
        _split_node(child, segmentation, order)


def multilevel_pie(
    segmentation: Segmentation,
    width: int = 36,
    attribute_order: Optional[Sequence[str]] = None,
    show_counts: bool = True,
) -> str:
    """Render a composed segmentation as an indented multi-level pie.

    Each line is one sector: the bar length is proportional to the sector's
    share of the context, indentation encodes the ring (cut attribute), and
    the label shows the predicate the ring adds.
    """
    if width < 8:
        raise VisualizationError("multi-level pie width must be at least 8")
    root = hierarchy_of(segmentation, attribute_order)
    total = max(1, root.count)
    lines = [
        f"multi-level pie over [{', '.join(attribute_order or segmentation.cut_attributes)}] "
        f"({segmentation.depth} leaf segments, {root.count} rows)"
    ]

    def render(node: HierarchyNode) -> None:
        for child in node.children:
            share = child.count / total
            filled = max(1, int(round(share * width)))
            bar = _FULL_BLOCK * filled + _LIGHT_BLOCK * (width - filled)
            indent = "  " * child.depth
            suffix = f" {share:6.1%}"
            if show_counts:
                suffix += f" ({child.count})"
            lines.append(f"{indent}{bar}{suffix}  {child.label}")
            render(child)

    render(root)
    return "\n".join(lines)
