"""Text tree maps.

Section 5.2 suggests hierarchical visualisations such as tree maps as an
improvement over pie charts.  This module lays a segmentation out as a
character-grid tree map using the slice-and-dice algorithm: the rectangle
is split along its longer side proportionally to segment covers, recursing
over the remaining segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import VisualizationError
from repro.sdl.formatter import format_segment_label
from repro.sdl.segmentation import Segmentation

__all__ = ["TreemapCell", "treemap_layout", "treemap"]

_FILL_GLYPHS = "█▓▒░▞▚▜▛▟▙◆◇"


@dataclass(frozen=True)
class TreemapCell:
    """One laid-out rectangle of the tree map (grid coordinates, inclusive-exclusive)."""

    segment_index: int
    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        return self.width * self.height


def treemap_layout(
    weights: Sequence[float], width: int, height: int
) -> List[TreemapCell]:
    """Slice-and-dice layout of ``weights`` into a ``width × height`` grid.

    Zero-weight entries receive no cell.  The recursion splits the current
    rectangle along its longer side at the proportional position of the
    first weight, which keeps every cell a contiguous rectangle.
    """
    if width <= 0 or height <= 0:
        raise VisualizationError("treemap dimensions must be positive")
    total = float(sum(weights))
    if total <= 0:
        raise VisualizationError("treemap weights must not all be zero")
    indexed = [(index, weight) for index, weight in enumerate(weights) if weight > 0]
    cells: List[TreemapCell] = []
    _slice_and_dice(indexed, 0, 0, width, height, cells)
    return sorted(cells, key=lambda cell: cell.segment_index)


def _slice_and_dice(
    entries: List[Tuple[int, float]],
    x0: int,
    y0: int,
    x1: int,
    y1: int,
    cells: List[TreemapCell],
) -> None:
    if not entries or x1 <= x0 or y1 <= y0:
        return
    if len(entries) == 1:
        cells.append(TreemapCell(entries[0][0], x0, y0, x1, y1))
        return
    index, weight = entries[0]
    rest = entries[1:]
    total = weight + sum(w for _, w in rest)
    fraction = weight / total if total > 0 else 0.0
    width, height = x1 - x0, y1 - y0
    if width >= height:
        split = x0 + max(1, min(width - len(rest), int(round(fraction * width))))
        cells.append(TreemapCell(index, x0, y0, split, y1))
        _slice_and_dice(rest, split, y0, x1, y1, cells)
    else:
        split = y0 + max(1, min(height - len(rest), int(round(fraction * height))))
        cells.append(TreemapCell(index, x0, y0, x1, split))
        _slice_and_dice(rest, x0, split, x1, y1, cells)


def treemap(
    segmentation: Segmentation,
    width: int = 48,
    height: int = 12,
    show_legend: bool = True,
) -> str:
    """Render a segmentation as a character-grid tree map with a legend."""
    if width < 4 or height < 2:
        raise VisualizationError("treemap must be at least 4 columns by 2 rows")
    order = sorted(
        range(segmentation.depth),
        key=lambda index: segmentation.segments[index].count,
        reverse=True,
    )
    weights = [segmentation.segments[index].count for index in order]
    if sum(weights) == 0:
        raise VisualizationError("cannot draw a treemap of an empty segmentation")
    cells = treemap_layout(weights, width, height)

    grid = [[" "] * width for _ in range(height)]
    for cell in cells:
        glyph = _FILL_GLYPHS[cell.segment_index % len(_FILL_GLYPHS)]
        for y in range(cell.y0, cell.y1):
            for x in range(cell.x0, cell.x1):
                grid[y][x] = glyph
    lines = ["".join(row) for row in grid]

    if show_legend:
        lines.append("")
        for position, index in enumerate(order):
            if position >= len(cells):
                break
            glyph = _FILL_GLYPHS[position % len(_FILL_GLYPHS)]
            segment = segmentation.segments[index]
            label = format_segment_label(segment.query, segmentation.context)
            cover = segmentation.covers[index]
            lines.append(f" {glyph}  {cover:6.1%} ({segment.count})  {label}")
    return "\n".join(lines)
