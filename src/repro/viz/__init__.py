"""Terminal visualisations of segmentations and advice.

The original Charles GUI (Figure 1) displays pie charts and could be
extended with tree maps (Section 5.2).  These renderers produce the same
information as plain text so examples, the CLI and the benchmarks stay
headless.
"""

from repro.viz.piechart import compact_pie, pie_chart, slice_fractions
from repro.viz.treemap import TreemapCell, treemap, treemap_layout
from repro.viz.histogram import (
    numeric_sparkline,
    segment_distributions,
    value_histogram,
)
from repro.viz.multilevel import HierarchyNode, hierarchy_of, multilevel_pie
from repro.viz.report import (
    render_advice,
    render_answer,
    render_answer_list,
    render_context,
)

__all__ = [
    "pie_chart",
    "compact_pie",
    "slice_fractions",
    "treemap",
    "treemap_layout",
    "TreemapCell",
    "value_histogram",
    "numeric_sparkline",
    "segment_distributions",
    "HierarchyNode",
    "hierarchy_of",
    "multilevel_pie",
    "render_advice",
    "render_answer",
    "render_answer_list",
    "render_context",
]
