"""Ranked-answer reports: the textual equivalent of the Figure 1 interface.

The Charles GUI shows three panels: the context (left), the ranked list of
candidate segmentations (top), and the currently selected segmentation
(centre).  :func:`render_advice` produces the same three blocks as text,
using the pie chart and tree map renderers for the detail view.
"""

from __future__ import annotations

from typing import Optional

from repro.core.advisor import Advice, RankedAnswer
from repro.viz.piechart import compact_pie, pie_chart
from repro.viz.treemap import treemap

__all__ = ["render_context", "render_answer_list", "render_answer", "render_advice"]


def render_context(advice: Advice) -> str:
    """The left panel: the context query, one predicate per line."""
    lines = ["context:"]
    for predicate in advice.context.predicates:
        lines.append(f"  {predicate.to_sdl()}")
    if advice.engine_operations:
        operations = advice.engine_operations.get("total_database_operations")
        if operations is not None:
            lines.append(f"  ({operations} database operations issued)")
    return "\n".join(lines)


def render_answer_list(advice: Advice, width: int = 24) -> str:
    """The top panel: one line per ranked answer with a compact pie strip."""
    lines = [f"ranked answers ({advice.ranker_name}):"]
    for answer in advice.answers:
        title = ", ".join(answer.attributes) or "(no attribute)"
        lines.append(
            f"  #{answer.rank:<2} {compact_pie(answer.segmentation, width=width)} "
            f"E={answer.scores.entropy:5.2f}  breadth={answer.scores.breadth}  "
            f"depth={answer.scores.depth:<3} {title}"
        )
    return "\n".join(lines)


def render_answer(
    answer: RankedAnswer,
    style: str = "pie",
    width: int = 40,
    height: int = 10,
) -> str:
    """The main panel: the selected segmentation in detail.

    ``style`` selects the renderer: ``"pie"`` (default), ``"treemap"``, or
    ``"table"`` (plain per-segment listing).
    """
    if style == "treemap":
        return treemap(answer.segmentation, width=width, height=height)
    if style == "table":
        return answer.describe()
    return pie_chart(answer.segmentation, width=width)


def render_advice(
    advice: Advice,
    selected: int = 0,
    style: str = "pie",
    width: int = 40,
    height: int = 10,
    max_answers: Optional[int] = None,
) -> str:
    """Render the full three-panel view for one advice.

    Parameters
    ----------
    selected:
        Index of the answer shown in the detail panel.
    style:
        Detail renderer (``"pie"``, ``"treemap"`` or ``"table"``).
    max_answers:
        Truncate the answer list (None shows everything).
    """
    shown = advice
    if max_answers is not None and len(advice.answers) > max_answers:
        shown = Advice(
            context=advice.context,
            answers=advice.answers[:max_answers],
            trace=advice.trace,
            ranker_name=advice.ranker_name,
            engine_operations=advice.engine_operations,
        )
    blocks = [render_context(shown), "", render_answer_list(shown)]
    if shown.answers:
        selected = max(0, min(selected, len(shown.answers) - 1))
        blocks.extend(["", f"selected answer #{shown.answers[selected].rank}:",
                       render_answer(shown.answers[selected], style=style,
                                     width=width, height=height)])
    return "\n".join(blocks)
