"""Named exploration sessions managed by the advisor service.

A :class:`ServiceSession` pairs one user-visible session name with a
:class:`~repro.core.session.ExplorationSession` whose advisor runs on a
:class:`~repro.service.batching.BatchedEngine` — a per-session engine that
shares the table's result cache and coalesces batched passes with other
sessions.  The session object itself stays thin: navigation state lives in
the exploration stack, all heavy lifting in the table runtime.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.core.advisor import Advice, Charles, ContextLike
from repro.core.session import ExplorationSession
from repro.errors import SessionError

__all__ = ["ServiceSession"]


class ServiceSession:
    """One named, concurrent-safe exploration session over a shared table.

    Parameters
    ----------
    name:
        The service-wide unique session name.
    table_name:
        Name the backing table was registered under.
    advisor:
        A :class:`~repro.core.advisor.Charles` whose engine shares the
        table runtime's cache.
    max_answers:
        Ranked answers requested at each step.
    advise_fn:
        Service hook that serves advice from the shared advice cache.
    """

    def __init__(
        self,
        name: str,
        table_name: str,
        advisor: Charles,
        max_answers: int = 10,
        advise_fn=None,
    ):
        self.name = name
        self.table_name = table_name
        self.advisor = advisor
        self.exploration = ExplorationSession(
            advisor=advisor, max_answers=max_answers, advise_fn=advise_fn
        )
        self.requests = 0
        self._lock = threading.RLock()

    # -- the Figure 1 loop --------------------------------------------------

    def advise(
        self,
        context: ContextLike = None,
        refresh: bool = False,
        mode: str = "exact",
    ) -> Advice:
        """Start (or restart) the session at a context and return advice.

        With ``refresh=True`` and no ``context``, the advice of the
        *current* context is recomputed against the newest data version
        instead of restarting the exploration — the way to clear the
        stale flag after an ingest without losing the drill-down stack.

        With ``mode="interactive"`` the advice is ranked from the sketch
        tier (``approximate`` flag and ``error_bound`` set on the advice)
        and an exact refinement starts in the background; collect it with
        :meth:`refine`.
        """
        with self._lock:
            self.requests += 1
            if refresh and context is None and self.exploration.started:
                return self.exploration.advise(refresh=True, mode=mode)
            return self.exploration.start(context, mode=mode)

    def refine(self, timeout: Optional[float] = None) -> Advice:
        """Exact advice at the current context, replacing an approximate one."""
        with self._lock:
            self.requests += 1
            if not self.exploration.started:
                raise SessionError(
                    f"session {self.name!r} has no context yet; submit an advise first"
                )
            return self.exploration.refine(timeout=timeout)

    def drill(self, answer_index: int, segment_index: int) -> Advice:
        """Drill into one segment of one ranked answer."""
        with self._lock:
            self.requests += 1
            if not self.exploration.started:
                raise SessionError(
                    f"session {self.name!r} has no context yet; submit an advise first"
                )
            return self.exploration.drill(answer_index, segment_index)

    def back(self) -> Advice:
        """Pop one drill-down level and return the advice at the restored context."""
        with self._lock:
            self.requests += 1
            self.exploration.back()
            return self.exploration.advise()

    def current_advice(self) -> Optional[Advice]:
        """The advice at the current context, or ``None`` before the first advise."""
        with self._lock:
            if not self.exploration.started:
                return None
            return self.exploration.advise()

    # -- reporting ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return self.exploration.depth if self.exploration.started else 0

    @property
    def data_version(self) -> Optional[int]:
        """The backing table's current data version."""
        return self.exploration.data_version

    @property
    def stale(self) -> bool:
        """Whether the current advice predates the newest data version."""
        with self._lock:
            return self.exploration.is_stale()

    def breadcrumbs(self) -> List[str]:
        with self._lock:
            if not self.exploration.started:
                return []
            return self.exploration.breadcrumbs()

    def stats(self) -> Dict[str, Any]:
        """Per-session counters: requests, staleness and engine operations."""
        with self._lock:
            return {
                "name": self.name,
                "table": self.table_name,
                "requests": self.requests,
                "depth": self.depth,
                "data_version": self.exploration.data_version,
                "stale": self.exploration.is_stale(),
                "engine_operations": self.advisor.engine.counter.snapshot(),
            }

    def describe(self) -> str:
        with self._lock:
            header = f"session {self.name!r} on table {self.table_name!r}"
            if not self.exploration.started:
                return header + " (no context yet)"
            return header + "\n" + self.exploration.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceSession(name={self.name!r}, table={self.table_name!r}, "
            f"requests={self.requests}, depth={self.depth})"
        )
