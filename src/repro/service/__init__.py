"""Service layer: concurrent exploration sessions over shared tables.

The paper observes (Section 5.1) that Charles issues only two kinds of
back-end operations — medians and counts over predicates — which makes the
advisor embarrassingly cacheable and batchable across users.  This package
is the subsystem built on that observation:

* :mod:`repro.service.service` — :class:`AdvisorService`, the session
  pool, per-table shared caches and the ``submit``/``serve`` entry points;
* :mod:`repro.service.sessions` — :class:`ServiceSession`, one named
  drill-down session backed by the shared runtime;
* :mod:`repro.service.batching` — :class:`BatchCoordinator` and
  :class:`BatchedEngine`, which merge concurrent HB-cuts INDEP passes
  into single multi-query engine evaluations.

``ServiceRequest``/``ServiceResponse`` are the wire envelopes of
:mod:`repro.api.protocol` (the historical dataclasses were refactored
into them), so :meth:`AdvisorService.submit` speaks the same versioned
protocol the HTTP server (:mod:`repro.api.server`) puts on the network.

The CLI's ``serve`` sub-command and benchmark E12 drive this layer with
the multi-user scenarios of :mod:`repro.workloads.concurrent`;
``serve --http`` exposes it to remote
:class:`~repro.api.client.RemoteAdvisor` clients.
"""

from repro.service.batching import BatchCoordinator, BatchedEngine, BatchStats
from repro.service.service import (
    AdvisorService,
    ServiceReport,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.sessions import ServiceSession

__all__ = [
    "AdvisorService",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceReport",
    "ServiceSession",
    "BatchCoordinator",
    "BatchedEngine",
    "BatchStats",
]
