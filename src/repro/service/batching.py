"""Cross-session request batching for the advisor service.

The paper (Section 5.1) notes that Charles issues only medians and counts
over predicates; HB-cuts in particular spends most of its time computing
counts for the cells of candidate products.  When several users explore
the same table concurrently, those counts can be grouped into *single
multi-query engine passes*:

* :class:`BatchCoordinator` — a small leader/follower coalescer.  The
  first thread to submit in a round becomes the leader, waits a short
  window for concurrent submitters, then executes every pending request in
  one :meth:`~repro.backends.base.ExecutionBackend.count_batch` call
  (duplicate signatures across users are evaluated once).
* :class:`BatchedEngine` — the per-session engine handed to each
  :class:`~repro.core.advisor.Charles` instance.  It shares the table's
  :class:`~repro.storage.cache.ResultCache` and routes its batched count
  passes through the coordinator, so HB-cuts runs from different sessions
  coalesce transparently.

Correctness does not depend on the coordinator: every path degrades to the
engine's own (deterministic) evaluation, and a follower that times out
simply computes its batch directly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backends.base import BackendWrapper, ExecutionBackend
from repro.sdl.formatter import query_signature
from repro.sdl.query import SDLQuery
from repro.storage.cache import ResultCache
from repro.storage.table import Table

__all__ = ["BatchStats", "BatchCoordinator", "BatchedEngine"]


@dataclass
class BatchStats:
    """Tally of the coordinator's coalescing behaviour.

    Attributes
    ----------
    passes:
        Multi-query engine passes executed.
    requests:
        Individual :meth:`BatchCoordinator.counts` submissions served.
    queries:
        Total queries submitted across all requests.
    unique_queries:
        Queries actually evaluated after signature-level deduplication;
        ``queries - unique_queries`` is the work the batching removed.
    fallbacks:
        Requests answered directly after a wait timeout (should stay 0).
    """

    passes: int = 0
    requests: int = 0
    queries: int = 0
    unique_queries: int = 0
    fallbacks: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "passes": self.passes,
            "requests": self.requests,
            "queries": self.queries,
            "unique_queries": self.unique_queries,
            "fallbacks": self.fallbacks,
        }


class _BatchRequest:
    __slots__ = ("queries", "results", "done")

    def __init__(self, queries: Sequence[SDLQuery]):
        self.queries = queries
        self.results: Optional[Tuple[int, ...]] = None
        self.done = threading.Event()


class BatchCoordinator:
    """Coalesces concurrent count batches into single engine passes.

    Parameters
    ----------
    engine:
        The engine that executes the merged passes (the table runtime's
        primary engine, wired to the shared cache).
    window_seconds:
        How long a leader waits for concurrent submitters before flushing.
        ``0`` flushes immediately, which still merges requests that queued
        while a previous flush was executing.
    timeout_seconds:
        Upper bound a follower waits for its leader before computing its
        own batch directly (a liveness guard, not an expected path).
    """

    def __init__(
        self,
        engine: ExecutionBackend,
        window_seconds: float = 0.002,
        timeout_seconds: float = 5.0,
    ):
        self.engine = engine
        self.window_seconds = max(0.0, float(window_seconds))
        self.timeout_seconds = float(timeout_seconds)
        self.stats = BatchStats()
        self._lock = threading.Lock()
        self._pending: List[_BatchRequest] = []
        self._in_flight = 0

    def counts(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        """Cardinalities of the queries, possibly merged with other callers."""
        if not queries:
            return ()
        request = _BatchRequest(list(queries))
        with self._lock:
            self._in_flight += 1
            self._pending.append(request)
            leader = len(self._pending) == 1
            # Waiting for followers only makes sense when another call is
            # actually in flight; a lone caller flushes immediately.
            wait = self.window_seconds if self._in_flight > 1 else 0.0
            self.stats.requests += 1
            self.stats.queries += len(request.queries)
        try:
            if leader:
                if wait:
                    time.sleep(wait)
                with self._lock:
                    batch = self._pending
                    self._pending = []
                self._execute(batch)
            else:
                request.done.wait(self.timeout_seconds)
                if not request.done.is_set():  # pragma: no cover - liveness guard
                    with self._lock:
                        if request in self._pending:
                            self._pending.remove(request)
                        self.stats.fallbacks += 1
                    self._execute([request])
        finally:
            with self._lock:
                self._in_flight -= 1
        assert request.results is not None
        return request.results

    def _execute(self, batch: List[_BatchRequest]) -> None:
        """One engine pass answering every request of the batch."""
        unique: Dict[str, SDLQuery] = {}
        for request in batch:
            for query in request.queries:
                unique.setdefault(query_signature(query), query)
        ordered = list(unique.items())
        counts = self.engine.count_batch([query for _, query in ordered])
        by_signature = {signature: count for (signature, _), count in zip(ordered, counts)}
        with self._lock:
            self.stats.passes += 1
            self.stats.unique_queries += len(ordered)
        for request in batch:
            request.results = tuple(
                by_signature[query_signature(query)] for query in request.queries
            )
            request.done.set()


class BatchedEngine(BackendWrapper):
    """A per-session backend that coalesces batch passes across sessions.

    A :class:`~repro.backends.base.BackendWrapper`: it behaves exactly
    like the backend it wraps (typically one sharing the table's result
    cache, so single counts and medians reuse other sessions' work), but
    its :meth:`count_batch` is routed through the table's
    :class:`BatchCoordinator`, merging concurrent HB-cuts INDEP passes
    into single multi-query evaluations.

    For backward compatibility the constructor also accepts a raw
    :class:`~repro.storage.table.Table` plus a shared cache, in which
    case the wrapped backend is an aggregate-caching ``"memory"`` engine
    opened through the registry.
    """

    def __init__(
        self,
        source: Union[Table, ExecutionBackend],
        cache: Optional[ResultCache] = None,
        coordinator: Optional[BatchCoordinator] = None,
        use_index: bool = False,
    ):
        if isinstance(source, Table):
            from repro.backends.registry import open_backend

            inner = open_backend(
                "memory",
                source,
                cache=cache,
                cache_aggregates=True,
                use_index=use_index,
            )
        else:
            inner = source
        super().__init__(inner)
        self._coordinator = coordinator

    def count_batch(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        if self._coordinator is None or not queries:
            return self.inner.count_batch(queries)
        # Logical accounting stays with the session; the physical pass runs
        # on the coordinator's engine (sharing the same cache).
        self.counter.add(batch_calls=1, count_calls=len(queries))
        return self._coordinator.counts(queries)

    def sibling(self) -> "BatchedEngine":
        """A batched engine over a sibling of the wrapped backend."""
        return BatchedEngine(self.inner.sibling(), coordinator=self._coordinator)
