"""The advisor service: many sessions, shared caching, batched back-ends.

:class:`AdvisorService` turns the single-shot :class:`~repro.core.advisor.Charles`
facade into a multi-user service, following the request → parse → plan →
execute pipeline idiom of service layers.  Per registered table it keeps a
*table runtime*:

* one shared :class:`~repro.storage.cache.ResultCache` holding selection
  masks and count/median aggregates, keyed by
  :func:`~repro.sdl.formatter.query_signature` — the paper's observation
  that only two back-end operations exist makes this cache cover
  essentially all repeated work;
* one advice-level cache, so identical context queries from different
  users are answered without re-running HB-cuts at all;
* one :class:`~repro.service.batching.BatchCoordinator` that merges the
  batched INDEP passes of concurrently running HB-cuts into single
  multi-query engine evaluations.

With ``workers``/``partitions`` set, the service additionally owns **one**
bounded :class:`~repro.backends.pool.ExecutorPool` shared by every session
and table: tables are sharded into row-range partitions and every session
engine fans its scans across the pool (identical answers, more cores);
:meth:`AdvisorService.stats` reports the pool's traffic.

Sessions are named and concurrent: each owns a
:class:`~repro.service.batching.BatchedEngine` (private operation
counters, shared cache) and a thin
:class:`~repro.core.session.ExplorationSession` navigation stack.

Entry points: :meth:`AdvisorService.submit` for one request,
:meth:`AdvisorService.serve` for a whole multi-user workload (see
:func:`repro.workloads.concurrent.generate_concurrent_workload`), both
wired into the CLI's ``serve`` sub-command.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.api.protocol import OPERATIONS, Request, Response, canonical_op
from repro.backends.base import ExecutionBackend
from repro.backends.pool import ExecutorPool, parallel_requested, resolve_workers
from repro.backends.registry import open_backend
from repro.core.advisor import Advice, Charles, ContextLike
from repro.core.hbcuts import HBCutsConfig
from repro.core.ranking import EntropyRanker, Ranker
from repro.errors import (
    AdvisorError,
    CharlesError,
    ProtocolError,
    SessionError,
    UnknownOperationError,
)
from repro.obs import MetricsRegistry, SlowOpLog, start_trace
from repro.sdl.formatter import query_signature
from repro.sdl.query import SDLQuery
from repro.service.batching import BatchCoordinator, BatchedEngine
from repro.service.sessions import ServiceSession
from repro.storage.cache import ResultCache
from repro.storage.table import Table

__all__ = ["ServiceRequest", "ServiceResponse", "ServiceReport", "AdvisorService"]

#: The in-process request/response dataclasses of the original service
#: layer were refactored into the wire envelopes of :mod:`repro.api` —
#: these aliases keep the historical names working.
ServiceRequest = Request
ServiceResponse = Response


@dataclass
class ServiceReport:
    """Summary of one :meth:`AdvisorService.serve` run."""

    users: int
    requests: int
    wall_seconds: float
    errors: List[str] = field(default_factory=list)
    table_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Aggregate requests per second across all simulated users."""
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def describe(self) -> str:
        lines = [
            f"served {self.requests} request(s) from {self.users} user(s) "
            f"in {self.wall_seconds:.3f}s — {self.throughput:.1f} req/s"
        ]
        for table, stats in self.table_stats.items():
            results = stats["result_cache"]
            advice = stats["advice_cache"]
            batching = stats["batching"]
            lines.append(
                f"  table {table!r}: result cache hit rate {results['hit_rate']:.1%} "
                f"({results['entries']} entries, {results['approx_bytes']} bytes), "
                f"advice cache hit rate {advice['hit_rate']:.1%}"
            )
            lines.append(
                f"    batching: {batching['passes']} pass(es) for "
                f"{batching['queries']} queries "
                f"({batching['unique_queries']} unique after dedup)"
            )
        if self.errors:
            lines.append(f"  {len(self.errors)} request error(s); first: {self.errors[0]}")
        return "\n".join(lines)


def _ranker_cache_key(ranker: Ranker) -> str:
    """A cache key covering the ranker's class *and* its parameters.

    ``ranker.name`` alone would let two differently-parameterised rankers
    of the same class (e.g. two :class:`WeightedRanker` weightings) share
    cached advice.  Instance ``vars`` cover dataclass parameters; private
    attributes (per-pass score caches) are excluded.
    """
    parameters = sorted(
        (key, repr(value))
        for key, value in vars(ranker).items()
        if not key.startswith("_")
    )
    return f"{type(ranker).__module__}.{type(ranker).__qualname__}:{parameters}"


class _TableRuntime:
    """Shared per-table machinery: caches, primary backend, coordinator.

    The primary backend is opened through the registry from a spec such as
    ``"memory"`` or ``"sqlite"`` and wired to the table's shared
    :class:`~repro.storage.cache.ResultCache` with aggregate caching on;
    per-session backends are *siblings* of it (same data, same shared
    cache, private operation counters) wrapped in a
    :class:`~repro.service.batching.BatchedEngine` that routes batched
    passes through the table's coordinator.  With the service running a
    shared :class:`~repro.backends.pool.ExecutorPool`, the backend is a
    partitioned :class:`~repro.backends.parallel.ParallelEngine` and every
    sibling fans its evaluation across the same pool.
    """

    def __init__(
        self,
        name: str,
        table: Table,
        cache_capacity: int,
        advice_capacity: int,
        batch_window: float,
        use_index: Union[bool, str, Any],
        backend_spec: str = "memory",
        partitions: int = 1,
        workers: int = 1,
        pool: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.table = table
        self.use_index = use_index
        self.backend_spec = backend_spec
        self.cache = ResultCache(capacity=cache_capacity, name=f"results:{name}")
        self.advice_cache = ResultCache(capacity=advice_capacity, name=f"advice:{name}")
        context: Dict[str, Any] = dict(
            cache=self.cache, cache_aggregates=True, use_index=use_index
        )
        if partitions > 1 or workers > 1 or pool is not None:
            context.update(partitions=partitions, workers=workers, pool=pool)
        self._backend = open_backend(backend_spec, table, **context)
        self.engine = BatchedEngine(self._backend)
        self.coordinator = BatchCoordinator(self.engine, window_seconds=batch_window)
        if metrics is not None:
            self._register_metrics(metrics)

    def _register_metrics(self, metrics: MetricsRegistry) -> None:
        """Export this runtime's live stats as registry views.

        Views read the structures that already own the numbers (cache
        stats, the primary engine's :class:`OperationCounter`), so there
        is no double bookkeeping; the engine additionally gets a metrics
        *sink* — reached duck-typed through whatever wrapper stack the
        backend spec built — feeding per-operation latency histograms.
        """
        for kind, cache in (("results", self.cache), ("advice", self.advice_cache)):
            labels = {"table": self.name, "cache": kind}
            metrics.gauge(
                "cache_entries",
                "Entries currently held by a result cache.",
                labels=labels,
                fn=lambda c=cache: c.stats().entries,
            )
            metrics.gauge(
                "cache_approx_bytes",
                "Approximate bytes held by a result cache.",
                labels=labels,
                fn=lambda c=cache: c.stats().approx_bytes,
            )
            for tally in ("hits", "misses", "evictions", "invalidations"):
                metrics.counter(
                    f"cache_{tally}_total",
                    f"Result-cache {tally} since service start.",
                    labels=labels,
                    fn=lambda c=cache, t=tally: getattr(c.stats(), t),
                )
        for tally in (
            "count_calls",
            "median_calls",
            "cache_hits",
            "aggregate_hits",
            "batch_calls",
            "skipped_partitions",
        ):
            metrics.counter(
                f"engine_{tally}_total",
                "Primary-engine operation tally.",
                labels={"table": self.name},
                fn=lambda t=tally: getattr(self.engine.counter, t),
            )
        histograms = {
            op: metrics.histogram(
                "engine_op_seconds",
                "Engine aggregate operation latency in seconds.",
                labels={"table": self.name, "op": op},
            )
            for op in ("count", "median")
        }

        def sink(op: str, seconds: float) -> None:
            histogram = histograms.get(op)
            if histogram is not None:
                histogram.observe(seconds)

        attach = getattr(self._backend, "set_metrics_sink", None)
        if attach is not None:
            attach(sink)

    def _spawn_backend(self) -> ExecutionBackend:
        """A per-session view of the primary backend (private counters)."""
        if hasattr(self._backend, "sibling"):
            return self._backend.sibling()
        return self._backend

    def session_engine(self) -> BatchedEngine:
        """A fresh per-session engine wired to the shared cache and coordinator."""
        return BatchedEngine(self._spawn_backend(), coordinator=self.coordinator)

    @property
    def data_version(self) -> Optional[int]:
        """The backend's monotonic data version (``None`` when unversioned)."""
        return getattr(self._backend, "data_version", None)

    def stats(self) -> Dict[str, Any]:
        return {
            "rows": self._backend.num_rows,
            "data_version": self.data_version,
            "backend": self._backend.stats(),
            "result_cache": self.cache.stats().snapshot(),
            "advice_cache": self.advice_cache.stats().snapshot(),
            "batching": self.coordinator.stats.snapshot(),
            "primary_engine": self.engine.counter.snapshot(),
        }


class AdvisorService:
    """A pool of named exploration sessions over shared tables.

    Parameters
    ----------
    tables:
        Table(s) to register up front: a single :class:`Table`, an iterable
        of tables (registered under their own names), or a name → table
        mapping.  More can be added later with :meth:`register_table`.
    cache_capacity:
        Entries of the shared per-table mask/aggregate cache.
    advice_capacity:
        Entries of the per-table advice cache (whole ranked answers).
    batch_window:
        Seconds a batch leader waits for concurrent sessions before
        flushing a merged engine pass (0 disables the wait, not batching).
    config:
        Base HB-cuts parameters for new sessions; ``batch_indep`` is
        turned on by the service unless ``batch_indep=False`` is passed.
    batch_indep:
        Route HB-cuts INDEP evaluations through batched engine passes.
    max_answers:
        Default number of ranked answers per advise.
    use_index:
        Index features for session engines — anything
        :func:`repro.storage.engine.resolve_index_features` accepts
        (``True`` for sorted indexes only, ``"all"`` or
        ``"zonemap,bitmap,maskreuse"`` for the skipping tier).
    backend:
        Default backend spec for registered tables (resolved through
        :func:`repro.backends.open_backend`); ``register_table`` can
        override it per table.
    workers:
        Size of the **one** :class:`~repro.backends.pool.ExecutorPool` the
        service shares across every session and table (bounded;
        introspectable through :meth:`stats`).  ``1`` keeps execution
        sequential.
    partitions:
        Row-range shards per registered table; per-partition evaluation
        fans out across the shared pool.  ``None`` (the default) shards to
        the worker count, matching ``Charles``.  Answers are identical for
        every ``partitions × workers`` combination.
    """

    def __init__(
        self,
        tables: Union[None, Table, Iterable[Table], Mapping[str, Table]] = None,
        cache_capacity: int = 4096,
        advice_capacity: int = 256,
        batch_window: float = 0.002,
        config: Optional[HBCutsConfig] = None,
        batch_indep: bool = True,
        max_answers: int = 10,
        use_index: Union[bool, str] = False,
        backend: str = "memory",
        workers: int = 1,
        partitions: Optional[int] = None,
    ):
        self._tables: Dict[str, _TableRuntime] = {}
        self._sessions: Dict[str, ServiceSession] = {}
        self._lock = threading.RLock()
        self._cache_capacity = int(cache_capacity)
        self._advice_capacity = int(advice_capacity)
        self._batch_window = float(batch_window)
        base = config or HBCutsConfig()
        self._config = (
            dataclasses.replace(base, batch_indep=True) if batch_indep else base
        )
        self._max_answers = int(max_answers)
        self._use_index = use_index
        self._backend_spec = str(backend)
        # One bounded pool for the whole service: every session of every
        # table runtime fans its partitioned work through it.  The opt-in
        # predicate and worker normalisation are the ones Charles and
        # open_backend use, so workers=0 means "one per core" here too,
        # and partitions default to the worker count.
        if parallel_requested(partitions=partitions, workers=workers):
            self._workers = resolve_workers(workers)
            self._partitions = (
                max(1, int(partitions)) if partitions is not None else self._workers
            )
            self._pool: Optional[ExecutorPool] = ExecutorPool(
                self._workers, name="service"
            )
        else:
            self._workers = 1
            self._partitions = max(1, int(partitions or 1))
            self._pool = None
        self._requests = 0
        # Observability: one registry and one slow-op log per service.
        # Service-level numbers are *views* over state the service already
        # keeps (unlocked reads of a tally are fine for a scrape).
        self.metrics = MetricsRegistry()
        self.slow_ops_log = SlowOpLog()
        self.metrics.counter(
            "requests_total",
            "Requests accepted by the advisor service.",
            fn=lambda: self._requests,
        )
        self.metrics.gauge(
            "sessions_open",
            "Currently open exploration sessions.",
            fn=lambda: len(self._sessions),
        )
        self.metrics.gauge(
            "tables_registered",
            "Tables registered with the service.",
            fn=lambda: len(self._tables),
        )
        self.metrics.gauge(
            "pool_workers",
            "Workers in the shared executor pool (0 = sequential).",
            fn=lambda: self._workers if self._pool is not None else 0,
        )
        if tables is None:
            return
        if isinstance(tables, Table):
            self.register_table(tables)
        elif isinstance(tables, Mapping):
            for name, table in tables.items():
                self.register_table(table, name=name)
        else:
            for table in tables:
                self.register_table(table)

    # -- tables -------------------------------------------------------------

    def register_table(
        self,
        table: Table,
        name: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> str:
        """Register a table and build its shared runtime; returns its name.

        Parameters
        ----------
        backend:
            Backend spec for this table's runtime (``"memory"``,
            ``"sqlite"``, …); defaults to the service-wide spec.
        """
        resolved = name or table.name
        with self._lock:
            if resolved in self._tables:
                raise AdvisorError(f"table {resolved!r} is already registered")
            self._tables[resolved] = _TableRuntime(
                resolved,
                table,
                cache_capacity=self._cache_capacity,
                advice_capacity=self._advice_capacity,
                batch_window=self._batch_window,
                use_index=self._use_index,
                backend_spec=backend or self._backend_spec,
                partitions=self._partitions,
                workers=self._workers,
                pool=self._pool,
                metrics=self.metrics,
            )
        return resolved

    @property
    def table_names(self) -> List[str]:
        with self._lock:
            return sorted(self._tables)

    @property
    def pool(self) -> Optional[ExecutorPool]:
        """The shared executor pool (``None`` when running sequentially)."""
        return self._pool

    def data_versions(self) -> Dict[str, Optional[int]]:
        """Current data version per registered table (``None`` = unversioned).

        The cheap staleness fingerprint the HTTP health document exposes:
        a cluster router compares these across nodes to spot a replica
        that missed an ingest.
        """
        with self._lock:
            runtimes = list(self._tables.items())
        return {name: runtime.data_version for name, runtime in runtimes}

    def _runtime(self, table: Optional[str]) -> _TableRuntime:
        with self._lock:
            if table is not None:
                runtime = self._tables.get(table)
                if runtime is None:
                    raise AdvisorError(
                        f"unknown table {table!r}; registered: {sorted(self._tables)}"
                    )
                return runtime
            if len(self._tables) == 1:
                return next(iter(self._tables.values()))
        raise AdvisorError(
            "the service has several tables registered; name one explicitly"
        )

    # -- sessions -----------------------------------------------------------

    def open_session(
        self,
        name: str,
        table: Optional[str] = None,
        context: ContextLike = None,
        max_answers: Optional[int] = None,
        config: Optional[HBCutsConfig] = None,
        ranker: Optional[Ranker] = None,
        replace: bool = False,
    ) -> ServiceSession:
        """Create a named session over a registered table.

        With ``context`` given, the session is started (its first advice is
        produced) before returning.
        """
        runtime = self._runtime(table)
        session_config = config or self._config
        advisor = Charles(
            runtime.session_engine(),
            config=session_config,
            ranker=ranker or EntropyRanker(),
        )
        session = ServiceSession(
            name=name,
            table_name=runtime.name,
            advisor=advisor,
            max_answers=max_answers if max_answers is not None else self._max_answers,
        )
        session.exploration.advise_fn = self._make_advise_fn(session, runtime)
        # Route the session's ad-hoc counts (describe(), breadcrumb row
        # counts) through the runtime's primary engine: shared cache,
        # aggregate caching, no private-engine bypass.
        session.exploration.count_fn = runtime.engine.count
        with self._lock:
            if name in self._sessions and not replace:
                raise SessionError(
                    f"session {name!r} already exists; close it or pass replace=True"
                )
            previous = self._sessions.get(name)
            self._sessions[name] = session
        if context is not None:
            self._tally()
            try:
                session.advise(context)
            except Exception:
                # Atomic open: a failed initial advise must not leave a
                # half-open session behind (nor silently drop a session
                # that replace=True displaced) — the cluster router's
                # journal relies on "error reply => no state change".
                with self._lock:
                    if self._sessions.get(name) is session:
                        if previous is not None:
                            self._sessions[name] = previous
                        else:
                            self._sessions.pop(name, None)
                raise
        return session

    def session(self, name: str) -> ServiceSession:
        """Look up an open session by name."""
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise SessionError(f"no open session named {name!r}")
        return session

    def close_session(self, name: str) -> Dict[str, Any]:
        """Close a session; returns its final statistics."""
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise SessionError(f"no open session named {name!r}")
        return session.stats()

    @property
    def session_names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    # -- shared advice cache ------------------------------------------------

    def _make_advise_fn(self, session: ServiceSession, runtime: _TableRuntime):
        """The hook routing a session's advise through the shared advice cache."""
        config_key = repr(session.advisor.config)
        ranker_key = _ranker_cache_key(session.advisor.ranker)

        def advise(context: SDLQuery, max_answers: int, mode: str = "exact") -> Advice:
            # Approximate advice caches under its own prefix: an
            # interactive hit must never masquerade as exact (and vice
            # versa), while the exact key format stays unchanged — a
            # refinement populates exactly the entry a plain advise would.
            prefix = "advice:approx:" if mode == "interactive" else "advice:"
            key = (
                f"{prefix}{max_answers}:{ranker_key}:{config_key}:"
                f"{query_signature(context)}"
            )
            # Tagging the entry with the data version it was computed at
            # makes the advice cache mutation-aware: after an ingest, old
            # entries miss (and are evicted) instead of serving answers
            # for data that no longer exists.
            return runtime.advice_cache.get_or_compute(
                key,
                lambda: session.advisor.advise(
                    context, max_answers=max_answers, mode=mode
                ),
                version=runtime.data_version,
            )

        return advise

    # -- request entry points -----------------------------------------------

    def advise(
        self,
        session_name: str,
        context: ContextLike = None,
        refresh: bool = False,
        mode: str = "exact",
    ) -> Advice:
        """(Re)start a session at a context and return the ranked answers.

        ``refresh=True`` with no context recomputes the current context's
        advice against the newest data version (clearing the stale flag)
        without restarting the exploration.  ``mode="interactive"`` serves
        sketch-ranked approximate advice and schedules its exact
        refinement in the background (collect with :meth:`refine`).
        """
        self._tally()
        return self.session(session_name).advise(context, refresh=refresh, mode=mode)

    def refine(self, session_name: str) -> Advice:
        """Exact advice at a session's current context, replacing approximate."""
        self._tally()
        return self.session(session_name).refine()

    def drill(self, session_name: str, answer_index: int, segment_index: int) -> Advice:
        """Drill a session into one segment of one ranked answer."""
        self._tally()
        return self.session(session_name).drill(answer_index, segment_index)

    def back(self, session_name: str) -> Advice:
        """Pop one drill-down level of a session."""
        self._tally()
        return self.session(session_name).back()

    def count(self, context: ContextLike, table: Optional[str] = None) -> int:
        """Cardinality of a context on a table (served by the shared engine)."""
        self._tally()
        runtime = self._runtime(table)
        advisor = Charles(runtime.engine, config=self._config)
        return advisor.count(context)

    def ingest(
        self,
        rows: Optional[Sequence[Mapping[str, Any]]] = None,
        delete: ContextLike = None,
        table: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Mutate a registered table: append a batch and/or delete rows.

        Appends apply before deletions.  The mutation flows through the
        table runtime's primary backend, so every open session over the
        table observes it: their result-cache and advice-cache entries of
        superseded versions are evicted surgically, and their existing
        advice is reported ``stale`` until re-advised (``refresh=True``).

        Parameters
        ----------
        rows:
            Row mappings to append (missing keys become missing values).
        delete:
            A *constrained* context whose result set is deleted.
        table:
            Table to mutate when several are registered.

        Returns a summary: rows appended/deleted, the new ``data_version``
        and the number of cache entries invalidated by this mutation.
        """
        self._tally()
        runtime = self._runtime(table)
        engine = runtime.engine
        if rows is None and delete is None:
            raise ProtocolError(
                "ingest requires 'rows' to append, 'delete' to remove, or both"
            )
        invalidated_before = runtime.cache.stats().invalidations
        appended = 0
        if rows is not None:
            if isinstance(rows, (str, Mapping)) or not isinstance(rows, Sequence):
                raise ProtocolError(
                    "ingest 'rows' must be a sequence of row mappings, "
                    f"got {type(rows).__name__}"
                )
            appended = len(rows)
            engine.ingest(rows)
        deleted = 0
        if delete is not None:
            resolved = Charles(engine, config=self._config).resolve_context(delete)
            if not resolved.constrained_attributes:
                raise ProtocolError(
                    "ingest 'delete' must be a constrained query; refusing "
                    "to delete every row of the table"
                )
            deleted = engine.delete_where(resolved)
        version = getattr(engine, "data_version", None)
        advice_evicted = 0
        if version is not None:
            advice_evicted = runtime.advice_cache.evict_superseded(version)
        invalidated_after = runtime.cache.stats().invalidations
        return {
            "table": runtime.name,
            "appended": appended,
            "deleted": deleted,
            "rows": engine.num_rows,
            "data_version": version,
            "cache_entries_invalidated": invalidated_after - invalidated_before,
            "advice_entries_invalidated": advice_evicted,
        }

    def _tally(self) -> None:
        with self._lock:
            self._requests += 1

    def describe_session(self, name: str) -> Dict[str, Any]:
        """Structured description of one session (the ``describe`` op).

        Bundles everything a remote session object mirrors locally:
        breadcrumbs, depth, the human-readable description and the
        per-session statistics.
        """
        session = self.session(name)
        return {
            "name": session.name,
            "table": session.table_name,
            "depth": session.depth,
            "data_version": session.data_version,
            "stale": session.stale,
            "breadcrumbs": session.breadcrumbs(),
            "text": session.describe(),
            "stats": session.stats(),
        }

    # -- the wire operation table --------------------------------------------

    @staticmethod
    def _validated_index(request: Request, name: str) -> int:
        value = request.params.get(name, 0)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"parameter {name!r} of {request.op!r} must be an integer, "
                f"got {type(value).__name__}"
            )
        return value

    @staticmethod
    def _session_name(request: Request) -> str:
        if not isinstance(request.session, str) or not request.session:
            raise ProtocolError(
                f"operation {request.op!r} requires a non-empty session name"
            )
        return request.session

    def _op_open_session(self, request: Request) -> Any:
        max_answers = request.params.get("max_answers")
        if max_answers is not None and (
            isinstance(max_answers, bool) or not isinstance(max_answers, int)
        ):
            raise ProtocolError(
                f"parameter 'max_answers' must be an integer, "
                f"got {type(max_answers).__name__}"
            )
        session = self.open_session(
            self._session_name(request),
            table=request.table,
            context=request.context,
            max_answers=max_answers,
            replace=bool(request.params.get("replace", True)),
        )
        return session.name

    def _op_advise(self, request: Request) -> Any:
        name = self._session_name(request)
        if request.params.get("current"):
            # Peek at the current context's advice without restarting the
            # exploration (RemoteSession.current_advice's path).
            return self.session(name).current_advice()
        mode = request.params.get("mode", "exact")
        if not isinstance(mode, str):
            raise ProtocolError(
                f"parameter 'mode' of 'advise' must be a string, "
                f"got {type(mode).__name__}"
            )
        return self.advise(
            name,
            request.context,
            refresh=bool(request.params.get("refresh", False)),
            mode=mode,
        )

    def _op_refine(self, request: Request) -> Any:
        return self.refine(self._session_name(request))

    def _op_drill(self, request: Request) -> Any:
        return self.drill(
            self._session_name(request),
            self._validated_index(request, "answer_index"),
            self._validated_index(request, "segment_index"),
        )

    def _op_back(self, request: Request) -> Any:
        return self.back(self._session_name(request))

    def _op_count(self, request: Request) -> Any:
        return self.count(request.context, table=request.table)

    def _op_ingest(self, request: Request) -> Any:
        return self.ingest(
            rows=request.params.get("rows"),
            delete=request.params.get("delete"),
            table=request.table,
        )

    def _op_describe(self, request: Request) -> Any:
        return self.describe_session(self._session_name(request))

    def _op_stats(self, request: Request) -> Any:
        return self.stats()

    def _op_slow_ops(self, request: Request) -> Any:
        limit = request.params.get("limit")
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int)
        ):
            raise ProtocolError(
                f"parameter 'limit' of 'slow_ops' must be an integer, "
                f"got {type(limit).__name__}"
            )
        return self.slow_ops(limit)

    def _op_close_session(self, request: Request) -> Any:
        return self.close_session(self._session_name(request))

    def _execute(self, request: Request) -> Any:
        """Validate and run one request, raising typed errors on bad input."""
        op = canonical_op(request.op)
        allowed = OPERATIONS.get(op)
        if allowed is None:
            raise UnknownOperationError(
                f"unknown service operation {request.op!r}; "
                f"known: {sorted(OPERATIONS)}"
            )
        unexpected = sorted(set(request.params) - set(allowed))
        if unexpected:
            raise ProtocolError(
                f"operation {op!r} does not accept parameter(s) {unexpected}; "
                f"allowed: {sorted(allowed)}"
            )
        return getattr(self, f"_op_{op}")(request)

    def submit(self, request: Request) -> Response:
        """Execute one request envelope; errors are returned, not raised.

        Unknown operations, ill-typed parameters and unknown sessions all
        come back as failed responses carrying the raising class's stable
        :attr:`~repro.errors.CharlesError.code` — the same envelope the
        HTTP server puts on the wire.

        A request carrying a ``trace`` extension runs under a span root
        (``{}`` opens a fresh trace; ``{"trace_id", "parent_id"}`` joins
        a router-issued one) and the response carries the finished span
        tree.  Every request — traced or not — feeds the per-operation
        latency histogram and is offered to the slow-op log.
        """
        started = time.perf_counter()
        trace_request = request.trace
        trace_document: Optional[Dict[str, Any]] = None
        if trace_request is None:
            response = self._submit(request)
        else:
            root = start_trace(
                f"service.{request.op}",
                trace_id=trace_request.get("trace_id"),
                parent_id=trace_request.get("parent_id"),
                op=request.op,
                session=request.session,
            )
            with root:
                response = self._submit(request)
            if not response.ok and response.error is not None:
                # _submit converts raised CharlesErrors into failed
                # envelopes before the span exit sees them; reflect the
                # failure on the root so the trace shows it too.
                code = response.error_code or "error"
                root.error = f"{code}: {response.error}"
            trace_document = root.to_document()
            response.trace = trace_document
        elapsed = time.perf_counter() - started
        self.metrics.histogram(
            "request_seconds",
            "Service request latency in seconds, by operation.",
            labels={"op": request.op},
        ).observe(elapsed)
        self.slow_ops_log.record(
            request.op,
            elapsed,
            session=request.session or None,
            request_id=request.request_id,
            trace=trace_document,
        )
        return response

    def _submit(self, request: Request) -> Response:
        started = time.perf_counter()
        try:
            result = self._execute(request)
        except CharlesError as error:
            # Ship the bare prose: the code travels in error_code, and a
            # client rebuilding the exception re-appends it in str().
            return Response(
                ok=False,
                op=request.op,
                session=request.session,
                error=error.message,
                error_code=error.code,
                request_id=request.request_id,
                elapsed_seconds=time.perf_counter() - started,
            )
        return Response(
            ok=True,
            op=request.op,
            session=request.session,
            result=result,
            request_id=request.request_id,
            elapsed_seconds=time.perf_counter() - started,
        )

    # -- workload execution -------------------------------------------------

    def serve(
        self,
        scripts: Sequence[Any],
        workers: int = 1,
        table: Optional[str] = None,
    ) -> ServiceReport:
        """Run a multi-user workload and return a throughput report.

        Parameters
        ----------
        scripts:
            :class:`~repro.workloads.concurrent.UserScript` objects (or any
            object with ``user`` and ``actions`` of the same shape).
        workers:
            Thread count; ``1`` executes users sequentially (deterministic),
            more lets sessions run — and batch — concurrently.
        table:
            Table to serve when several are registered.
        """
        errors: List[str] = []
        errors_lock = threading.Lock()
        started = time.perf_counter()
        if workers <= 1:
            requests = sum(
                self._run_script(script, table, errors, errors_lock)
                for script in scripts
            )
        else:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(
                        self._run_script, script, table, errors, errors_lock
                    )
                    for script in scripts
                ]
                requests = sum(future.result() for future in futures)
        wall = time.perf_counter() - started
        with self._lock:
            table_stats = {name: rt.stats() for name, rt in self._tables.items()}
        return ServiceReport(
            users=len(scripts),
            requests=requests,
            wall_seconds=wall,
            errors=errors,
            table_stats=table_stats,
        )

    def _run_script(
        self,
        script: Any,
        table: Optional[str],
        errors: List[str],
        errors_lock: threading.Lock,
    ) -> int:
        try:
            session = self.open_session(script.user, table=table, replace=True)
        except CharlesError as error:
            with errors_lock:
                errors.append(f"{script.user}: {error}")
            return 0
        executed = 0
        for action in script.actions:
            try:
                if action.op == "advise":
                    context = list(action.context) if action.context else None
                    self.advise(script.user, context)
                elif action.op == "drill":
                    advice = session.current_advice()
                    if advice is None or not advice.answers:
                        continue
                    answer_index = action.answer % len(advice.answers)
                    segmentation = advice.answers[answer_index].segmentation
                    segment_index = action.segment % segmentation.depth
                    self.drill(script.user, answer_index, segment_index)
                elif action.op == "back":
                    if session.depth > 0:
                        self.back(script.user)
                else:
                    raise AdvisorError(f"unknown workload action {action.op!r}")
                executed += 1
            except CharlesError as error:
                with errors_lock:
                    errors.append(f"{script.user}: {error}")
        return executed

    # -- reporting ----------------------------------------------------------

    def slow_ops(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The slow-op log document (the ``slow_ops`` wire operation)."""
        return self.slow_ops_log.document(limit)

    def metrics_document(self) -> Dict[str, Any]:
        """The mergeable metrics document (``GET /v1/metrics.json``)."""
        return self.metrics.to_document()

    def stats(self) -> Dict[str, Any]:
        """Service-wide statistics: caches, batching, pool, sessions, requests."""
        with self._lock:
            sessions = dict(self._sessions)
            tables = dict(self._tables)
            requests = self._requests
        return {
            "requests": requests,
            "parallel": {
                "workers": self._workers,
                "partitions": self._partitions,
                "pool": self._pool.stats() if self._pool is not None else None,
            },
            "tables": {name: runtime.stats() for name, runtime in tables.items()},
            "sessions": {name: session.stats() for name, session in sessions.items()},
        }

    def describe(self) -> str:
        """Multi-line summary of the service state."""
        stats = self.stats()
        lines = [
            f"advisor service — {len(stats['tables'])} table(s), "
            f"{len(stats['sessions'])} open session(s), "
            f"{stats['requests']} request(s) served"
        ]
        for name, table_stats in stats["tables"].items():
            results = table_stats["result_cache"]
            lines.append(
                f"  table {name!r}: {table_stats['rows']} rows, "
                f"result cache {results['entries']}/{results['capacity']} entries, "
                f"hit rate {results['hit_rate']:.1%}"
            )
        for name, session_stats in stats["sessions"].items():
            lines.append(
                f"  session {name!r}: {session_stats['requests']} request(s), "
                f"depth {session_stats['depth']}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdvisorService(tables={self.table_names}, "
            f"sessions={len(self.session_names)})"
        )
