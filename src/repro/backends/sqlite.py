"""A SQLite execution backend: Charles as a true SQL front-end.

The original Charles prototype ran on MonetDB; the paper (Section 1) sells
the advisor as "a front-end for SQL systems".  :class:`SQLiteBackend`
makes the reproduction live up to that claim: every operation the advisor
issues — counts over predicates, medians, min/max, value frequencies
(Section 5.1) — is executed by rendering SDL through the existing
:mod:`repro.storage.sql` glue (:func:`~repro.storage.sql.query_to_where`,
:func:`~repro.storage.sql.count_query_sql`) and running the resulting SQL
against a ``sqlite3`` database.

Two construction paths exist:

* :meth:`SQLiteBackend.from_table` loads an in-memory
  :class:`~repro.storage.table.Table` into a (by default in-memory) SQLite
  database — the path the registry's bare ``"sqlite"`` spec takes;
* opening an existing database file (``"sqlite:///path.db#table"``), in
  which case the schema is discovered from a companion metadata table
  written by :meth:`from_table`, or inferred from SQLite's declared column
  types.

Value encoding follows the column store: dates are stored as proleptic
Gregorian ordinals (``INTEGER``), booleans as 0/1; literals inside
rendered predicates are encoded the same way and results are decoded
back, so counts, medians and frequencies are **identical** to
:class:`~repro.storage.engine.QueryEngine` (benchmark E13 and the parity
tests assert this bit-for-bit on whole advise runs).

Aggregate results are cached in a shared
:class:`~repro.storage.cache.ResultCache` under the same
``count::<signature>`` / ``median:<attr>:<signature>`` keys the memory
engine uses, so the service layer's per-table cache works unchanged.  The
connection is guarded by a lock (``check_same_thread=False``), and
:meth:`sibling` spawns per-session views sharing the connection, schema
and cache while keeping private operation counters.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    BackendError,
    EmptyColumnError,
    TypeMismatchError,
    UnknownColumnError,
)
from repro.sdl.formatter import query_signature
from repro.sdl.predicates import (
    ExclusionPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.sdl.query import SDLQuery
from repro.storage.cache import ResultCache
from repro.storage.engine import (
    OperationCounter,
    deduplicated_count_batch,
    deduplicated_median_batch,
)
from repro.storage.sql import count_query_sql, query_to_where
from repro.storage.table import Table, reject_unknown_columns
from repro.storage.types import (
    DataType,
    date_to_ordinal,
    is_missing,
    ordinal_to_date,
)

__all__ = ["SQLiteBackend"]

#: Companion table recording logical column types, so a database created
#: by :meth:`SQLiteBackend.from_table` reopens with exact dtypes.
_SCHEMA_TABLE = "_charles_schema"

#: Process-unique suffixes for unseeded sample tables.
_SAMPLE_ID_COUNTER = itertools.count()

_SQL_TYPE_FOR = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.DATE: "INTEGER",
    DataType.STRING: "TEXT",
    DataType.BOOL: "INTEGER",
}

_DTYPE_FOR_DECL = {
    "INTEGER": DataType.INT,
    "INT": DataType.INT,
    "BIGINT": DataType.INT,
    "REAL": DataType.FLOAT,
    "FLOAT": DataType.FLOAT,
    "DOUBLE": DataType.FLOAT,
    "NUMERIC": DataType.FLOAT,
    "TEXT": DataType.STRING,
    "VARCHAR": DataType.STRING,
    "BOOLEAN": DataType.BOOL,
    "DATE": DataType.DATE,
}


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class _LiveState:
    """Row count and data version shared by every sibling of one table.

    Siblings share the connection and the cache; they must also share the
    mutation bookkeeping, or a session could keep serving the pre-ingest
    cardinality (and stale cache tags) after another session ingested.
    All mutations happen under the backend's connection lock.
    """

    __slots__ = ("version", "num_rows")

    def __init__(self, num_rows: int):
        self.version = 1
        self.num_rows = int(num_rows)


class SQLiteBackend:
    """Executes the advisor's operations against a ``sqlite3`` database.

    Parameters
    ----------
    database:
        Path of the database file, or ``":memory:"``.
    table_name:
        Relation to query; defaults to the single user table of the
        database (excluding the schema companion), error when ambiguous.
    cache:
        Optional shared :class:`~repro.storage.cache.ResultCache` for
        aggregate results (the service layer passes its per-table cache).
    cache_size:
        Capacity of the private cache built when ``cache`` is omitted.
    cache_aggregates:
        Cache count/median/min-max results keyed by
        :func:`~repro.sdl.formatter.query_signature` (the service layer
        turns this on; off by default to keep operation accounting exact).
    """

    _SAMPLE_IDS = _SAMPLE_ID_COUNTER

    def __init__(
        self,
        database: str = ":memory:",
        table_name: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        cache_size: int = 256,
        cache_aggregates: bool = False,
        _connection: Optional[sqlite3.Connection] = None,
        _lock: Optional[threading.Lock] = None,
        _dtypes: Optional[Dict[str, DataType]] = None,
        _owns_connection: Optional[bool] = None,
        _live: Optional[_LiveState] = None,
    ):
        self.database = database
        if _connection is not None:
            self._connection = _connection
            self._owns_connection = bool(_owns_connection)
        else:
            try:
                self._connection = sqlite3.connect(
                    database, check_same_thread=False
                )
            except sqlite3.Error as error:  # pragma: no cover - os-dependent
                raise BackendError(f"cannot open SQLite database {database!r}: {error}")
            self._owns_connection = True
        self._lock = _lock if _lock is not None else threading.Lock()
        self._table_name = self._resolve_table_name(table_name)
        self._dtypes = dict(_dtypes) if _dtypes is not None else self._load_schema()
        if not self._dtypes:
            raise BackendError(
                f"table {self._table_name!r} in {database!r} has no columns"
            )
        self._columns = list(self._dtypes)
        self.counter = OperationCounter()
        self._cache = cache if cache is not None else ResultCache(
            capacity=int(cache_size), name=f"sqlite:{self._table_name}"
        )
        self._cache_aggregates = bool(cache_aggregates)
        self._live = _live if _live is not None else _LiveState(
            int(
                self._execute(
                    f"SELECT COUNT(*) FROM {_quote(self._table_name)}"
                )[0][0]
            )
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Table,
        database: str = ":memory:",
        table_name: Optional[str] = None,
        if_exists: str = "fail",
        **options: Any,
    ) -> "SQLiteBackend":
        """Load a column-store table into SQLite and open a backend over it.

        Parameters
        ----------
        table:
            The in-memory relation to load.
        database:
            Target database (default: private in-memory).
        table_name:
            Name of the SQL table (defaults to ``table.name``).
        if_exists:
            ``"fail"`` (default), ``"replace"`` or ``"skip"`` (reuse the
            already-loaded table, e.g. when reopening a file).
        """
        name = table_name or table.name
        connection = sqlite3.connect(database, check_same_thread=False)
        dtypes = {
            column: table.column(column).dtype for column in table.column_names
        }
        cursor = connection.cursor()
        exists = cursor.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?", (name,)
        ).fetchone()
        if exists and if_exists == "fail":
            connection.close()
            raise BackendError(
                f"table {name!r} already exists in {database!r}; "
                "pass if_exists='replace' or 'skip'"
            )
        if exists and if_exists == "skip":
            # Reuse is only safe when the stored table plausibly holds the
            # same data; otherwise the caller's table would be silently
            # ignored in favour of stale contents.
            stored_columns = [
                row[1]
                for row in cursor.execute(f"PRAGMA table_info({_quote(name)})")
            ]
            stored_rows = cursor.execute(
                f"SELECT COUNT(*) FROM {_quote(name)}"
            ).fetchone()[0]
            if stored_columns != table.column_names or stored_rows != table.num_rows:
                connection.close()
                raise BackendError(
                    f"table {name!r} in {database!r} does not match the "
                    f"supplied table ({stored_rows} rows, columns "
                    f"{stored_columns} vs {table.num_rows} rows, columns "
                    f"{table.column_names}); pass if_exists='replace' to "
                    "reload it, or open the database without a source table "
                    "to use the stored data"
                )
        if not exists or if_exists == "replace":
            cursor.execute(f"DROP TABLE IF EXISTS {_quote(name)}")
            columns_sql = ", ".join(
                f"{_quote(column)} {_SQL_TYPE_FOR[dtype]}"
                for column, dtype in dtypes.items()
            )
            cursor.execute(f"CREATE TABLE {_quote(name)} ({columns_sql})")
            placeholders = ", ".join("?" for _ in dtypes)
            rows = cls._encoded_rows(table, dtypes)
            cursor.executemany(
                f"INSERT INTO {_quote(name)} VALUES ({placeholders})", rows
            )
            cursor.execute(f"CREATE TABLE IF NOT EXISTS {_quote(_SCHEMA_TABLE)} "
                           "(table_name TEXT, column_name TEXT, dtype TEXT, "
                           "PRIMARY KEY (table_name, column_name))")
            cursor.executemany(
                f"INSERT OR REPLACE INTO {_quote(_SCHEMA_TABLE)} VALUES (?, ?, ?)",
                [(name, column, dtype.value) for column, dtype in dtypes.items()],
            )
            connection.commit()
        return cls(
            database,
            table_name=name,
            _connection=connection,
            _dtypes=dtypes,
            _owns_connection=True,
            **options,
        )

    @staticmethod
    def _encoded_rows(table: Table, dtypes: Dict[str, DataType]):
        columns = [table.column(name) for name in dtypes]
        for index in range(table.num_rows):
            row = []
            for column in columns:
                value = column.value_at(index)
                if value is None:
                    row.append(None)
                elif column.dtype is DataType.DATE:
                    row.append(date_to_ordinal(value))
                elif column.dtype is DataType.BOOL:
                    row.append(int(value))
                else:
                    row.append(value)
            yield tuple(row)

    def sibling(self) -> "SQLiteBackend":
        """A backend over the same connection, schema and cache, with
        private operation counters (one per service session)."""
        return SQLiteBackend(
            self.database,
            table_name=self._table_name,
            cache=self._cache,
            cache_aggregates=self._cache_aggregates,
            _connection=self._connection,
            _lock=self._lock,
            _dtypes=self._dtypes,
            _live=self._live,
        )

    def sample(self, fraction: float, seed: Optional[int] = None) -> "SQLiteBackend":
        """A backend over a uniform sample, materialised as a SQLite table.

        Row positions are drawn with the same
        :func:`~repro.storage.sampling.uniform_sample_indices` primitive
        the memory engine uses, then copied into a sibling table inside
        the same database, so sampled execution stays in SQL.
        """
        from repro.storage.sampling import uniform_sample_indices

        rowids = [row[0] for row in self._execute(
            f"SELECT rowid FROM {_quote(self._table_name)} ORDER BY rowid"
        )]
        positions = uniform_sample_indices(
            len(rowids), fraction=fraction, seed=seed
        )
        chosen = [int(rowids[int(i)]) for i in positions]
        # Seeded samples are deterministic, so their table can be reused;
        # unseeded ones get a process-unique suffix — two live unseeded
        # samples must never drop and recreate each other's table.
        seed_part = seed if seed is not None else f"u{next(self._SAMPLE_IDS)}"
        suffix = f"{int(round(fraction * 1_000_000))}_{seed_part}"
        sample_name = f"{self._table_name}_sample_{suffix}"
        id_list = ", ".join(str(rowid) for rowid in chosen)
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute(f"DROP TABLE IF EXISTS {_quote(sample_name)}")
            cursor.execute(
                f"CREATE TABLE {_quote(sample_name)} AS "
                f"SELECT * FROM {_quote(self._table_name)} "
                f"WHERE rowid IN ({id_list}) ORDER BY rowid"
            )
            self._connection.commit()
        return SQLiteBackend(
            self.database,
            table_name=sample_name,
            cache_size=self._cache.capacity,
            _connection=self._connection,
            _lock=self._lock,
            _dtypes=self._dtypes,
        )

    def close(self) -> None:
        """Close the underlying connection (no-op for shared siblings)."""
        if self._owns_connection:
            self._connection.close()

    # -- schema ---------------------------------------------------------------

    def _resolve_table_name(self, table_name: Optional[str]) -> str:
        if table_name:
            return table_name
        rows = self._execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name != ?",
            (_SCHEMA_TABLE,),
        )
        names = [row[0] for row in rows]
        if len(names) == 1:
            return names[0]
        if not names:
            raise BackendError(f"database {self.database!r} contains no table")
        raise BackendError(
            f"database {self.database!r} contains several tables "
            f"({', '.join(sorted(names))}); name one in the spec fragment, "
            "e.g. sqlite:///path.db#table"
        )

    def _load_schema(self) -> Dict[str, DataType]:
        recorded: Dict[str, DataType] = {}
        try:
            rows = self._execute(
                f"SELECT column_name, dtype FROM {_quote(_SCHEMA_TABLE)} "
                "WHERE table_name = ?",
                (self._table_name,),
            )
            recorded = {name: DataType(value) for name, value in rows}
        except sqlite3.Error:
            pass
        declared = self._execute(f"PRAGMA table_info({_quote(self._table_name)})")
        dtypes: Dict[str, DataType] = {}
        for _, name, decltype, *_rest in declared:
            if name in recorded:
                dtypes[name] = recorded[name]
            else:
                key = (decltype or "").split("(")[0].strip().upper()
                dtypes[name] = _DTYPE_FOR_DECL.get(key, DataType.STRING)
        return dtypes

    @property
    def name(self) -> str:
        return self._table_name

    @property
    def table_name(self) -> str:
        return self._table_name

    @property
    def num_rows(self) -> int:
        return self._live.num_rows

    @property
    def data_version(self) -> int:
        """Monotonic version of the data, shared by every sibling."""
        return self._live.version

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def dtype_of(self, attribute: str) -> DataType:
        dtype = self._dtypes.get(attribute)
        if dtype is None:
            raise UnknownColumnError(attribute, tuple(self._columns))
        return dtype

    def is_numeric(self, attribute: str) -> bool:
        return self.dtype_of(attribute).is_numeric

    # -- SQL plumbing ---------------------------------------------------------

    def _execute(self, sql: str, parameters: Sequence[Any] = ()) -> List[Tuple]:
        with self._lock:
            try:
                return self._connection.execute(sql, parameters).fetchall()
            except sqlite3.Error as error:
                raise BackendError(f"SQLite error for {sql!r}: {error}") from error

    def _encode_literal(self, dtype: DataType, value: Any) -> Any:
        if dtype is DataType.DATE and not isinstance(value, (int, float)):
            return date_to_ordinal(value)
        if dtype is DataType.BOOL and isinstance(value, bool):
            return int(value)
        return value

    def _encode_predicate(self, predicate: Predicate) -> Predicate:
        dtype = self.dtype_of(predicate.attribute)
        if dtype not in (DataType.DATE, DataType.BOOL):
            return predicate
        if isinstance(predicate, RangePredicate):
            return RangePredicate(
                predicate.attribute,
                low=self._encode_literal(dtype, predicate.low),
                high=self._encode_literal(dtype, predicate.high),
                include_low=predicate.include_low,
                include_high=predicate.include_high,
            )
        if isinstance(predicate, SetPredicate):
            return SetPredicate(
                predicate.attribute,
                frozenset(self._encode_literal(dtype, v) for v in predicate.values),
            )
        if isinstance(predicate, ExclusionPredicate):
            return ExclusionPredicate(
                predicate.attribute,
                frozenset(self._encode_literal(dtype, v) for v in predicate.values),
            )
        return predicate

    def _encoded_query(self, query: SDLQuery) -> SDLQuery:
        """Validate the attributes and encode date/bool literals for SQLite."""
        for attribute in query.attributes:
            if attribute not in self._dtypes:
                raise UnknownColumnError(attribute, tuple(self._columns))
        return SDLQuery(
            self._encode_predicate(p) if p.is_constrained else p
            for p in query.predicates
        )

    def _rendered_where(self, query: Optional[SDLQuery]) -> str:
        if query is None:
            return "TRUE"
        return query_to_where(self._encoded_query(query))

    def _decode_value(self, dtype: DataType, value: Any) -> Any:
        if value is None:
            return None
        if dtype is DataType.DATE:
            return ordinal_to_date(int(value))
        if dtype is DataType.BOOL:
            return bool(value)
        if dtype is DataType.INT:
            return int(value)
        return value

    # -- live mutation --------------------------------------------------------

    def _encode_cell(self, dtype: DataType, value: Any) -> Any:
        if is_missing(value):
            return None
        if dtype is DataType.BOOL:
            return int(bool(value))
        return self._encode_literal(dtype, value)

    def ingest(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Append row mappings in one transaction; returns the new version.

        Matches the column store's semantics: unknown columns are
        rejected, missing keys become NULL, dates and booleans are stored
        with the same encoding :meth:`from_table` uses.  Cache entries of
        superseded versions are evicted surgically; an empty batch is a
        no-op.
        """
        materialised = list(rows)
        if not materialised:
            return self._live.version
        reject_unknown_columns(materialised, self._columns)
        encoded: List[Tuple[Any, ...]] = [
            tuple(
                self._encode_cell(dtype, row.get(column))
                for column, dtype in self._dtypes.items()
            )
            for row in materialised
        ]
        placeholders = ", ".join("?" for _ in self._dtypes)
        sql = f"INSERT INTO {_quote(self._table_name)} VALUES ({placeholders})"
        with self._lock:
            try:
                self._connection.executemany(sql, encoded)
                self._connection.commit()
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(
                    f"SQLite ingest into {self._table_name!r} failed: {error}"
                ) from error
            self._live.num_rows += len(encoded)
            self._live.version += 1
            version = self._live.version
        self._cache.evict_superseded(version)
        return version

    def delete_where(self, query: SDLQuery) -> int:
        """Delete the rows a query selects (one transaction); returns the count.

        A query selecting nothing keeps the version — and every cache
        entry — intact.
        """
        where = self._rendered_where(query)
        with self._lock:
            try:
                cursor = self._connection.execute(
                    f"DELETE FROM {_quote(self._table_name)} WHERE {where}"
                )
                self._connection.commit()
            except sqlite3.Error as error:
                self._connection.rollback()
                raise BackendError(
                    f"SQLite delete on {self._table_name!r} failed: {error}"
                ) from error
            deleted = max(0, int(cursor.rowcount))
            if deleted:
                self._live.num_rows -= deleted
                self._live.version += 1
            version = self._live.version
        if deleted:
            self._cache.evict_superseded(version)
        return deleted

    # -- aggregate cache ------------------------------------------------------

    def _aggregate_get(self, key: str) -> Optional[Any]:
        if not self._cache_aggregates:
            return None
        value = self._cache.get(key, version=self._live.version)
        if value is not None:
            self.counter.add(aggregate_hits=1)
        return value

    def _aggregate_put(self, key: str, value: Any) -> None:
        if self._cache_aggregates:
            self._cache.put(key, value, version=self._live.version)

    # -- the two back-end operations (plus helpers) ---------------------------

    def count(self, query: SDLQuery) -> int:
        """``|R(Q)|`` via ``SELECT COUNT(*)`` (the paper's first operation)."""
        self.counter.add(count_calls=1)
        key = "count::" + query_signature(query)
        cached = self._aggregate_get(key)
        if cached is not None:
            return cached
        value = self._count_uncached(query)
        self._aggregate_put(key, value)
        return value

    def _count_uncached(self, query: SDLQuery) -> int:
        self.counter.add(evaluations=1)
        sql = count_query_sql(self._encoded_query(query), self._table_name)
        return int(self._execute(sql)[0][0])

    def cover(self, query: SDLQuery, context: Optional[SDLQuery] = None) -> float:
        """``C(Q)`` — table-relative, or context-relative when given."""
        numerator = self.count(query)
        denominator = self.num_rows if context is None else self.count(context)
        if denominator == 0:
            return 0.0
        return numerator / denominator

    def median(self, attribute: str, query: Optional[SDLQuery] = None) -> Any:
        """Arithmetic median via ordered ``LIMIT/OFFSET`` selection.

        Matches the column store's semantics exactly: the mean of the two
        middle values for even cardinalities, decoded per dtype (integral
        INT medians stay ``int``; DATE medians round down to a date).
        """
        self.counter.add(median_calls=1)
        unconstrained = query is None or not query.constrained_attributes
        key = "median:{}:{}".format(
            attribute, "" if unconstrained else query_signature(query)
        )
        cached = self._aggregate_get(key)
        if cached is not None:
            return cached
        value = self._median_uncached(attribute, query)
        self._aggregate_put(key, value)
        return value

    def _median_uncached(self, attribute: str, query: Optional[SDLQuery]) -> Any:
        dtype = self.dtype_of(attribute)
        if not dtype.is_numeric:
            raise TypeMismatchError(
                f"arithmetic median undefined for nominal column {attribute!r}"
            )
        where = self._rendered_where(query)
        quoted = _quote(attribute)
        table = _quote(self._table_name)
        valid = int(self._execute(
            f"SELECT COUNT({quoted}) FROM {table} WHERE {where}"
        )[0][0])
        if valid == 0:
            raise EmptyColumnError(f"median of empty selection on {attribute!r}")
        rows = self._execute(
            f"SELECT AVG(v) FROM (SELECT {quoted} AS v FROM {table} "
            f"WHERE {where} AND {quoted} IS NOT NULL "
            f"ORDER BY {quoted} LIMIT {2 - valid % 2} OFFSET {(valid - 1) // 2})"
        )
        return self._decode_median(dtype, float(rows[0][0]))

    def _decode_median(self, dtype: DataType, value: float) -> Any:
        if dtype is DataType.DATE:
            return ordinal_to_date(int(value))
        if dtype is DataType.INT and value.is_integer():
            return int(value)
        return value

    def minmax(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Tuple[Any, Any]:
        """Minimum and maximum via ``SELECT MIN(a), MAX(a)``."""
        self.counter.add(minmax_calls=1)
        dtype = self.dtype_of(attribute)
        unconstrained = query is None or not query.constrained_attributes
        key = "minmax:{}:{}".format(
            attribute, "" if unconstrained else query_signature(query)
        )
        cached = self._aggregate_get(key)
        if cached is not None:
            return cached
        where = self._rendered_where(query)
        quoted = _quote(attribute)
        row = self._execute(
            f"SELECT MIN({quoted}), MAX({quoted}) "
            f"FROM {_quote(self._table_name)} WHERE {where}"
        )[0]
        if row[0] is None:
            raise EmptyColumnError(f"minimum of empty selection on {attribute!r}")
        value = (self._decode_value(dtype, row[0]), self._decode_value(dtype, row[1]))
        self._aggregate_put(key, value)
        return value

    def value_frequencies(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Dict[Any, int]:
        """Value → count histogram via ``GROUP BY``."""
        self.counter.add(frequency_calls=1)
        dtype = self.dtype_of(attribute)
        where = self._rendered_where(query)
        quoted = _quote(attribute)
        rows = self._execute(
            f"SELECT {quoted}, COUNT(*) FROM {_quote(self._table_name)} "
            f"WHERE ({where}) AND {quoted} IS NOT NULL GROUP BY {quoted}"
        )
        return {self._decode_value(dtype, value): int(count) for value, count in rows}

    def distinct_count(self, attribute: str, query: Optional[SDLQuery] = None) -> int:
        """Number of distinct non-missing values under the query."""
        return len(self.value_frequencies(attribute, query))

    # -- batched passes -------------------------------------------------------

    def count_batch(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        """Cardinalities of many queries in one logical pass.

        Deduplication and accounting run through the shared
        :func:`~repro.storage.engine.deduplicated_count_batch` skeleton,
        so traces and service statistics are bit-for-bit comparable with
        the columnar engine's.
        """
        return deduplicated_count_batch(
            queries,
            self.counter,
            self._aggregate_get,
            self._aggregate_put,
            self._count_uncached,
        )

    def median_batch(
        self, attribute: str, queries: Sequence[Optional[SDLQuery]]
    ) -> Tuple[Any, ...]:
        """Medians of one attribute under many queries as one logical batch.

        Deduplication and accounting run through the shared
        :func:`~repro.storage.engine.deduplicated_median_batch` skeleton —
        the same one the columnar engine uses — so median traces stay
        bit-for-bit comparable across backends.
        """
        return deduplicated_median_batch(
            attribute,
            queries,
            self.counter,
            self._aggregate_get,
            self._aggregate_put,
            lambda query: self._median_uncached(attribute, query),
        )

    def counts_for(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        """Cardinalities for a batch of queries (one count call per query)."""
        return tuple(self.count(query) for query in queries)

    # -- statistics -----------------------------------------------------------

    @property
    def cache(self) -> ResultCache:
        """The (possibly shared) aggregate cache backing this backend."""
        return self._cache

    @property
    def cache_info(self) -> Dict[str, Any]:
        return self._cache.stats().snapshot()

    def stats(self) -> Dict[str, Any]:
        """Backend statistics: identity, operation tallies and cache traffic."""
        return {
            "backend": "sqlite",
            "database": self.database,
            "table": self._table_name,
            "rows": self.num_rows,
            "data_version": self.data_version,
            "operations": self.counter.snapshot(),
            "cache": self.cache_info,
        }

    def reset(self) -> None:
        """Zero the operation counters (cache contents are kept)."""
        self.counter.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SQLiteBackend(database={self.database!r}, "
            f"table={self._table_name!r}, rows={self.num_rows}, "
            f"version={self.data_version})"
        )
