"""The ``ExecutionBackend`` protocol: the advisor ↔ storage contract.

The paper positions Charles as "a front-end for SQL systems" (Section 1)
and observes in Section 5.1 that the advisor needs only **two kinds of
back-end operations** — counts over predicates and medians.  This module
makes that observation a formal seam: :class:`ExecutionBackend` is the
small protocol every execution engine implements, and everything above
the storage layer (CUT/COMPOSE/product, HB-cuts, metrics, the `Charles`
facade, the service layer) is written against it rather than against the
concrete in-memory :class:`~repro.storage.engine.QueryEngine`.

Conforming implementations shipped with the repo:

* :class:`~repro.storage.engine.QueryEngine` — the in-memory columnar
  engine (spec ``"memory"``);
* :class:`~repro.storage.sampling.SampledEngine` — a wrapper that answers
  statistics from a uniform sample of any backend (``"memory?sample=f"``);
* :class:`~repro.backends.sqlite.SQLiteBackend` — executes segments by
  rendering SDL through the :mod:`repro.storage.sql` glue against a
  ``sqlite3`` database (spec ``"sqlite"`` / ``"sqlite:///path.db#table"``);
* :class:`~repro.service.batching.BatchedEngine` — a wrapper that routes
  batched count passes through a cross-session coordinator.

Backends are obtained through :func:`repro.backends.open_backend`, which
resolves a textual spec against the :class:`~repro.backends.registry.BackendRegistry`.

Optional capabilities
---------------------
Two method families are deliberately *not* part of the protocol because
they expose in-memory representations: ``evaluate(query) -> mask`` and
``materialize(query) -> Table`` (plus the ``table`` attribute).  Callers
that need them — the profiler's fast path, the partition validator, the
histogram renderer — must check for them (``getattr(backend, "table",
None)``) and degrade gracefully; :func:`repro.storage.statistics.profile_backend`
is the aggregate-only fallback used by ``Charles.profile``.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.sdl.query import SDLQuery

__all__ = ["ExecutionBackend", "BackendWrapper"]


@runtime_checkable
class ExecutionBackend(Protocol):
    """What the advisor requires from an execution engine.

    The surface is intentionally tiny (the paper's two operations, plus
    the schema introspection and batching hooks the reproduction grew):

    ======================  ====================================================
    member                  meaning
    ======================  ====================================================
    ``name``                the relation's name (used in reports and SQL)
    ``num_rows``            ``|T|`` — cardinality of the relation
    ``column_names``        attributes of the relation, in schema order
    ``is_numeric(a)``       whether ``a`` supports arithmetic medians
    ``count(q)``            ``|R(Q)|`` — rows selected by an SDL query
    ``cover(q, c)``         ``|R(Q)| / |R(C)|`` (table-relative without ``c``)
    ``median(a, q)``        arithmetic median of ``a`` over ``R(Q)``
    ``minmax(a, q)``        minimum and maximum of ``a`` over ``R(Q)``
    ``value_frequencies``   value → count histogram of ``a`` over ``R(Q)``
    ``distinct_count``      number of distinct non-missing values
    ``count_batch(qs)``     many counts in one engine pass (deduplicated)
    ``median_batch``        many medians of one attribute as one pass
    ``counts_for(qs)``      sequential convenience counts (one call each)
    ``counter``             an ``OperationCounter`` tallying logical work
    ``stats()``             backend-specific statistics snapshot (dict)
    ``reset()``             zero the operation counters
    ``data_version``        monotonic version of the data answers reflect
    ``ingest(rows)``        append a batch of row mappings (new version)
    ``delete_where(q)``     delete the rows a query selects (count removed)
    ======================  ====================================================

    The three live-data members make every backend *mutation-aware*:
    ``ingest``/``delete_where`` bump the monotonic ``data_version`` and
    surgically evict superseded cache entries, and callers (sessions, the
    service layer, remote clients) compare versions to detect stale
    advice.  Backends that cannot mutate (frozen statistical views such
    as :class:`~repro.storage.sampling.SampledEngine`) still expose the
    members but raise on mutation.
    """

    @property
    def name(self) -> str: ...

    @property
    def num_rows(self) -> int: ...

    @property
    def column_names(self) -> List[str]: ...

    @property
    def counter(self) -> Any: ...

    def is_numeric(self, attribute: str) -> bool: ...

    def count(self, query: SDLQuery) -> int: ...

    def cover(self, query: SDLQuery, context: Optional[SDLQuery] = None) -> float: ...

    def median(self, attribute: str, query: Optional[SDLQuery] = None) -> Any: ...

    def minmax(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Tuple[Any, Any]: ...

    def value_frequencies(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Dict[Any, int]: ...

    def distinct_count(self, attribute: str, query: Optional[SDLQuery] = None) -> int: ...

    def count_batch(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]: ...

    def median_batch(
        self, attribute: str, queries: Sequence[Optional[SDLQuery]]
    ) -> Tuple[Any, ...]: ...

    def counts_for(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]: ...

    def stats(self) -> Dict[str, Any]: ...

    def reset(self) -> None: ...

    @property
    def data_version(self) -> int: ...

    def ingest(self, rows: Iterable[Mapping[str, Any]]) -> int: ...

    def delete_where(self, query: SDLQuery) -> int: ...


class BackendWrapper:
    """Base class for backends that decorate another backend.

    :class:`~repro.storage.sampling.SampledEngine` and
    :class:`~repro.service.batching.BatchedEngine` used to *subclass* the
    concrete ``QueryEngine``; they now wrap **any**
    :class:`ExecutionBackend` instead, overriding only the operations they
    change.  Every protocol member delegates to the wrapped backend;
    optional capabilities (``table``, ``evaluate``, ``materialize``,
    ``cache`` …) pass through via ``__getattr__`` so a wrapper is exactly
    as capable as what it wraps.
    """

    def __init__(self, inner: ExecutionBackend):
        self._inner = inner

    @property
    def inner(self) -> ExecutionBackend:
        """The wrapped backend (one layer down)."""
        return self._inner

    def unwrap(self) -> ExecutionBackend:
        """The innermost backend below every wrapper layer."""
        backend = self._inner
        while isinstance(backend, BackendWrapper):
            backend = backend.inner
        return backend

    # -- protocol delegation --------------------------------------------------

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def num_rows(self) -> int:
        return self._inner.num_rows

    @property
    def column_names(self) -> List[str]:
        return self._inner.column_names

    @property
    def counter(self) -> Any:
        return self._inner.counter

    def is_numeric(self, attribute: str) -> bool:
        return self._inner.is_numeric(attribute)

    def count(self, query: SDLQuery) -> int:
        return self._inner.count(query)

    def cover(self, query: SDLQuery, context: Optional[SDLQuery] = None) -> float:
        # Delegate rather than recompute from self.count: a wrapper that
        # transforms counts (e.g. a sampling wrapper scaling estimates)
        # defines its own consistent cover.
        return self._inner.cover(query, context)

    def median(self, attribute: str, query: Optional[SDLQuery] = None) -> Any:
        return self._inner.median(attribute, query)

    def minmax(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Tuple[Any, Any]:
        return self._inner.minmax(attribute, query)

    def value_frequencies(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Dict[Any, int]:
        return self._inner.value_frequencies(attribute, query)

    def distinct_count(self, attribute: str, query: Optional[SDLQuery] = None) -> int:
        return self._inner.distinct_count(attribute, query)

    def count_batch(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        return self._inner.count_batch(queries)

    def median_batch(
        self, attribute: str, queries: Sequence[Optional[SDLQuery]]
    ) -> Tuple[Any, ...]:
        return self._inner.median_batch(attribute, queries)

    def counts_for(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        return tuple(self.count(query) for query in queries)

    def stats(self) -> Dict[str, Any]:
        return self._inner.stats()

    def reset(self) -> None:
        self._inner.reset()

    @property
    def data_version(self) -> int:
        return self._inner.data_version

    def ingest(self, rows: Iterable[Mapping[str, Any]]) -> int:
        return self._inner.ingest(rows)

    def delete_where(self, query: SDLQuery) -> int:
        return self._inner.delete_where(query)

    # -- optional capabilities pass through ------------------------------------

    def __getattr__(self, item: str) -> Any:
        # Only called when normal lookup fails: optional capabilities such
        # as ``table``, ``evaluate``, ``materialize``, ``cache`` delegate to
        # the wrapped backend.
        if item == "_inner":  # guard against recursion before __init__ ran
            raise AttributeError(item)
        return getattr(self._inner, item)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self._inner!r})"
