"""ApproxEngine: bounded-error answers from mergeable per-shard sketches.

The interactive half of ROADMAP's raw-speed work: instead of scanning,
:class:`ApproxEngine` answers ``count`` / ``median`` /
``value_frequencies`` by **merging per-shard sketches**
(:mod:`repro.storage.sketches`) built lazily over the wrapped engine's
:class:`~repro.storage.partition.PartitionedTable`.  Every approximate
answer carries an explicit error bound, surfaced two ways:

* the rich API (:meth:`approx_count`, :meth:`approx_median`) returns
  :class:`Estimate` objects — ``(estimate, error_bound,
  approximate=True)``;
* the :class:`~repro.backends.base.ExecutionBackend` protocol methods
  return plain values (so HB-cuts runs unchanged) while the engine
  tracks the worst bound it reported, drained by
  :meth:`take_error_bound` — that is the figure an interactive
  :class:`~repro.core.advisor.Advice` stamps on itself.

Error semantics, precisely: estimates for a **single** predicate (one
range, one value set) are within the reported bound *provably* — the
sketches track their rank error exactly and the differential harness
asserts containment.  Multi-predicate counts multiply marginal
selectivities under an attribute-independence assumption (the reported
bound is the propagated marginal interval, not a joint guarantee), which
is why approximate advice is always backed by an exact refinement path.

Isolation is a hard invariant: the engine keeps its merged summaries in
a **private** version-keyed cache and never computes masks or touches the
wrapped engine's :class:`~repro.storage.cache.ResultCache`, so a later
exact run over the same engine is byte-identical to one that never saw
the approximate tier (the refinement-parity differential test enforces
this).

Specs: ``memory?approx=1`` (default budget) or ``memory?approx=4096``
(budget in retained items per sketch) resolve here through
:func:`repro.backends.open_backend`, composing with ``partitions``,
``workers`` and ``index``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.backends.base import BackendWrapper, ExecutionBackend
from repro.errors import BackendError, EmptyColumnError
from repro.obs.trace import current_span
from repro.sdl.predicates import (
    ExclusionPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.sdl.query import SDLQuery
from repro.storage.cache import ResultCache
from repro.storage.column import BoolColumn, NumericColumn
from repro.storage.partition import PartitionedTable
from repro.storage.sketches import (
    DEFAULT_SKETCH_BUDGET,
    MergeableQuantileSketch,
    NominalCountSketch,
    TableSketches,
)
from repro.storage.types import DataType, coerce_value

__all__ = ["Estimate", "ApproxEngine"]


@dataclass(frozen=True)
class Estimate:
    """One approximate answer: the value, its bound, and the approx flag.

    ``error_bound`` is a fraction — of the table's rows for counts and
    frequencies, of the selection's rank span for medians — so bounds are
    comparable across table sizes.
    """

    estimate: Any
    error_bound: float
    approximate: bool = True


class ApproxEngine(BackendWrapper):
    """A backend answering statistics from merged per-shard sketches.

    Parameters
    ----------
    inner:
        The engine to wrap.  Must be memory-backed (a
        :class:`~repro.storage.engine.QueryEngine` or a wrapper around
        one): the sketch tier hangs off its partitioned shard set.
    budget:
        Retained items per quantile sketch (error shrinks as the budget
        grows; see :data:`~repro.storage.sketches.DEFAULT_SKETCH_BUDGET`).
    cache:
        A private version-keyed cache for merged table-level summaries.
        Shared between siblings (the summaries are deterministic per data
        version); **never** the wrapped engine's result cache.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        budget: int = DEFAULT_SKETCH_BUDGET,
        cache: Optional[ResultCache] = None,
    ):
        if getattr(inner, "source", None) is None or not hasattr(
            inner, "partitioned_table"
        ):
            raise BackendError(
                f"the approx tier requires a memory-backed engine exposing "
                f"partitioned shards; {type(inner).__name__} does not"
            )
        super().__init__(inner)
        self._budget = max(2, int(budget))
        self._sketches = cache if cache is not None else ResultCache(
            capacity=128, name=f"approx:{inner.name}"
        )
        self._bound_lock = threading.Lock()
        self._max_error = 0.0

    # -- identity ---------------------------------------------------------------

    @property
    def budget(self) -> int:
        """Retained items per quantile sketch."""
        return self._budget

    @property
    def sketch_cache(self) -> ResultCache:
        """The private cache holding merged table-level summaries."""
        return self._sketches

    def stats(self) -> Dict[str, Any]:
        inner_stats = self.inner.stats()
        return {
            **inner_stats,
            "backend": f"approx({inner_stats.get('backend', 'memory')})",
            "approx": {
                "budget": self._budget,
                "sketch_cache": self._sketches.stats().snapshot(),
            },
        }

    def sibling(self) -> "ApproxEngine":
        """An approx engine over a sibling of the wrapped engine.

        Shares the merged-summary cache (summaries are deterministic per
        data version) while the sibling keeps private operation counters.
        """
        return ApproxEngine(
            self.inner.sibling(), budget=self._budget, cache=self._sketches
        )

    # -- error-bound accounting -------------------------------------------------

    def _note_error(self, fraction: float) -> None:
        with self._bound_lock:
            if fraction > self._max_error:
                self._max_error = float(fraction)

    def take_error_bound(self) -> float:
        """The worst error bound reported since the last drain (and reset)."""
        with self._bound_lock:
            bound, self._max_error = self._max_error, 0.0
        return bound

    # -- sketch access ----------------------------------------------------------

    def _state(self) -> Tuple[int, PartitionedTable]:
        """The wrapped engine's live ``(version, shard set)``, atomically.

        Uses the shared :class:`~repro.live.VersionedTable` memo, so the
        sketches attached to a superseded shard set can never answer a
        query against newer data.
        """
        source = self.inner.source
        partitions = self.inner.partitions
        version, snapshot = source.state()
        sharded = source.partitioned(partitions)
        if sharded.table is not snapshot:  # pragma: no cover - mutation race
            sharded = PartitionedTable(snapshot, partitions)
        return version, sharded

    def _tier(self, sharded: PartitionedTable) -> TableSketches:
        return sharded.sketches(self._budget)

    def _quantile_summary(
        self, attribute: str, version: int, tier: TableSketches
    ) -> MergeableQuantileSketch:
        key = f"sketch:quantile:{self._budget}:{attribute}"
        return self._sketches.get_or_compute(
            key, lambda: tier.merged_quantile(attribute), version=version
        )

    def _nominal_summary(
        self, attribute: str, version: int, tier: TableSketches
    ) -> NominalCountSketch:
        key = f"sketch:nominal:{self._budget}:{attribute}"
        return self._sketches.get_or_compute(
            key, lambda: tier.merged_nominal(attribute), version=version
        )

    # -- selectivities ----------------------------------------------------------

    def _normalise(self, column: Any, value: Any) -> Any:
        """A predicate value in the column's ``value_counts`` domain.

        Mirrors the encodings ``mask_set`` applies, raising the same
        errors, so an unanswerable predicate fails identically here.
        """
        if isinstance(column, NumericColumn):
            return column._decode_scalar(column._encode_bound(value))
        if isinstance(column, BoolColumn):
            return bool(coerce_value(value, DataType.BOOL))
        return str(value)

    def _selectivity(
        self,
        predicate: Predicate,
        version: int,
        sharded: PartitionedTable,
        tier: TableSketches,
    ) -> Tuple[float, float]:
        """``(fraction, error_fraction)`` of rows the predicate selects.

        Fractions are relative to the full table (missing values never
        satisfy a constraint, and the sketches only summarise valid
        rows, so no missing-value correction is needed).
        """
        rows = sharded.num_rows
        if rows == 0:
            return 0.0, 0.0
        column = sharded.table.column(predicate.attribute)
        if isinstance(predicate, RangePredicate) and isinstance(
            column, NumericColumn
        ):
            sketch = self._quantile_summary(predicate.attribute, version, tier)
            estimate, error = sketch.range_weight(
                column._encode_bound(predicate.low),
                column._encode_bound(predicate.high),
                predicate.include_low,
                predicate.include_high,
            )
            return estimate / rows, error / rows
        nominal = self._nominal_summary(predicate.attribute, version, tier)
        if isinstance(predicate, RangePredicate):
            low, high = str(predicate.low), str(predicate.high)
            estimate = sum(
                count
                for value, count in nominal.counts.items()
                if self._within(value, low, high, predicate)
            )
            return estimate / rows, nominal.spilled_weight / rows
        if isinstance(predicate, (SetPredicate, ExclusionPredicate)):
            members = {self._normalise(column, v) for v in predicate.values}
            selected = sum(nominal.estimate(value)[0] for value in members)
            error = len(members) * nominal.max_dropped
            if isinstance(predicate, SetPredicate):
                return selected / rows, error / rows
            return (nominal.total_weight - selected) / rows, error / rows
        return 1.0, 0.0

    @staticmethod
    def _within(value: Any, low: str, high: str, predicate: RangePredicate) -> bool:
        text = str(value)
        if predicate.include_low:
            if text < low:
                return False
        elif text <= low:
            return False
        if predicate.include_high:
            if text > high:
                return False
        elif text >= high:
            return False
        return True

    def _query_selectivity(
        self,
        query: Optional[SDLQuery],
        version: int,
        sharded: PartitionedTable,
        tier: TableSketches,
        skip_attribute: Optional[str] = None,
    ) -> Tuple[float, float, float]:
        """``(estimate, low, high)`` of the query's joint selectivity.

        Marginal intervals multiply (the independence assumption); the
        interval is exact for a single constrained predicate and a
        propagated heuristic beyond that.
        """
        estimate = low = high = 1.0
        if query is None:
            return estimate, low, high
        for predicate in query.predicates:
            if not predicate.is_constrained:
                continue
            if predicate.attribute == skip_attribute:
                continue
            fraction, error = self._selectivity(predicate, version, sharded, tier)
            estimate *= fraction
            low *= max(0.0, fraction - error)
            high *= min(1.0, fraction + error)
        return estimate, low, high

    # -- rich approximate answers ------------------------------------------------

    def approx_count(self, query: SDLQuery) -> Estimate:
        """``|R(Q)|`` as an :class:`Estimate` from merged sketches."""
        version, sharded = self._state()
        tier = self._tier(sharded)
        rows = sharded.num_rows
        fraction, low, high = self._query_selectivity(query, version, sharded, tier)
        estimate = int(round(rows * min(1.0, max(0.0, fraction))))
        bound = max(fraction - low, high - fraction)
        return Estimate(estimate, min(1.0, bound))

    def _range_on(
        self, query: Optional[SDLQuery], attribute: str
    ) -> Optional[RangePredicate]:
        if query is None:
            return None
        for predicate in query.predicates:
            if (
                isinstance(predicate, RangePredicate)
                and predicate.attribute == attribute
            ):
                return predicate
        return None

    def approx_median(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Estimate:
        """Median of ``attribute`` from the merged quantile sketch.

        The query's own range constraint on ``attribute`` restricts the
        sketch; constraints on *other* attributes are ignored (the
        marginal, independence-flavoured answer).  The bound is the rank
        tolerance of the answered quantile.
        """
        version, sharded = self._state()
        tier = self._tier(sharded)
        column = sharded.table.column(attribute)
        if isinstance(column, NumericColumn):
            sketch = self._quantile_summary(attribute, version, tier)
            own = self._range_on(query, attribute)
            if own is not None:
                sketch = sketch.restrict(
                    column._encode_bound(own.low),
                    column._encode_bound(own.high),
                    own.include_low,
                    own.include_high,
                )
            if sketch.total_weight == 0:
                raise EmptyColumnError(
                    f"median of empty selection on {attribute!r}"
                )
            value = column._decode_median(sketch.quantile(0.5))
            return Estimate(value, sketch.rank_error_fraction)
        nominal = self._nominal_summary(attribute, version, tier)
        if nominal.total_weight == 0 or not nominal.counts:
            raise EmptyColumnError(f"median of empty selection on {attribute!r}")
        target = nominal.total_weight / 2
        cumulative = 0
        value = None
        for value, count in sorted(nominal.counts.items(), key=lambda kv: str(kv[0])):
            cumulative += count
            if cumulative >= target:
                break
        bound = (
            nominal.spilled_weight / nominal.total_weight
            if nominal.total_weight
            else 0.0
        )
        return Estimate(value, min(1.0, bound))

    # -- ExecutionBackend protocol (approximate) ----------------------------------

    def count(self, query: SDLQuery) -> int:
        parent = current_span()
        if parent is None:
            self.counter.add(count_calls=1)
            answer = self.approx_count(query)
            self._note_error(answer.error_bound)
            return int(answer.estimate)
        started = time.perf_counter()
        self.counter.add(count_calls=1)
        answer = self.approx_count(query)
        self._note_error(answer.error_bound)
        parent.record(
            "approx.count",
            time.perf_counter() - started,
            approximate=True,
            error_bound=answer.error_bound,
        )
        return int(answer.estimate)

    def cover(self, query: SDLQuery, context: Optional[SDLQuery] = None) -> float:
        numerator = self.count(query)
        if context is None:
            denominator = self.num_rows
        else:
            denominator = self.count(context)
        if denominator == 0:
            return 0.0
        return numerator / denominator

    def median(self, attribute: str, query: Optional[SDLQuery] = None) -> Any:
        parent = current_span()
        if parent is None:
            self.counter.add(median_calls=1)
            answer = self.approx_median(attribute, query)
            self._note_error(answer.error_bound)
            return answer.estimate
        started = time.perf_counter()
        self.counter.add(median_calls=1)
        answer = self.approx_median(attribute, query)
        self._note_error(answer.error_bound)
        parent.record(
            "approx.median",
            time.perf_counter() - started,
            approximate=True,
            error_bound=answer.error_bound,
            attribute=attribute,
        )
        return answer.estimate

    def minmax(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Tuple[Any, Any]:
        """Exact per-shard extrema, clipped to the query's own range.

        Extrema merge exactly across shards (one scan each, memoized), so
        the unconstrained answer matches the exact engine; a range
        constraint on the attribute itself clips the interval, other
        constraints are ignored.
        """
        self.counter.add(minmax_calls=1)
        version, sharded = self._state()
        tier = self._tier(sharded)
        _, valid, minimum, maximum = tier.merged_stats(attribute)
        if valid == 0:
            raise EmptyColumnError(
                f"minimum of empty selection on {attribute!r}"
            )
        own = self._range_on(query, attribute)
        if own is not None:
            column = sharded.table.column(attribute)
            if isinstance(column, NumericColumn):
                low = column._decode_scalar(column._encode_bound(own.low))
                high = column._decode_scalar(column._encode_bound(own.high))
                minimum = max(minimum, low)
                maximum = min(maximum, high)
                if minimum > maximum:
                    raise EmptyColumnError(
                        f"minimum of empty selection on {attribute!r}"
                    )
        return minimum, maximum

    def value_frequencies(
        self, attribute: str, query: Optional[SDLQuery] = None
    ) -> Dict[Any, int]:
        """Marginal value counts, scaled by the other attributes' selectivity."""
        self.counter.add(frequency_calls=1)
        version, sharded = self._state()
        tier = self._tier(sharded)
        nominal = self._nominal_summary(attribute, version, tier)
        counts: Dict[Any, int] = dict(nominal.counts)
        column = sharded.table.column(attribute)
        own = None if query is None else [
            predicate
            for predicate in query.predicates
            if predicate.is_constrained and predicate.attribute == attribute
        ]
        if own:
            for predicate in own:
                counts = {
                    value: count
                    for value, count in counts.items()
                    if self._satisfies(column, value, predicate)
                }
        scale, low, high = self._query_selectivity(
            query, version, sharded, tier, skip_attribute=attribute
        )
        spill = (
            nominal.spilled_weight / sharded.num_rows if sharded.num_rows else 0.0
        )
        self._note_error(min(1.0, max(scale - low, high - scale) + spill))
        if scale >= 1.0:
            return counts
        scaled = {
            value: int(round(count * scale)) for value, count in counts.items()
        }
        return {value: count for value, count in scaled.items() if count > 0}

    def _satisfies(self, column: Any, value: Any, predicate: Predicate) -> bool:
        """Whether a retained sketch value satisfies its own-attribute predicate."""
        if isinstance(predicate, RangePredicate):
            if isinstance(column, NumericColumn):
                low = column._decode_scalar(column._encode_bound(predicate.low))
                high = column._decode_scalar(column._encode_bound(predicate.high))
                if predicate.include_low:
                    if value < low:
                        return False
                elif value <= low:
                    return False
                if predicate.include_high:
                    if value > high:
                        return False
                elif value >= high:
                    return False
                return True
            return self._within(value, str(predicate.low), str(predicate.high), predicate)
        if isinstance(predicate, SetPredicate):
            return value in {self._normalise(column, v) for v in predicate.values}
        if isinstance(predicate, ExclusionPredicate):
            return value not in {self._normalise(column, v) for v in predicate.values}
        return True

    def distinct_count(self, attribute: str, query: Optional[SDLQuery] = None) -> int:
        return len(self.value_frequencies(attribute, query))

    def count_batch(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        self.counter.add(batch_calls=1)
        return tuple(self.count(query) for query in queries)

    def median_batch(
        self, attribute: str, queries: Sequence[Optional[SDLQuery]]
    ) -> Tuple[Any, ...]:
        self.counter.add(batch_calls=1)
        return tuple(self.median(attribute, query) for query in queries)

    def counts_for(self, queries: Sequence[SDLQuery]) -> Tuple[int, ...]:
        return tuple(self.count(query) for query in queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApproxEngine(table={self.name!r}, rows={self.num_rows}, "
            f"budget={self._budget})"
        )
