"""ParallelEngine: partitioned, pooled execution behind the backend seam.

:class:`ParallelEngine` packages the partitioned execution substrate as a
:class:`~repro.backends.base.BackendWrapper`: it shards the source table
into row-range partitions (:class:`~repro.storage.partition.PartitionedTable`),
owns or shares an :class:`~repro.backends.pool.ExecutorPool`, and fans
``count`` / ``count_batch`` / ``median_batch`` (and every mask
evaluation underneath them) across the partitions through the pool —
masks concatenate, counts sum, medians merge per-partition value
gathers.

The wrapped engine is a partition-aware
:class:`~repro.storage.engine.QueryEngine`, so the guarantees are
inherited rather than re-implemented: :class:`OperationCounter` tallies
and :class:`~repro.storage.cache.ResultCache` contents are identical to
the sequential (``workers=1`` / ``partitions=1``) path, and every result
is bit-for-bit the sequential result.

Specs: ``memory?partitions=4&workers=4`` resolves here through
:func:`repro.backends.open_backend`; ``workers`` defaults to the
partition count and vice versa, so either parameter alone turns the
feature on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.backends.base import BackendWrapper
from repro.backends.pool import ExecutorPool
from repro.errors import BackendError
from repro.storage.cache import ResultCache
from repro.storage.engine import QueryEngine
from repro.storage.table import Table

__all__ = ["ParallelEngine"]


class ParallelEngine(BackendWrapper):
    """A backend that evaluates over sharded row ranges through a pool.

    Parameters
    ----------
    source:
        The relation to query — a :class:`~repro.storage.table.Table`, or
        any backend exposing an in-memory ``table`` (its cache options are
        *not* inherited; pass them explicitly).
    partitions:
        Number of contiguous row-range shards (defaults to the pool's
        worker count).
    workers:
        Pool size when no shared ``pool`` is given (defaults to
        ``partitions``; ``None``/``0`` means one per core).
    pool:
        An externally owned :class:`~repro.backends.pool.ExecutorPool` to
        share (the service layer passes one pool for every session and
        table).  When omitted the engine creates—and owns—its own.
    cache, cache_aggregates, cache_size, use_index:
        Forwarded to the underlying :class:`~repro.storage.engine.QueryEngine`.
    """

    def __init__(
        self,
        source: Union[Table, Any],
        partitions: Optional[int] = None,
        workers: Optional[int] = None,
        pool: Optional[ExecutorPool] = None,
        cache: Optional[ResultCache] = None,
        cache_aggregates: bool = False,
        cache_size: int = 256,
        use_index: Union[bool, str, Any] = False,
        _engine: Optional[QueryEngine] = None,
    ):
        if _engine is not None:
            engine = _engine
            pool = pool if pool is not None else engine.pool
            if pool is None:
                pool = ExecutorPool(1, name=f"parallel:{engine.table.name}")
        else:
            if isinstance(source, Table):
                table = source
            else:
                table = getattr(source, "table", None)
                if table is None:
                    raise BackendError(
                        f"cannot partition backend {type(source).__name__}: it "
                        "exposes no in-memory table"
                    )
            if pool is None:
                pool = ExecutorPool(
                    workers if workers is not None else partitions,
                    name=f"parallel:{table.name}",
                )
            if partitions is None:
                partitions = pool.workers
            partitions = int(partitions)
            if partitions < 1:
                raise BackendError(
                    f"partitions must be at least 1, got {partitions}"
                )
            engine = QueryEngine(
                table,
                cache_size=cache_size,
                use_index=use_index,
                cache=cache,
                cache_aggregates=cache_aggregates,
                partitions=partitions,
                pool=pool,
            )
        super().__init__(engine)
        self._pool = pool

    # -- parallel introspection -----------------------------------------------

    @property
    def pool(self) -> ExecutorPool:
        """The executor pool running per-partition work."""
        return self._pool

    @property
    def partitions(self) -> int:
        """Number of row-range shards the table is split into."""
        return self.inner.partitions

    def stats(self) -> Dict[str, Any]:
        """Inner-engine statistics plus the parallel substrate's."""
        inner_stats = self.inner.stats()
        return {
            **inner_stats,
            "backend": f"parallel({inner_stats.get('backend', 'memory')})",
            "pool": self._pool.stats(),
        }

    # -- construction helpers ---------------------------------------------------

    def sample(self, fraction: float, seed: Optional[int] = None) -> "ParallelEngine":
        """A parallel engine over a uniform sample (same shard count,
        same pool), so ``memory?partitions=N&workers=K&sample=f`` keeps
        the sampled statistics partitioned too."""
        from repro.storage.sampling import sample_table

        sampled = sample_table(self.inner.table, fraction=fraction, seed=seed)
        return ParallelEngine(
            sampled,
            partitions=self.partitions,
            pool=self._pool,
            cache_size=self.inner._cache_size,
            use_index=self.inner.index_features,
        )

    def sibling(self) -> "ParallelEngine":
        """A parallel engine over the same shards, pool and shared cache,
        with private operation counters (one per service session)."""
        return ParallelEngine(
            self.inner.table, pool=self._pool, _engine=self.inner.sibling()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelEngine(table={self.name!r}, rows={self.num_rows}, "
            f"partitions={self.partitions}, workers={self._pool.workers})"
        )
