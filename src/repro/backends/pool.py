"""The shared executor pool behind partitioned parallel evaluation.

The paper's workload is *embarrassingly scannable* (Section 5.1): counts
and medians over predicates decompose into independent per-partition
scans.  :class:`ExecutorPool` is the one place that turns that
independence into concurrency — a bounded, introspectable worker pool
that callers *share*:

* the partition-aware :class:`~repro.storage.engine.QueryEngine` maps
  per-partition masks, counts and median gathers through it;
* :class:`~repro.core.hbcuts.HBCuts` evaluates the candidate INDEP pairs
  of an iteration through it (the pairs are independent by construction);
* :class:`~repro.service.AdvisorService` owns a single pool shared by
  every session and reports its statistics via ``stats()``.

Execution uses threads: NumPy releases the GIL inside the comparison and
reduction kernels that dominate partition scans, so row-range shards
genuinely run in parallel.  The surface (``map`` preserving input order)
is deliberately process-capable — a ``ProcessPoolExecutor``-backed
variant can slot in later without touching any caller.

``workers=1`` (the default) maps inline on the calling thread: the
sequential path is the one-worker special case, not a separate code path,
which is what makes the determinism guarantee trivial — the same tasks
run in the same order with the same merge, whatever the worker count.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import BackendError

__all__ = ["ExecutorPool", "parallel_requested", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Hard upper bound on workers per pool — the pool is *bounded* by design.
MAX_WORKERS = 64


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``None`` or ``0`` means "one worker per available core"; explicit
    values are clamped to ``[1, MAX_WORKERS]``.  Negative values are an
    error rather than silently sequential.
    """
    if workers is None or workers == 0:
        return min(os.cpu_count() or 1, MAX_WORKERS)
    workers = int(workers)
    if workers < 0:
        raise BackendError(f"workers cannot be negative, got {workers}")
    return min(workers, MAX_WORKERS)


def parallel_requested(
    partitions: Optional[int] = None,
    workers: Optional[int] = None,
    pool: Optional["ExecutorPool"] = None,
) -> bool:
    """Whether any of the parallel knobs opts into partitioned execution.

    The single definition of "did the caller ask for parallelism": more
    than one partition, a worker count other than the sequential default
    of ``1`` (so ``0`` — one worker per core — counts as opting in), or an
    explicit pool.  Every entry point (``Charles``, ``open_backend``,
    ``AdvisorService``) consults this one predicate so the same value
    means the same thing everywhere.
    """
    return (
        pool is not None
        or (partitions is not None and int(partitions) > 1)
        or (workers is not None and int(workers) != 1)
    )


class ExecutorPool:
    """A bounded, shared, introspectable worker pool (threads for now).

    Parameters
    ----------
    workers:
        Concurrency bound.  ``1`` executes inline (sequential special
        case); ``None``/``0`` uses one worker per available core; every
        value is capped at :data:`MAX_WORKERS`.
    name:
        Cosmetic label shown in service statistics.

    The underlying executor is created lazily on the first genuinely
    parallel ``map`` and reused for the pool's lifetime; ``shutdown()``
    (or use as a context manager) releases the threads.  All bookkeeping
    is lock-protected, so a single pool may be shared by any number of
    engines and sessions.
    """

    _POOL_IDS = iter(range(1, 1 << 30))

    def __init__(self, workers: Optional[int] = 1, name: str = "pool"):
        self.name = name
        self._workers = resolve_workers(workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._tasks = 0
        self._parallel_batches = 0
        self._inline_batches = 0
        # Process-unique worker-thread prefix: how re-entrant maps from this
        # pool's own workers are recognised (and run inline).
        self._thread_prefix = f"charles-{name}-{next(self._POOL_IDS)}"

    @property
    def workers(self) -> int:
        """The pool's concurrency bound."""
        return self._workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving input order.

        Batches of at most one item — and every batch on a one-worker
        pool — run inline on the calling thread; anything else fans out
        across the pool's threads.  Exceptions propagate exactly as the
        inline path would raise them (first failing item wins).

        **Nested maps run inline.**  A task already executing on one of
        this pool's workers (e.g. a partitioned count issued from inside a
        parallel INDEP evaluation) must not wait on the same bounded pool
        — with every worker blocked on queued sub-tasks nothing would ever
        run.  Detecting the re-entry and degrading to the inline path
        keeps the pool deadlock-free at any nesting depth, with identical
        results.
        """
        items = list(items)
        if self._workers <= 1 or len(items) <= 1 or self._in_worker():
            with self._lock:
                self._inline_batches += 1
                self._tasks += len(items)
            return [fn(item) for item in items]
        with self._lock:
            self._parallel_batches += 1
            self._tasks += len(items)
            executor = self._executor
            if executor is None:
                executor = self._executor = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix=self._thread_prefix,
                )
        return list(executor.map(fn, items))

    def _in_worker(self) -> bool:
        """Whether the calling thread is one of this pool's own workers.

        Executor threads are named ``<prefix>_<n>``; matching up to and
        including the separator keeps pool ids that are string prefixes of
        each other (1 vs 10) from claiming each other's workers.
        """
        return threading.current_thread().name.startswith(self._thread_prefix + "_")

    def stats(self) -> Dict[str, Any]:
        """Pool statistics for service reports."""
        with self._lock:
            return {
                "name": self.name,
                "workers": self._workers,
                "tasks": self._tasks,
                "parallel_batches": self._parallel_batches,
                "inline_batches": self._inline_batches,
                "started": self._executor is not None,
            }

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker threads (the pool stays usable: a later
        ``map`` starts a fresh executor)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        # Deliberately free of object identity: reprs of configuration
        # objects feed cache keys in the service layer.
        return f"ExecutorPool(name={self.name!r}, workers={self._workers})"
