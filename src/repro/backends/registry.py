"""Backend registry: textual specs → :class:`ExecutionBackend` instances.

A backend *spec* is a compact URI-like string::

    memory                      the in-memory columnar QueryEngine
    memory?sample=0.1&seed=7    SampledEngine over a 10% uniform sample
    memory?index=1&cache=512    engine options as query parameters
    memory?index=zonemap,bitmap,maskreuse   skipping-index tier (or index=all)
    memory?partitions=4&workers=4   ParallelEngine: sharded, pooled evaluation
    memory?approx=1             ApproxEngine: sketch answers with error bounds
    memory?approx=4096          … with a 4096-item retention budget per sketch
    sqlite                      load the table into an in-memory SQLite db
    sqlite?sample=0.25          … sampled, materialised inside SQLite
    sqlite:///path/to/db.db#t   open table ``t`` of an existing database

Grammar: ``scheme[://path][?key=value&...][#fragment]``.  The path after
``://`` is used verbatim as a filesystem path — ``sqlite://x.db`` is
relative to the working directory, ``sqlite:///var/data/x.db`` is
absolute (note: *not* SQLAlchemy's three-slash-relative rule).  The
scheme picks
the factory from the :class:`BackendRegistry`; path, fragment and
parameters are passed through.  :func:`open_backend` is the single entry
point used by :class:`repro.core.advisor.Charles`,
:meth:`repro.service.AdvisorService.register_table` and the CLI's
``--backend`` flag; third-party backends (DuckDB, a remote service, a
shard router) plug in through :func:`register_backend` without touching
any consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional
from urllib.parse import parse_qsl, unquote

from repro.backends.base import ExecutionBackend
from repro.backends.parallel import ParallelEngine
from repro.backends.pool import ExecutorPool, parallel_requested, resolve_workers
from repro.backends.sqlite import SQLiteBackend
from repro.errors import BackendError, StorageError
from repro.storage.cache import ResultCache
from repro.storage.engine import QueryEngine, resolve_index_features
from repro.storage.sampling import SampledEngine
from repro.storage.table import Table

__all__ = [
    "BackendSpec",
    "BackendRegistry",
    "default_registry",
    "register_backend",
    "open_backend",
]


@dataclass(frozen=True)
class BackendSpec:
    """A parsed backend spec (see the module docstring for the grammar)."""

    scheme: str
    path: str = ""
    params: Dict[str, str] = field(default_factory=dict)
    fragment: str = ""

    @classmethod
    def parse(cls, spec: str) -> "BackendSpec":
        text = spec.strip()
        if not text:
            raise BackendError("empty backend spec")
        text, _, fragment = text.partition("#")
        text, _, query = text.partition("?")
        scheme, separator, path = text.partition("://")
        if not separator:
            scheme, path = text, ""
        if not scheme:
            raise BackendError(f"backend spec {spec!r} names no scheme")
        params = dict(parse_qsl(query, keep_blank_values=True))
        return cls(
            scheme=scheme.lower(),
            path=unquote(path),
            params=params,
            fragment=unquote(fragment),
        )


#: A factory receives the parsed spec plus construction context and
#: returns a conforming backend.
BackendFactory = Callable[..., ExecutionBackend]


class BackendRegistry:
    """Maps spec schemes to backend factories.

    Factories are called as ``factory(spec, table=..., cache=...,
    cache_aggregates=..., cache_size=..., use_index=...)`` — plus, when a
    caller requests parallel execution, ``partitions=...``, ``workers=...``
    and ``pool=...`` — where ``spec`` is the parsed :class:`BackendSpec`
    and ``table`` is the optional source
    :class:`~repro.storage.table.Table` (required by schemes that have no
    external storage of their own).
    """

    def __init__(self) -> None:
        self._factories: Dict[str, BackendFactory] = {}

    def register(
        self, scheme: str, factory: BackendFactory, replace: bool = False
    ) -> None:
        """Register a factory under a scheme name."""
        key = scheme.lower()
        if key in self._factories and not replace:
            raise BackendError(
                f"backend scheme {key!r} is already registered; pass replace=True"
            )
        self._factories[key] = factory

    @property
    def schemes(self) -> List[str]:
        """The registered scheme names, sorted."""
        return sorted(self._factories)

    def open(
        self,
        spec: str,
        table: Optional[Table] = None,
        **context: Any,
    ) -> ExecutionBackend:
        """Resolve a spec string into a live backend."""
        parsed = BackendSpec.parse(spec)
        factory = self._factories.get(parsed.scheme)
        if factory is None:
            raise BackendError(
                f"unknown backend scheme {parsed.scheme!r}; "
                f"registered: {', '.join(self.schemes)}"
            )
        return factory(parsed, table=table, **context)


def _spec_bool(spec: BackendSpec, key: str, default: bool = False) -> bool:
    raw = spec.params.get(key)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


def _spec_index(spec: BackendSpec, default: Any) -> Any:
    """The ``index=`` parameter as engine index features (spec wins).

    Accepts everything :func:`repro.storage.engine.resolve_index_features`
    does — ``index=1`` keeps its historical sorted-only meaning,
    ``index=zonemap,bitmap,maskreuse`` or ``index=all`` enables the
    skipping tier.  Validation happens eagerly so a typo in a spec string
    fails at ``open_backend`` time, as a :class:`BackendError`.
    """
    raw = spec.params.get("index")
    value = default if raw is None else raw
    try:
        return resolve_index_features(value)
    except StorageError as exc:
        raise BackendError(exc.message) from exc


def _spec_float(spec: BackendSpec, key: str) -> Optional[float]:
    raw = spec.params.get(key)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise BackendError(f"backend parameter {key}={raw!r} is not a number")


def _spec_int(spec: BackendSpec, key: str) -> Optional[int]:
    raw = spec.params.get(key)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise BackendError(f"backend parameter {key}={raw!r} is not an integer")


def _maybe_sampled(
    backend: ExecutionBackend, spec: BackendSpec
) -> ExecutionBackend:
    """Wrap a backend in a :class:`SampledEngine` when ``sample=f`` is set."""
    fraction = _spec_float(spec, "sample")
    if fraction is None or fraction >= 1.0:
        return backend
    return SampledEngine(backend, fraction=fraction, seed=_spec_int(spec, "seed"))


def _maybe_approx(
    backend: ExecutionBackend, spec: BackendSpec
) -> ExecutionBackend:
    """Wrap a backend in an :class:`ApproxEngine` when ``approx=...`` is set.

    ``approx=1`` / ``approx=true`` enables the sketch tier at its default
    budget; ``approx=N`` (N > 1) sets the per-sketch retention budget.
    Composable with ``partitions``/``workers``/``index``; combining with
    ``sample=`` is rejected — both are statistical views and stacking
    them would make the reported error bounds meaningless.
    """
    raw = spec.params.get("approx")
    if raw is None or raw.strip().lower() in ("", "0", "false", "no", "off"):
        return backend
    if _spec_float(spec, "sample") is not None:
        raise BackendError(
            "backend parameters 'approx' and 'sample' cannot be combined"
        )
    from repro.backends.approx import ApproxEngine
    from repro.storage.sketches import DEFAULT_SKETCH_BUDGET

    try:
        budget = int(raw)
    except ValueError:
        budget = DEFAULT_SKETCH_BUDGET
    if budget <= 1:
        budget = DEFAULT_SKETCH_BUDGET
    return ApproxEngine(backend, budget=budget)


def _resolve_parallel_params(
    spec: BackendSpec,
    partitions: Optional[int],
    workers: Optional[int],
) -> tuple:
    """Merge spec-level and context-level partitions/workers (spec wins).

    Either parameter alone enables partitioned execution: ``workers``
    defaults to the partition count and vice versa.
    """
    spec_partitions = _spec_int(spec, "partitions")
    spec_workers = _spec_int(spec, "workers")
    resolved_partitions = spec_partitions if spec_partitions is not None else partitions
    resolved_workers = spec_workers if spec_workers is not None else workers
    if resolved_partitions is None and resolved_workers is not None:
        # workers=0 means "one per core" — shard to the resolved pool
        # size, not to the raw sentinel (0 partitions is an error).
        resolved_partitions = resolve_workers(resolved_workers)
    if resolved_workers is None and resolved_partitions is not None:
        resolved_workers = resolved_partitions
    return resolved_partitions, resolved_workers


def _memory_factory(
    spec: BackendSpec,
    table: Optional[Table] = None,
    cache: Optional[ResultCache] = None,
    cache_aggregates: bool = False,
    cache_size: int = 256,
    use_index: Any = False,
    partitions: Optional[int] = None,
    workers: Optional[int] = None,
    pool: Optional[ExecutorPool] = None,
) -> ExecutionBackend:
    if table is None:
        raise BackendError("the 'memory' backend requires a source table")
    spec_cache = _spec_int(spec, "cache")
    options = {
        "cache_size": spec_cache if spec_cache is not None else cache_size,
        "use_index": _spec_index(spec, use_index),
        "cache": cache,
        "cache_aggregates": cache_aggregates,
    }
    partitions, workers = _resolve_parallel_params(spec, partitions, workers)
    if parallel_requested(partitions, workers, pool):
        engine: ExecutionBackend = ParallelEngine(
            table, partitions=partitions, workers=workers, pool=pool, **options
        )
    else:
        engine = QueryEngine(table, **options)
    return _maybe_sampled(_maybe_approx(engine, spec), spec)


def _sqlite_factory(
    spec: BackendSpec,
    table: Optional[Table] = None,
    cache: Optional[ResultCache] = None,
    cache_aggregates: bool = True,
    cache_size: int = 256,
    use_index: bool = False,
    partitions: Optional[int] = None,
    workers: Optional[int] = None,
    pool: Optional[ExecutorPool] = None,
) -> ExecutionBackend:
    del use_index  # SQLite plans its own access paths
    del partitions, workers, pool  # SQLite parallelises (or not) internally
    database = spec.path or ":memory:"
    spec_cache = _spec_int(spec, "cache")
    options = {
        "cache": cache,
        "cache_aggregates": cache_aggregates,
        "cache_size": spec_cache if spec_cache is not None else cache_size,
    }
    if table is not None:
        backend: ExecutionBackend = SQLiteBackend.from_table(
            table,
            database=database,
            table_name=spec.fragment or None,
            if_exists="skip" if spec.path else "fail",
            **options,
        )
    else:
        if not spec.path:
            raise BackendError(
                "the 'sqlite' backend needs a source table or a database "
                "path (sqlite:///path.db#table)"
            )
        backend = SQLiteBackend(
            database, table_name=spec.fragment or None, **options
        )
    return _maybe_sampled(backend, spec)


#: The process-wide registry, pre-populated with the built-in backends.
default_registry = BackendRegistry()
default_registry.register("memory", _memory_factory)
default_registry.register("sqlite", _sqlite_factory)


def register_backend(
    scheme: str, factory: BackendFactory, replace: bool = False
) -> None:
    """Register a backend factory in the process-wide registry."""
    default_registry.register(scheme, factory, replace=replace)


def open_backend(
    spec: Any,
    table: Optional[Table] = None,
    registry: Optional[BackendRegistry] = None,
    **context: Any,
) -> ExecutionBackend:
    """Open a backend from a spec string (or pass an instance through).

    Parameters
    ----------
    spec:
        A spec string such as ``"memory"``, ``"memory?sample=0.1"`` or
        ``"sqlite:///path.db#table"`` — or an already-built
        :class:`ExecutionBackend`, returned unchanged (so every consumer
        can accept either form).
    table:
        Source table for backends without external storage.
    registry:
        Registry to resolve against (default: the process-wide one).
    context:
        Construction context forwarded to the factory (``cache``,
        ``cache_aggregates``, ``cache_size``, ``use_index`` — and
        ``partitions``/``workers``/``pool`` for parallel execution).
    """
    if not isinstance(spec, str):
        if isinstance(spec, ExecutionBackend):
            return spec
        raise BackendError(
            f"cannot open a backend from {type(spec).__name__!r}; "
            "pass a spec string or an ExecutionBackend instance"
        )
    return (registry or default_registry).open(spec, table=table, **context)
