"""Execution backends: the formal storage ↔ advisor seam.

The paper presents Charles as "a front-end for SQL systems" whose advisor
needs only counts and medians over predicates (Section 5.1).  This
package owns that contract:

* :mod:`repro.backends.base` — the :class:`ExecutionBackend` protocol and
  the :class:`BackendWrapper` delegation base for decorating backends;
* :mod:`repro.backends.pool` — :class:`ExecutorPool`, the bounded,
  shared worker pool behind partitioned parallel evaluation;
* :mod:`repro.backends.parallel` — :class:`ParallelEngine`, fanning
  counts/medians across row-range partitions through the pool;
* :mod:`repro.backends.approx` — :class:`ApproxEngine`, answering counts
  and medians from mergeable per-shard sketches with explicit error
  bounds (``memory?approx=...``);
* :mod:`repro.backends.sqlite` — :class:`SQLiteBackend`, executing SDL
  through the :mod:`repro.storage.sql` glue against ``sqlite3``;
* :mod:`repro.backends.registry` — :class:`BackendRegistry` and
  :func:`open_backend`, resolving specs such as ``"memory"``,
  ``"memory?partitions=4&workers=4"`` or ``"sqlite:///path.db#table"``.

``base`` and ``pool`` are imported eagerly (they have no storage
dependencies, so the storage layer itself may use
:class:`BackendWrapper`); the registry, the SQLite backend and the
parallel engine load lazily on first attribute access to keep the import
graph acyclic (``registry`` → ``storage.sampling`` → ``base``).
"""

from repro.backends.base import BackendWrapper, ExecutionBackend
from repro.backends.pool import ExecutorPool

__all__ = [
    "ExecutionBackend",
    "BackendWrapper",
    "ExecutorPool",
    "ParallelEngine",
    "ApproxEngine",
    "Estimate",
    "SQLiteBackend",
    "BackendSpec",
    "BackendRegistry",
    "default_registry",
    "register_backend",
    "open_backend",
]

_LAZY = {
    "ParallelEngine": "repro.backends.parallel",
    "ApproxEngine": "repro.backends.approx",
    "Estimate": "repro.backends.approx",
    "SQLiteBackend": "repro.backends.sqlite",
    "BackendSpec": "repro.backends.registry",
    "BackendRegistry": "repro.backends.registry",
    "default_registry": "repro.backends.registry",
    "register_backend": "repro.backends.registry",
    "open_backend": "repro.backends.registry",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.backends' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
