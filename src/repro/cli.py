"""Command-line interface: ``charles`` / ``python -m repro.cli``.

Sub-commands:

* ``demo``     — run the Figure 1 scenario on the synthetic VOC dataset;
* ``advise``   — answer a context query over a CSV file or built-in dataset;
* ``profile``  — print the statistical profile of a table (or of a context);
* ``segment``  — build one segmentation by cutting on explicit attributes;
* ``serve``    — expose a table through the advisor service: with
  ``--http PORT`` as a real HTTP server speaking the versioned wire
  protocol, with ``--simulate`` as an in-process multi-user workload
  replay reporting throughput, cache hit rates and batching statistics;
* ``cluster``  — scale out: ``cluster serve`` spawns N advisor node
  processes behind one sharding HTTP router with replication, failover
  and graceful degradation (see ``docs/architecture.md``);
* ``call``     — speak the wire protocol from the shell: one operation
  against a running ``serve --http`` server (or a cluster router — the
  front doors are protocol-identical);
* ``ingest``   — mutate a served table live: append rows (inline JSON or
  a CSV file) and/or delete by a WHERE clause; open sessions see the
  change, their advice goes stale, and ``advise --refresh`` recomputes;
* ``datasets`` — list the built-in synthetic workloads;
* ``lint``     — run the project's AST invariant checks (CHR001–CHR006;
  see ``docs/analysis.md``) over the given paths.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.api.client import RemoteAdvisor
from repro.api.codec import to_wire
from repro.api.protocol import OPERATIONS
from repro.api.server import AdvisorHTTPServer
from repro.core.advisor import Advice, Charles
from repro.core.hbcuts import HBCutsConfig
from repro.core.interestingness import SurpriseRanker
from repro.core.ranking import EntropyRanker, LexicographicRanker, WeightedRanker
from repro.core.session import ExplorationSession
from repro.errors import CharlesError
from repro.service import AdvisorService
from repro.backends.registry import open_backend
from repro.storage.csv_loader import load_csv
from repro.storage.table import Table
from repro.viz.histogram import segment_distributions
from repro.viz.piechart import pie_chart
from repro.viz.report import render_advice
from repro.viz.treemap import treemap
from repro.workloads import (
    FIGURE1_CONTEXT_COLUMNS,
    generate_astronomy,
    generate_concurrent_workload,
    generate_voc,
    generate_weblog,
)

__all__ = ["main", "build_parser"]

_BUILTIN_DATASETS = {
    "voc": lambda rows, seed: generate_voc(rows=rows or 5000, seed=seed),
    "astronomy": lambda rows, seed: generate_astronomy(rows=rows or 8000, seed=seed),
    "weblog": lambda rows, seed: generate_weblog(rows=rows or 10000, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="charles",
        description="Charles, big data query advisor (CIDR 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")

    def add_source_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--csv", help="path of a CSV file to explore")
        sub.add_argument(
            "--dataset",
            choices=sorted(_BUILTIN_DATASETS),
            help="built-in synthetic dataset to explore",
        )
        sub.add_argument("--rows", type=int, default=None,
                         help="number of rows for built-in datasets")
        sub.add_argument("--seed", type=int, default=42, help="random seed")

    def add_advisor_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--max-indep", type=float, default=0.99,
                         help="INDEP stopping threshold (paper default: 0.99)")
        sub.add_argument("--max-depth", type=int, default=12,
                         help="maximum number of queries per segmentation")
        sub.add_argument("--max-answers", type=int, default=8,
                         help="number of ranked answers to display")
        sub.add_argument("--ranker",
                         choices=("entropy", "weighted", "lexicographic", "surprise"),
                         default="entropy", help="ranking policy")
        sub.add_argument("--sample", type=float, default=None,
                         help="sampling fraction for statistics (0 < f < 1)")
        sub.add_argument("--backend", default="memory",
                         help="execution backend spec: memory (default), "
                              "memory?sample=0.1, "
                              "memory?partitions=4&workers=4, sqlite, "
                              "sqlite:///path.db#table")
        sub.add_argument("--workers", type=int, default=1,
                         help="executor-pool threads: partitioned scans and "
                              "HB-cuts INDEP evaluations run concurrently "
                              "(identical answers; 1 = sequential)")
        sub.add_argument("--partitions", type=int, default=None,
                         help="row-range shards per table for partitioned "
                              "evaluation (default: the worker count)")
        sub.add_argument("--style", choices=("pie", "treemap", "table"), default="pie",
                         help="detail renderer for the selected answer")

    demo = subparsers.add_parser("demo", help="run the Figure 1 VOC scenario")
    demo.add_argument("--rows", type=int, default=5000)
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--style", choices=("pie", "treemap", "table"), default="pie")

    advise = subparsers.add_parser("advise", help="answer a context query")
    add_source_arguments(advise)
    add_advisor_arguments(advise)
    advise.add_argument("--context", help="SDL query or SQL WHERE clause")
    advise.add_argument("--columns", nargs="*", help="columns forming the context")
    advise.add_argument("--approximate", action="store_true",
                        help="rank from the mergeable sketch tier instead of "
                             "exact scans: answers arrive faster and carry an "
                             "explicit error bound")
    advise.add_argument("--show-distribution", metavar="ATTR",
                        help="also plot this attribute's distribution per segment "
                             "of the best answer")

    explore = subparsers.add_parser(
        "explore", help="scripted drill-down: advise, pick a segment, repeat"
    )
    add_source_arguments(explore)
    add_advisor_arguments(explore)
    explore.add_argument("--context", help="SDL query or SQL WHERE clause")
    explore.add_argument("--columns", nargs="*", help="columns forming the context")
    explore.add_argument(
        "--path",
        nargs="*",
        default=[],
        metavar="ANSWER:SEGMENT",
        help="drill path, e.g. '0:0 1:2' picks segment 0 of answer 0, "
             "then segment 2 of answer 1",
    )

    profile = subparsers.add_parser("profile", help="profile a table or a context")
    add_source_arguments(profile)
    profile.add_argument("--context", help="SDL query or SQL WHERE clause")

    segment = subparsers.add_parser("segment", help="cut a context on explicit attributes")
    add_source_arguments(segment)
    segment.add_argument("--context", help="SDL query or SQL WHERE clause")
    segment.add_argument("--on", nargs="+", required=True,
                         help="attributes to cut on, in order")
    segment.add_argument("--style", choices=("pie", "treemap", "table"), default="pie")

    serve = subparsers.add_parser(
        "serve",
        help="serve a table through the advisor service "
             "(--http PORT for a real server, --simulate for a workload replay)",
    )
    add_source_arguments(serve)
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="run a real HTTP server speaking the wire protocol "
                            "on this port (0 = pick a free port)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --http (default: loopback)")
    serve.add_argument("--simulate", action="store_true",
                       help="replay a synthetic multi-user workload in-process "
                            "and report throughput")
    serve.add_argument("--users", type=int, default=4,
                       help="number of simulated concurrent users")
    serve.add_argument("--steps", type=int, default=3,
                       help="drill/back actions per user after the first advise")
    serve.add_argument("--workers", type=int, default=1,
                       help="threads serving the users (1 = sequential)")
    serve.add_argument("--engine-workers", type=int, default=None,
                       help="executor-pool threads for partitioned backend "
                            "evaluation (default: the --workers value)")
    serve.add_argument("--partitions", type=int, default=None,
                       help="row-range shards per registered table "
                            "(evaluated across the engine pool; "
                            "default: the engine worker count)")
    serve.add_argument("--distinct-paths", type=int, default=None,
                       help="unique exploration paths shared round-robin "
                            "(default: one per user)")
    serve.add_argument("--hot-contexts", type=int, default=2,
                       help="size of the popular starting-context pool")
    serve.add_argument("--cache-capacity", type=int, default=4096,
                       help="entries of the shared per-table result cache")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable batched INDEP evaluation")
    serve.add_argument("--backend", default="memory",
                       help="execution backend spec for the table runtime "
                            "(memory, sqlite, ...)")

    cluster = subparsers.add_parser(
        "cluster",
        help="run a multi-node advisor cluster behind a sharding router",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command")
    cluster_serve = cluster_sub.add_parser(
        "serve",
        help="spawn N advisor node processes behind one HTTP router "
             "(sessions shard across nodes; ingest replicates to all)",
    )
    add_source_arguments(cluster_serve)
    cluster_serve.add_argument("--http", type=int, required=True, metavar="PORT",
                               help="router front-door port "
                                    "(0 = pick a free port)")
    cluster_serve.add_argument("--host", default="127.0.0.1",
                               help="bind address for router and nodes "
                                    "(default: loopback)")
    cluster_serve.add_argument("--nodes", type=int, default=2,
                               help="advisor node processes to spawn")
    cluster_serve.add_argument("--replicas", type=int, default=1,
                               help="failover candidates per shard")
    cluster_serve.add_argument("--shards", type=int, default=32,
                               help="shards the session/table key space "
                                    "is cut into")
    cluster_serve.add_argument("--probe-interval", type=float, default=0.5,
                               help="seconds between node health probes")
    cluster_serve.add_argument("--workers", type=int, default=1,
                               help="executor-pool threads per node")
    cluster_serve.add_argument("--backend", default="memory",
                               help="execution backend spec per node "
                                    "(memory, sqlite, ...)")

    call = subparsers.add_parser(
        "call", help="execute one wire-protocol operation against a running server"
    )
    call.add_argument("--url", required=True,
                      help="base URL of a serve --http server, "
                           "e.g. http://127.0.0.1:8765")
    call.add_argument("--op", required=True, choices=sorted(OPERATIONS),
                      help="operation to execute")
    call.add_argument("--session", default="", help="session name the op addresses")
    call.add_argument("--table", default=None, help="table name (open_session, count)")
    call.add_argument("--context", default=None,
                      help="SDL query or SQL WHERE clause (open_session, advise, count)")
    call.add_argument("--answer-index", type=int, default=None,
                      help="ranked-answer index (drill)")
    call.add_argument("--segment-index", type=int, default=None,
                      help="segment index within the answer (drill)")
    call.add_argument("--max-answers", type=int, default=None,
                      help="ranked answers per advise (open_session)")
    call.add_argument("--rows-json", default=None, metavar="JSON",
                      help="JSON array of row objects to append (ingest)")
    call.add_argument("--delete", default=None, metavar="WHERE",
                      help="SDL query or SQL WHERE clause selecting rows "
                           "to delete (ingest)")
    call.add_argument("--refresh", action="store_true",
                      help="recompute the current context's advice against "
                           "the newest data version (advise)")
    call.add_argument("--mode", choices=("exact", "interactive"), default=None,
                      help="advise mode: interactive serves sketch-ranked "
                           "approximate advice the refine op later replaces "
                           "(advise)")
    call.add_argument("--limit", type=int, default=None,
                      help="max entries per operation (slow_ops)")
    call.add_argument("--timeout", type=float, default=30.0,
                      help="HTTP timeout in seconds")
    call.add_argument("--retries", type=int, default=0,
                      help="extra transport attempts after a connection-level "
                           "failure (exponential backoff; HTTP errors are "
                           "never retried)")
    call.add_argument("--trace", action="store_true",
                      help="request an end-to-end trace and print the "
                           "span tree (router and engine timings) after "
                           "the result")
    call.add_argument("--json", action="store_true", dest="raw_json",
                      help="print the raw wire result as JSON instead of "
                           "a human-readable rendering")

    ingest = subparsers.add_parser(
        "ingest",
        help="append rows to (and/or delete rows from) a table served by a "
             "running serve --http server",
    )
    ingest.add_argument("--url", required=True,
                        help="base URL of a serve --http server")
    ingest.add_argument("--table", default=None,
                        help="table to mutate (when several are registered)")
    ingest.add_argument("--rows-json", default=None, metavar="JSON",
                        help="JSON array of row objects to append")
    ingest.add_argument("--csv", default=None, metavar="FILE",
                        help="CSV file whose rows are appended")
    ingest.add_argument("--delete", default=None, metavar="WHERE",
                        help="SDL query or SQL WHERE clause selecting rows "
                             "to delete (appends apply first)")
    ingest.add_argument("--timeout", type=float, default=30.0,
                        help="HTTP timeout in seconds")
    ingest.add_argument("--retries", type=int, default=0,
                        help="extra transport attempts after a "
                             "connection-level failure")

    subparsers.add_parser("datasets", help="list the built-in synthetic datasets")

    lint = subparsers.add_parser(
        "lint", help="run the project's AST invariant checks (CHR001–CHR006)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the machine-readable findings document")
    lint.add_argument("--rules", nargs="*", metavar="RULE",
                      help="restrict the run to these rule ids")
    return parser


def _load_table(args: argparse.Namespace) -> Table:
    if getattr(args, "csv", None):
        return load_csv(args.csv)
    dataset = getattr(args, "dataset", None)
    if dataset:
        return _BUILTIN_DATASETS[dataset](getattr(args, "rows", None), args.seed)
    raise CharlesError("provide either --csv or --dataset")


def _make_ranker(name: str, table: Table):
    if name == "weighted":
        return WeightedRanker()
    if name == "lexicographic":
        return LexicographicRanker()
    if name == "surprise":
        return SurpriseRanker(engine=open_backend("memory", table))
    return EntropyRanker()


def _make_advisor(table: Table, args: argparse.Namespace) -> Charles:
    config = HBCutsConfig(
        max_indep=getattr(args, "max_indep", 0.99),
        max_depth=getattr(args, "max_depth", 12),
    )
    return Charles(
        table,
        config=config,
        ranker=_make_ranker(getattr(args, "ranker", "entropy"), table),
        sample_fraction=getattr(args, "sample", None),
        seed=getattr(args, "seed", None),
        backend=getattr(args, "backend", None) or "memory",
        workers=getattr(args, "workers", 1),
        partitions=getattr(args, "partitions", None),
    )


def _resolve_context(args: argparse.Namespace):
    context = getattr(args, "context", None)
    if context:
        return context
    columns = getattr(args, "columns", None)
    if columns:
        return list(columns)
    return None


def _command_demo(args: argparse.Namespace) -> int:
    table = generate_voc(rows=args.rows, seed=args.seed)
    advisor = Charles(table)
    advice = advisor.advise(list(FIGURE1_CONTEXT_COLUMNS), max_answers=6)
    print(render_advice(advice, style=args.style))
    return 0


def _command_advise(args: argparse.Namespace) -> int:
    table = _load_table(args)
    advisor = _make_advisor(table, args)
    mode = "interactive" if getattr(args, "approximate", False) else "exact"
    advice = advisor.advise(
        _resolve_context(args), max_answers=args.max_answers, mode=mode
    )
    print(render_advice(advice, style=args.style))
    if advice.approximate:
        note = "approximate advice (sketch tier)"
        if advice.error_bound is not None:
            note += f": estimates within ±{advice.error_bound:.1%} of exact"
        print()
        print(note + "; re-run without --approximate for exact numbers")
    probe = getattr(args, "show_distribution", None)
    if probe and advice.answers:
        print()
        if advisor.table is None:
            print(f"(distribution of {probe!r} unavailable: the "
                  f"{args.backend!r} backend exposes no in-memory columns)")
        else:
            print(segment_distributions(advisor.engine, advice.best().segmentation, probe))
    return 0


def _parse_drill_path(raw_path):
    steps = []
    for token in raw_path:
        answer_text, _, segment_text = token.partition(":")
        try:
            steps.append((int(answer_text), int(segment_text)))
        except ValueError:
            raise CharlesError(
                f"invalid drill step {token!r}; expected ANSWER:SEGMENT, e.g. 0:1"
            ) from None
    return steps


def _command_explore(args: argparse.Namespace) -> int:
    table = _load_table(args)
    advisor = _make_advisor(table, args)
    session = ExplorationSession(advisor, max_answers=args.max_answers)
    advice = session.start(_resolve_context(args))
    print(render_advice(advice, style=args.style, max_answers=args.max_answers))
    for answer_index, segment_index in _parse_drill_path(args.path):
        advice = session.drill(answer_index, segment_index)
        print()
        print(f"--- drilled into answer {answer_index}, segment {segment_index} ---")
        print(" -> ".join(session.breadcrumbs()))
        print(render_advice(advice, style=args.style, max_answers=args.max_answers))
    print()
    print(session.describe())
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    table = _load_table(args)
    advisor = Charles(table)
    profile = advisor.profile(getattr(args, "context", None))
    print(profile.describe())
    return 0


def _command_segment(args: argparse.Namespace) -> int:
    table = _load_table(args)
    advisor = _make_advisor(table, args)
    segmentation = advisor.segment(_resolve_context(args), args.on)
    if args.style == "treemap":
        print(treemap(segmentation))
    elif args.style == "table":
        print(segmentation.describe())
    else:
        print(pie_chart(segmentation))
    return 0


def _serve_service(args: argparse.Namespace, table: Table) -> AdvisorService:
    engine_workers = getattr(args, "engine_workers", None)
    if engine_workers is None:
        engine_workers = args.workers
    return AdvisorService(
        table,
        cache_capacity=args.cache_capacity,
        batch_indep=not args.no_batching,
        backend=getattr(args, "backend", None) or "memory",
        workers=engine_workers,
        partitions=getattr(args, "partitions", None),
    )


def _command_serve(args: argparse.Namespace) -> int:
    if args.http is not None and args.simulate:
        raise CharlesError("pass either --http PORT or --simulate, not both")
    if args.http is None and not args.simulate:
        raise CharlesError(
            "pass --http PORT to run the HTTP server, "
            "or --simulate to replay a synthetic workload"
        )
    table = _load_table(args)
    service = _serve_service(args, table)
    if args.http is not None:
        server = AdvisorHTTPServer(service, host=args.host, port=args.http)
        print(f"advisor service listening on {server.url}")
        print(f"  table {table.name!r} ({table.num_rows} rows); "
              f"POST {server.url}/v1/rpc, GET {server.url}/v1/health")
        sys.stdout.flush()
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            print("shutting down")
        finally:
            server.shutdown()
        return 0
    scripts = generate_concurrent_workload(
        table.column_names,
        users=args.users,
        steps=args.steps,
        seed=args.seed,
        hot_contexts=args.hot_contexts,
        distinct_paths=args.distinct_paths,
    )
    report = service.serve(scripts, workers=args.workers)
    print(report.describe())
    print()
    print(service.describe())
    return 0


def _render_call_result(result) -> str:
    if isinstance(result, Advice):
        return result.describe()
    if isinstance(result, (dict, list)):
        return json.dumps(to_wire(result), indent=2, ensure_ascii=False, sort_keys=True)
    return str(result)


def _parse_rows_json(raw: Optional[str]):
    if raw is None:
        return None
    try:
        rows = json.loads(raw)
    except ValueError as exc:
        raise CharlesError(f"--rows-json is not valid JSON: {exc}") from None
    if not isinstance(rows, list) or not all(
        isinstance(row, dict) for row in rows
    ):
        raise CharlesError(
            "--rows-json must be a JSON array of row objects, "
            'e.g. \'[{"tonnage": 900, "type_of_boat": "pinas"}]\''
        )
    return rows


def _cluster_specs(args: argparse.Namespace) -> List["TableSpec"]:
    from repro.cluster import TableSpec

    if getattr(args, "csv", None):
        return [TableSpec.csv(args.csv)]
    dataset = getattr(args, "dataset", None)
    if dataset:
        return [
            TableSpec.dataset(
                dataset, rows=getattr(args, "rows", None), seed=args.seed
            )
        ]
    raise CharlesError("provide either --csv or --dataset")


def _command_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import AdvisorCluster

    if getattr(args, "cluster_command", None) != "serve":
        raise CharlesError("usage: charles cluster serve --nodes N --http PORT ...")
    specs = _cluster_specs(args)
    cluster = AdvisorCluster(
        specs,
        nodes=args.nodes,
        replicas=args.replicas,
        shards=args.shards,
        host=args.host,
        port=args.http,
        probe_interval=args.probe_interval,
        service_options={"backend": args.backend, "workers": args.workers},
    )
    cluster.start()
    try:
        assert cluster.server is not None and cluster.router is not None
        print(f"cluster router listening on {cluster.url}")
        for handle in cluster.handles():
            print(f"  {handle.name} pid={handle.pid} {handle.url}")
        print(f"  {len(specs)} table(s): "
              f"{', '.join(spec.describe() for spec in specs)}; "
              f"replicas={args.replicas}, shards={args.shards}")
        print(f"  POST {cluster.url}/v1/rpc, GET {cluster.url}/v1/health, "
              f"GET {cluster.url}/v1/cluster")
        sys.stdout.flush()
        cluster.server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("shutting down cluster")
    finally:
        cluster.stop()
    return 0


def _command_call(args: argparse.Namespace) -> int:
    advisor = RemoteAdvisor(
        args.url, timeout=args.timeout, retries=args.retries, trace=args.trace
    )
    params = {
        key: value
        for key, value in (
            ("table", args.table),
            ("context", args.context),
            ("answer_index", args.answer_index),
            ("segment_index", args.segment_index),
            ("max_answers", args.max_answers),
            ("rows", _parse_rows_json(args.rows_json)),
            ("delete", args.delete),
            ("refresh", True if args.refresh else None),
            ("mode", args.mode),
            ("limit", args.limit),
        )
        if value is not None
    }
    result = advisor.call(args.op, session=args.session, **params)
    if args.raw_json:
        print(json.dumps(to_wire(result), indent=2, ensure_ascii=False, sort_keys=True))
    else:
        print(_render_call_result(result))
    if args.trace:
        from repro.obs import format_span_tree

        if advisor.last_trace is not None:
            print("trace:")
            print(format_span_tree(advisor.last_trace))
        else:
            print("trace: (server returned no trace)")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    rows: List[dict] = list(_parse_rows_json(args.rows_json) or [])
    if args.csv:
        rows.extend(load_csv(args.csv).iter_rows())
    if not rows and args.delete is None:
        raise CharlesError(
            "nothing to ingest: provide --rows-json, --csv and/or --delete"
        )
    advisor = RemoteAdvisor(args.url, timeout=args.timeout, retries=args.retries)
    result = advisor.ingest(
        rows=rows or None, delete=args.delete, table=args.table
    )
    print(json.dumps(to_wire(result), indent=2, ensure_ascii=False, sort_keys=True))
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print("built-in synthetic datasets:")
    print("  voc        VOC shipping voyages (Figure 1 schema, planted dependencies)")
    print("  astronomy  sky-survey object catalogue (class drives magnitude/redshift)")
    print("  weblog     web access log (Zipf URL mix, category drives latency/status)")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import run_lint

    code, report = run_lint(args.paths, as_json=args.as_json, rules=args.rules)
    print(report)
    return code


_COMMANDS = {
    "demo": _command_demo,
    "advise": _command_advise,
    "explore": _command_explore,
    "profile": _command_profile,
    "segment": _command_segment,
    "serve": _command_serve,
    "cluster": _command_cluster,
    "call": _command_call,
    "ingest": _command_ingest,
    "datasets": _command_datasets,
    "lint": _command_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if not args.command:
        parser.print_help()
        return 1
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except CharlesError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised through subprocess tests
    sys.exit(main())
