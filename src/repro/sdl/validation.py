"""Validation of segmentations against Definition 3.

A segmentation of a context ``D`` must satisfy two structural properties:

* **disjointness** — the result sets of any two distinct queries do not
  intersect;
* **exhaustiveness** — the union of the result sets equals ``D``.

The checks here are engine-agnostic: any object exposing the small
protocol of :class:`~repro.storage.engine.QueryEngine` (``evaluate`` and
``count``) can be passed in, so this module does not import the storage
package and stays free of circular dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import InvalidPartitionError
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation

__all__ = ["PartitionReport", "check_partition", "validate_partition", "EngineProtocol"]


class EngineProtocol(Protocol):
    """The minimal engine surface the validator relies on."""

    def evaluate(self, query: SDLQuery) -> np.ndarray:  # pragma: no cover - protocol
        ...

    def count(self, query: SDLQuery) -> int:  # pragma: no cover - protocol
        ...


@dataclass
class PartitionReport:
    """Outcome of a partition check.

    Attributes
    ----------
    is_partition:
        ``True`` when both disjointness and exhaustiveness hold.
    disjoint:
        Whether no pair of segments overlaps.
    exhaustive:
        Whether the union of segments covers the whole context.
    overlapping_pairs:
        Indices of segment pairs with a non-empty intersection.
    missing_rows:
        Number of context rows captured by no segment.
    multiply_counted_rows:
        Number of rows captured by more than one segment.
    """

    is_partition: bool
    disjoint: bool
    exhaustive: bool
    overlapping_pairs: List[Tuple[int, int]] = field(default_factory=list)
    missing_rows: int = 0
    multiply_counted_rows: int = 0

    def summary(self) -> str:
        """One-line human readable summary."""
        if self.is_partition:
            return "valid partition (disjoint and exhaustive)"
        problems = []
        if not self.disjoint:
            problems.append(
                f"{len(self.overlapping_pairs)} overlapping pair(s), "
                f"{self.multiply_counted_rows} multiply-counted row(s)"
            )
        if not self.exhaustive:
            problems.append(f"{self.missing_rows} uncovered row(s)")
        return "invalid partition: " + "; ".join(problems)


def check_partition(engine: EngineProtocol, segmentation: Segmentation) -> PartitionReport:
    """Check Definition 3 for a segmentation and report the violations found."""
    context_mask = np.asarray(engine.evaluate(segmentation.context), dtype=bool)
    hit_counts = np.zeros(context_mask.shape[0], dtype=np.int32)
    masks = []
    for segment in segmentation.segments:
        mask = np.asarray(engine.evaluate(segment.query), dtype=bool)
        # A segment may only select rows inside the context.
        mask = mask & context_mask
        masks.append(mask)
        hit_counts[mask] += 1

    overlapping_pairs: List[Tuple[int, int]] = []
    for i in range(len(masks)):
        for j in range(i + 1, len(masks)):
            if np.any(masks[i] & masks[j]):
                overlapping_pairs.append((i, j))

    missing = int(np.count_nonzero(context_mask & (hit_counts == 0)))
    multiple = int(np.count_nonzero(hit_counts > 1))
    disjoint = not overlapping_pairs
    exhaustive = missing == 0
    return PartitionReport(
        is_partition=disjoint and exhaustive,
        disjoint=disjoint,
        exhaustive=exhaustive,
        overlapping_pairs=overlapping_pairs,
        missing_rows=missing,
        multiply_counted_rows=multiple,
    )


def validate_partition(engine: EngineProtocol, segmentation: Segmentation) -> None:
    """Raise :class:`InvalidPartitionError` unless Definition 3 holds."""
    report = check_partition(engine, segmentation)
    if not report.is_partition:
        raise InvalidPartitionError(report.summary())


def queries_are_disjoint(
    engine: EngineProtocol, queries: Sequence[SDLQuery]
) -> bool:
    """Convenience helper: whether the given queries select disjoint row sets."""
    union = None
    for query in queries:
        mask = np.asarray(engine.evaluate(query), dtype=bool)
        if union is None:
            union = mask.copy()
            continue
        if np.any(union & mask):
            return False
        union |= mask
    return True
