"""SDL queries (paper, Definition 2).

An SDL query is a conjunction of predicates over a single relation, with
at most one predicate per attribute.  The attributes named by the query —
constrained or not — define Charles' exploration context: by convention
(paper, Section 2) the advisor is oblivious to every other column.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.sdl.predicates import (
    NoConstraint,
    Predicate,
    intersect_predicates,
)

__all__ = ["SDLQuery"]


class SDLQuery:
    """A conjunction of SDL predicates over one relation.

    Parameters
    ----------
    predicates:
        The predicates forming the conjunction.  Each attribute may appear
        at most once; the order of first appearance is preserved for
        display purposes.

    Examples
    --------
    >>> from repro.sdl import NoConstraint, RangePredicate, SetPredicate
    >>> query = SDLQuery([
    ...     RangePredicate("date", 1550, 1650),
    ...     NoConstraint("tonnage"),
    ...     SetPredicate("type", frozenset({"jacht", "fluit"})),
    ... ])
    >>> query.to_sdl()
    "(date: [1550, 1650], tonnage:, type: {'fluit', 'jacht'})"
    """

    __slots__ = ("_predicates", "_by_attribute", "_hash")

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        ordered: list[Predicate] = []
        by_attribute: Dict[str, Predicate] = {}
        for predicate in predicates:
            if not isinstance(predicate, Predicate):
                raise QueryError(
                    f"SDLQuery expects Predicate instances, got {type(predicate).__name__}"
                )
            if predicate.attribute in by_attribute:
                raise QueryError(
                    f"duplicate predicate for attribute {predicate.attribute!r}; "
                    "use refine() to conjoin constraints"
                )
            by_attribute[predicate.attribute] = predicate
            ordered.append(predicate)
        self._predicates: Tuple[Predicate, ...] = tuple(ordered)
        self._by_attribute = by_attribute
        self._hash: Optional[int] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def over(cls, attributes: Sequence[str]) -> "SDLQuery":
        """Build an unconstrained context over the given attributes.

        This mirrors the common entry point in the paper's UI: the user
        ticks the columns of interest without providing value constraints.
        """
        return cls(NoConstraint(attr) for attr in attributes)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Optional[Predicate]]) -> "SDLQuery":
        """Build a query from an ``attribute -> predicate`` mapping.

        A ``None`` value stands for the unconstrained predicate.
        """
        predicates = []
        for attribute, predicate in mapping.items():
            if predicate is None:
                predicates.append(NoConstraint(attribute))
            else:
                if predicate.attribute != attribute:
                    raise QueryError(
                        f"predicate attribute {predicate.attribute!r} does not match "
                        f"mapping key {attribute!r}"
                    )
                predicates.append(predicate)
        return cls(predicates)

    # -- basic accessors ---------------------------------------------------

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """The predicates of the conjunction, in attribute order of appearance."""
        return self._predicates

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Every attribute named by the query (constrained or not)."""
        return tuple(p.attribute for p in self._predicates)

    @property
    def constrained_attributes(self) -> Tuple[str, ...]:
        """Attributes carrying an actual constraint."""
        return tuple(p.attribute for p in self._predicates if p.is_constrained)

    @property
    def n_constraints(self) -> int:
        """Number of constrained predicates (the paper's per-query complexity)."""
        return sum(1 for p in self._predicates if p.is_constrained)

    def predicate_for(self, attribute: str) -> Optional[Predicate]:
        """The predicate constraining ``attribute``, or ``None`` if absent."""
        return self._by_attribute.get(attribute)

    def mentions(self, attribute: str) -> bool:
        """Whether the query names ``attribute`` at all."""
        return attribute in self._by_attribute

    def __len__(self) -> int:
        return len(self._predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._predicates)

    # -- algebra -----------------------------------------------------------

    def refine(self, predicate: Predicate) -> Optional["SDLQuery"]:
        """Conjoin one more predicate, intersecting any existing constraint.

        Returns ``None`` when the conjunction is unsatisfiable (empty
        intersection), which callers such as the SDL product use to drop
        empty cells.
        """
        existing = self._by_attribute.get(predicate.attribute)
        if existing is None:
            return SDLQuery(self._predicates + (predicate,))
        merged = intersect_predicates(existing, predicate)
        if merged is None:
            return None
        replaced = tuple(
            merged if p.attribute == predicate.attribute else p
            for p in self._predicates
        )
        return SDLQuery(replaced)

    def merge(self, other: "SDLQuery") -> Optional["SDLQuery"]:
        """Conjoin two queries attribute by attribute (the SDL product cell).

        Returns ``None`` when any shared attribute has an empty intersection.
        """
        result: Optional[SDLQuery] = self
        for predicate in other.predicates:
            assert result is not None
            result = result.refine(predicate)
            if result is None:
                return None
        return result

    def without(self, attribute: str) -> "SDLQuery":
        """Drop the predicate on ``attribute`` entirely (context narrowing)."""
        return SDLQuery(p for p in self._predicates if p.attribute != attribute)

    def project(self, attributes: Sequence[str]) -> "SDLQuery":
        """Keep only the predicates on the given attributes, in that order."""
        kept = []
        for attribute in attributes:
            predicate = self._by_attribute.get(attribute)
            if predicate is not None:
                kept.append(predicate)
        return SDLQuery(kept)

    # -- row-at-a-time evaluation (slow path, used in tests) ----------------

    def matches_row(self, row: Mapping[str, Any]) -> bool:
        """Evaluate the conjunction against a single row mapping."""
        for predicate in self._predicates:
            if not predicate.is_constrained:
                continue
            if not predicate.matches_value(row.get(predicate.attribute)):
                return False
        return True

    # -- rendering / equality ----------------------------------------------

    def to_sdl(self) -> str:
        """Render the query in the paper's SDL text syntax."""
        inner = ", ".join(p.to_sdl() for p in self._predicates)
        return f"({inner})"

    def __repr__(self) -> str:
        return f"SDLQuery{self.to_sdl()}"

    def __str__(self) -> str:
        return self.to_sdl()

    def _key(self) -> frozenset:
        return frozenset(self._predicates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SDLQuery):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash
