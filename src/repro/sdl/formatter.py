"""Canonical text rendering of SDL objects.

``Predicate.to_sdl`` and ``SDLQuery.to_sdl`` already produce the paper's
syntax; this module adds higher-level renderings used by the CLI, the
report generator and the tests:

* :func:`format_predicate` / :func:`format_query` — thin wrappers kept for
  symmetry with the parser module;
* :func:`format_segmentation` — a compact one-segment-per-line listing;
* :func:`format_segment_label` — the short labels shown on pie-chart
  slices in Figure 1 (only the cut attributes, not the whole context);
* :func:`query_signature` — a stable, order-independent key for caching.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sdl.predicates import Predicate
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation

__all__ = [
    "format_predicate",
    "format_query",
    "format_segmentation",
    "format_segment_label",
    "query_signature",
]


def format_predicate(predicate: Predicate) -> str:
    """Render a predicate in SDL text syntax."""
    return predicate.to_sdl()


def format_query(query: SDLQuery, include_unconstrained: bool = True) -> str:
    """Render a query in SDL text syntax.

    Parameters
    ----------
    include_unconstrained:
        When ``False``, attributes with no constraint are omitted, which is
        how the Figure 1 interface labels pie-chart slices.
    """
    predicates: Iterable[Predicate] = query.predicates
    if not include_unconstrained:
        predicates = [p for p in query.predicates if p.is_constrained]
    inner = ", ".join(p.to_sdl() for p in predicates)
    return f"({inner})"


def format_segment_label(
    query: SDLQuery, context: SDLQuery | None = None, max_length: int = 60
) -> str:
    """Short label for one segment, omitting constraints shared with the context.

    Figure 1 labels slices with only the predicates the segmentation added
    (for example ``departure_harbor: [Bantam, Rammenkens] / tonnage: 1000,
    1150``), not with the full context conjunction.
    """
    context_predicates = set(context.predicates) if context is not None else set()
    parts: List[str] = []
    for predicate in query.predicates:
        if not predicate.is_constrained:
            continue
        if predicate in context_predicates:
            continue
        parts.append(predicate.to_sdl())
    label = " / ".join(parts) if parts else "(all)"
    if len(label) > max_length:
        label = label[: max_length - 1] + "…"
    return label


def format_segmentation(
    segmentation: Segmentation,
    show_counts: bool = True,
    relative_to_context: bool = True,
) -> str:
    """Render a segmentation, one segment per line, largest cover first."""
    header = (
        f"Segmentation on [{', '.join(segmentation.cut_attributes) or '-'}] — "
        f"{segmentation.depth} segments over {segmentation.context_count} rows"
    )
    lines = [header]
    order = sorted(
        range(len(segmentation.segments)),
        key=lambda i: segmentation.segments[i].count,
        reverse=True,
    )
    covers = segmentation.covers
    for index in order:
        segment = segmentation.segments[index]
        label = format_segment_label(segment.query, segmentation.context)
        if show_counts:
            cover = covers[index] if relative_to_context else 0.0
            lines.append(f"  {cover:6.1%}  {segment.count:>8}  {label}")
        else:
            lines.append(f"  {label}")
    return "\n".join(lines)


def query_signature(query: SDLQuery) -> str:
    """A stable, attribute-order-independent textual key for a query.

    Used by the engine's mask cache and by tests that compare queries
    produced through different construction paths.
    """
    rendered = sorted(p.to_sdl() for p in query.predicates)
    return "&".join(rendered)
