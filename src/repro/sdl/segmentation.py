"""Segmentations (paper, Definition 3).

A segmentation is a set of SDL queries that partitions a context: the
queries are pairwise disjoint and their union covers the context exactly.
Charles answers a context query with a ranked list of segmentations, each
revealing one aspect of the data.

A :class:`Segmentation` object carries, next to its queries, the row count
of each segment and of the context.  Counts are supplied by the query
engine when the segmentation is materialised; all quality metrics
(entropy, balance, cover) derive from them without touching the data
again, which is exactly the computation-reuse opportunity the paper points
out in Section 5.1.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import SegmentationError
from repro.sdl.query import SDLQuery

__all__ = ["Segment", "Segmentation"]


class Segment:
    """One piece of a segmentation: an SDL query plus its row count."""

    __slots__ = ("query", "count")

    def __init__(self, query: SDLQuery, count: int) -> None:
        if count < 0:
            raise SegmentationError(f"segment count must be non-negative, got {count}")
        self.query = query
        self.count = int(count)

    def cover(self, total: int) -> float:
        """Fraction of ``total`` rows captured by this segment."""
        if total <= 0:
            return 0.0
        return self.count / total

    def __repr__(self) -> str:
        return f"Segment({self.query.to_sdl()}, count={self.count})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return self.query == other.query and self.count == other.count

    def __hash__(self) -> int:
        return hash((self.query, self.count))


class Segmentation:
    """A partition of a context into SDL queries.

    Parameters
    ----------
    context:
        The SDL query whose result set the segmentation partitions.
    segments:
        The pieces; each is a :class:`Segment` (query plus row count).
    context_count:
        Number of rows selected by the context.  When omitted it defaults
        to the sum of the segment counts (a valid partition covers the
        context exactly, so the two coincide).
    cut_attributes:
        Attributes on which the segmentation was built.  The paper's
        COMPOSE operator requires all queries of its second operand to be
        based on the same attribute set, which this records explicitly.
    """

    __slots__ = ("context", "_segments", "context_count", "cut_attributes")

    def __init__(
        self,
        context: SDLQuery,
        segments: Iterable[Segment],
        context_count: Optional[int] = None,
        cut_attributes: Sequence[str] = (),
    ) -> None:
        self.context = context
        self._segments: Tuple[Segment, ...] = tuple(segments)
        if not self._segments:
            raise SegmentationError("a segmentation must contain at least one segment")
        total = sum(segment.count for segment in self._segments)
        if context_count is None:
            context_count = total
        if context_count < 0:
            raise SegmentationError(
                f"context count must be non-negative, got {context_count}"
            )
        # A valid partition has sum(counts) == context_count, but candidate
        # segmentations under validation may overlap (sum > context) or be
        # non-exhaustive (sum < context); both are representable and flagged
        # by sdl.validation rather than rejected here.
        self.context_count = int(context_count)
        self.cut_attributes: Tuple[str, ...] = tuple(dict.fromkeys(cut_attributes))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def single(cls, context: SDLQuery, count: int) -> "Segmentation":
        """The trivial segmentation: the context itself as its only piece."""
        return cls(context, [Segment(context, count)], context_count=count)

    def with_cut_attributes(self, attributes: Sequence[str]) -> "Segmentation":
        """Return a copy annotated with the given cut attributes."""
        return Segmentation(
            self.context,
            self._segments,
            context_count=self.context_count,
            cut_attributes=attributes,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return self._segments

    @property
    def queries(self) -> Tuple[SDLQuery, ...]:
        """The constituent SDL queries (the paper calls these *segments*)."""
        return tuple(segment.query for segment in self._segments)

    @property
    def counts(self) -> Tuple[int, ...]:
        return tuple(segment.count for segment in self._segments)

    @property
    def covers(self) -> Tuple[float, ...]:
        """Segment covers relative to the context.

        The paper defines the cover of a query relative to the full table
        ``|R(Q)|/|T|``; for entropy and Proposition 1 to behave as stated,
        the covers used inside a segmentation must sum to one, i.e. they
        must be relative to the context ``D``.  See ``core.metrics.cover``
        for the table-relative variant.
        """
        total = self.context_count
        if total == 0:
            return tuple(0.0 for _ in self._segments)
        return tuple(segment.count / total for segment in self._segments)

    @property
    def depth(self) -> int:
        """Number of queries in the segmentation (the paper's *depth*)."""
        return len(self._segments)

    @property
    def covered_count(self) -> int:
        """Total number of rows captured across all segments."""
        return sum(segment.count for segment in self._segments)

    @property
    def is_exhaustive(self) -> bool:
        """Whether the segments jointly cover every row of the context."""
        return self.covered_count == self.context_count

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Union of constrained attributes across all queries, beyond the context."""
        context_constrained = set(self.context.constrained_attributes)
        seen: dict[str, None] = {}
        for query in self.queries:
            for attribute in query.constrained_attributes:
                if attribute not in context_constrained or attribute in self.cut_attributes:
                    seen.setdefault(attribute, None)
        for attribute in self.cut_attributes:
            seen.setdefault(attribute, None)
        return tuple(seen)

    def non_empty(self) -> "Segmentation":
        """Return a copy with zero-count segments removed.

        Raises
        ------
        SegmentationError
            If every segment is empty.
        """
        kept = [segment for segment in self._segments if segment.count > 0]
        if not kept:
            raise SegmentationError("all segments are empty")
        return Segmentation(
            self.context,
            kept,
            context_count=self.context_count,
            cut_attributes=self.cut_attributes,
        )

    # -- protocol ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> Segment:
        return self._segments[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Segmentation):
            return NotImplemented
        return (
            self.context == other.context
            and frozenset(self._segments) == frozenset(other._segments)
            and self.context_count == other.context_count
        )

    def __hash__(self) -> int:
        return hash((self.context, frozenset(self._segments), self.context_count))

    def __repr__(self) -> str:
        attrs = ", ".join(self.cut_attributes) or "-"
        return (
            f"Segmentation(depth={self.depth}, cut_attributes=[{attrs}], "
            f"context_count={self.context_count})"
        )

    def describe(self) -> str:
        """Multi-line human-readable description used by the CLI and examples."""
        lines = [f"Segmentation of {self.context.to_sdl()} "
                 f"({self.depth} segments, {self.context_count} rows)"]
        for segment, cover in zip(self._segments, self.covers):
            lines.append(f"  {cover:6.1%}  {segment.count:>8}  {segment.query.to_sdl()}")
        return "\n".join(lines)
