"""Parser for the SDL text syntax.

The paper writes SDL queries like::

    (date : [1550,1650], tonnage :, type : {'jacht', 'fluit'})

This module turns that textual form back into :class:`~repro.sdl.query.SDLQuery`
objects.  The grammar, in EBNF-ish form::

    query      = "(" [ predicate { "," predicate } ] ")"
               | predicate { "," predicate }
    predicate  = IDENT ":" [ range | set | exclusion ]
    range      = ("[" | "]") literal "," literal ("]" | "[")
    set        = "{" literal { "," literal } "}"
    exclusion  = "!" set
    literal    = NUMBER | STRING | BAREWORD

Numbers are parsed as ``int`` when possible, otherwise ``float``.  Strings
may be single- or double-quoted; barewords (unquoted identifiers inside a
set) are taken verbatim.  Whitespace is insignificant.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.errors import SDLSyntaxError
from repro.sdl.predicates import (
    ExclusionPredicate,
    NoConstraint,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.sdl.query import SDLQuery

__all__ = ["parse_query", "parse_predicate", "parse_literal"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<punct>[()\[\]{}:,])
  | (?P<bareword>[^\s()\[\]{}:,]+)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r}, at {self.position})"


def _tokenise(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SDLSyntaxError(
                f"unexpected character {text[position]!r}", text=text, position=position
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


def parse_literal(text: str) -> Any:
    """Parse a single SDL literal: number, quoted string, or bareword."""
    stripped = text.strip()
    if not stripped:
        raise SDLSyntaxError("empty literal", text=text)
    tokens = _tokenise(stripped)
    if len(tokens) != 1:
        raise SDLSyntaxError(f"expected a single literal, got {stripped!r}", text=text)
    return _literal_value(tokens[0])


def _literal_value(token: _Token) -> Any:
    if token.kind == "number":
        if re.fullmatch(r"-?\d+", token.value):
            return int(token.value)
        return float(token.value)
    if token.kind == "string":
        body = token.value[1:-1]
        return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
    if token.kind == "bareword":
        return token.value
    raise SDLSyntaxError(f"expected a literal, got {token.value!r}", position=token.position)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenise(text)
        self.index = 0

    # -- token-stream helpers ------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SDLSyntaxError("unexpected end of input", text=self.text)
        self.index += 1
        return token

    def _expect_punct(self, value: str) -> _Token:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise SDLSyntaxError(
                f"expected {value!r}, got {token.value!r}",
                text=self.text,
                position=token.position,
            )
        return token

    def _at_punct(self, value: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.value == value

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> SDLQuery:
        wrapped = self._at_punct("(")
        if wrapped:
            self._next()
        predicates: List[Predicate] = []
        if not (wrapped and self._at_punct(")")) and self._peek() is not None:
            predicates.append(self.parse_predicate())
            while self._at_punct(","):
                self._next()
                predicates.append(self.parse_predicate())
        if wrapped:
            self._expect_punct(")")
        trailing = self._peek()
        if trailing is not None:
            raise SDLSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                text=self.text,
                position=trailing.position,
            )
        return SDLQuery(predicates)

    def parse_predicate(self) -> Predicate:
        name_token = self._next()
        if name_token.kind not in ("bareword", "string"):
            raise SDLSyntaxError(
                f"expected an attribute name, got {name_token.value!r}",
                text=self.text,
                position=name_token.position,
            )
        attribute = (
            _literal_value(name_token)
            if name_token.kind == "string"
            else name_token.value
        )
        self._expect_punct(":")
        token = self._peek()
        if token is None or (token.kind == "punct" and token.value in (",", ")")):
            return NoConstraint(str(attribute))
        if token.kind == "punct" and token.value in ("[", "]"):
            return self._parse_range(str(attribute))
        if token.kind == "punct" and token.value == "{":
            return self._parse_set(str(attribute))
        if token.kind == "bareword" and token.value == "!":
            self._next()
            inner = self._parse_set(str(attribute))
            return ExclusionPredicate(inner.attribute, inner.values)
        raise SDLSyntaxError(
            f"expected a range, a set, an exclusion, or nothing after ':', "
            f"got {token.value!r}",
            text=self.text,
            position=token.position,
        )

    def _parse_range(self, attribute: str) -> RangePredicate:
        open_token = self._next()
        include_low = open_token.value == "["
        low = _literal_value(self._next())
        self._expect_punct(",")
        high = _literal_value(self._next())
        close_token = self._next()
        if close_token.kind != "punct" or close_token.value not in ("]", "["):
            raise SDLSyntaxError(
                f"expected ']' or '[' to close a range, got {close_token.value!r}",
                text=self.text,
                position=close_token.position,
            )
        include_high = close_token.value == "]"
        return RangePredicate(
            attribute,
            low=low,
            high=high,
            include_low=include_low,
            include_high=include_high,
        )

    def _parse_set(self, attribute: str) -> SetPredicate:
        self._expect_punct("{")
        values = [_literal_value(self._next())]
        while self._at_punct(","):
            self._next()
            values.append(_literal_value(self._next()))
        self._expect_punct("}")
        return SetPredicate(attribute, frozenset(values))


def parse_query(text: str) -> SDLQuery:
    """Parse an SDL query from its text form.

    Examples
    --------
    >>> parse_query("(date: [1550, 1650], tonnage:, type: {'jacht', 'fluit'})")
    SDLQuery(date: [1550, 1650], tonnage:, type: {'fluit', 'jacht'})
    """
    if not text or not text.strip():
        raise SDLSyntaxError("empty SDL query", text=text)
    return _Parser(text).parse_query()


def parse_predicate(text: str) -> Predicate:
    """Parse a single SDL predicate such as ``tonnage: [1000, 5000]``."""
    if not text or not text.strip():
        raise SDLSyntaxError("empty SDL predicate", text=text)
    parser = _Parser(text)
    predicate = parser.parse_predicate()
    trailing = parser._peek()
    if trailing is not None:
        raise SDLSyntaxError(
            f"unexpected trailing input {trailing.value!r}",
            text=text,
            position=trailing.position,
        )
    return predicate
