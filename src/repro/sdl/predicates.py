"""SDL predicates (paper, Definition 1).

An SDL predicate constrains a single attribute of the relation.  The
paper defines three forms:

* a *range constraint* ``Attr : [a0, a1]`` — :class:`RangePredicate`;
* a *set constraint* ``Attr : {a0, a1, ..., aK}`` — :class:`SetPredicate`;
* *no constraint* ``Attr :`` — :class:`NoConstraint`.

The reproduction adds one conjunctive-safe extension so SQL ``NOT IN``
contexts can be expressed:

* an *exclusion constraint* ``Attr : !{a0, ..., aK}`` —
  :class:`ExclusionPredicate`, the complement of a set constraint (missing
  values never match, mirroring SQL's ``NOT IN`` NULL semantics).

The paper's CUT primitive produces half-open ranges ``[min, med[`` and
closed ranges ``[med, max]``; :class:`RangePredicate` therefore carries
explicit inclusivity flags for both bounds.

Predicates are immutable value objects: they compare and hash by value, so
they can be used as dictionary keys and members of frozensets (the query
engine caches selection masks keyed by query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Optional

from repro.errors import PredicateError

__all__ = [
    "Predicate",
    "NoConstraint",
    "RangePredicate",
    "SetPredicate",
    "ExclusionPredicate",
    "intersect_predicates",
]


def _format_literal(value: Any) -> str:
    """Render a literal the way the paper writes them in SDL text."""
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


@dataclass(frozen=True)
class Predicate:
    """Base class for SDL predicates.

    Parameters
    ----------
    attribute:
        Name of the column the predicate constrains.
    """

    attribute: str

    def __post_init__(self) -> None:
        if not self.attribute or not isinstance(self.attribute, str):
            raise PredicateError("predicate attribute must be a non-empty string")

    @property
    def is_constrained(self) -> bool:
        """Whether the predicate restricts the attribute at all."""
        raise NotImplementedError

    def to_sdl(self) -> str:
        """Render the predicate in SDL text syntax."""
        raise NotImplementedError

    def matches_value(self, value: Any) -> bool:
        """Row-at-a-time semantics; the engine uses vectorised evaluation."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegates to to_sdl
        return self.to_sdl()


@dataclass(frozen=True)
class NoConstraint(Predicate):
    """The unconstrained predicate ``Attr :``.

    It names an attribute as part of the exploration context without
    restricting its values.  Charles only explores columns mentioned in the
    context query, so unconstrained predicates matter: they widen the search
    space without filtering any tuple.
    """

    @property
    def is_constrained(self) -> bool:
        return False

    def to_sdl(self) -> str:
        return f"{self.attribute}:"

    def matches_value(self, value: Any) -> bool:
        return True


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """A range constraint ``Attr : [low, high]``.

    Parameters
    ----------
    low, high:
        Bounds of the interval.  ``low`` must not exceed ``high``.
    include_low, include_high:
        Whether each bound belongs to the interval.  The paper's CUT
        operator produces ``[min, med[`` (high bound excluded) and
        ``[med, max]`` (both included).
    """

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.low is None or self.high is None:
            raise PredicateError(
                f"range predicate on {self.attribute!r} requires both bounds"
            )
        try:
            out_of_order = self.low > self.high
        except TypeError as exc:
            raise PredicateError(
                f"range bounds for {self.attribute!r} are not comparable: "
                f"{self.low!r} vs {self.high!r}"
            ) from exc
        if out_of_order:
            raise PredicateError(
                f"range predicate on {self.attribute!r} has low > high "
                f"({self.low!r} > {self.high!r})"
            )

    @property
    def is_constrained(self) -> bool:
        return True

    @property
    def is_degenerate(self) -> bool:
        """True when the range covers a single point (``low == high``)."""
        return self.low == self.high

    def to_sdl(self) -> str:
        open_bracket = "[" if self.include_low else "]"
        close_bracket = "]" if self.include_high else "["
        return (
            f"{self.attribute}: {open_bracket}"
            f"{_format_literal(self.low)}, {_format_literal(self.high)}{close_bracket}"
        )

    def matches_value(self, value: Any) -> bool:
        if value is None:
            return False
        if self.include_low:
            if value < self.low:
                return False
        elif value <= self.low:
            return False
        if self.include_high:
            if value > self.high:
                return False
        elif value >= self.high:
            return False
        return True


@dataclass(frozen=True)
class SetPredicate(Predicate):
    """A set constraint ``Attr : {a0, a1, ..., aK}``.

    Parameters
    ----------
    values:
        The admissible values.  Must be non-empty; duplicates are removed.
    """

    values: FrozenSet[Any] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "values", frozenset(self.values))
        if not self.values:
            raise PredicateError(
                f"set predicate on {self.attribute!r} requires at least one value"
            )

    @property
    def is_constrained(self) -> bool:
        return True

    @property
    def sorted_values(self) -> tuple:
        """Values in a deterministic order (used for display and hashing text)."""
        return tuple(sorted(self.values, key=lambda v: (str(type(v)), str(v))))

    def to_sdl(self) -> str:
        inner = ", ".join(_format_literal(v) for v in self.sorted_values)
        return f"{self.attribute}: {{{inner}}}"

    def matches_value(self, value: Any) -> bool:
        return value in self.values


@dataclass(frozen=True)
class ExclusionPredicate(Predicate):
    """An exclusion constraint ``Attr : !{a0, a1, ..., aK}``.

    The complement of a :class:`SetPredicate`: a row matches when the
    attribute holds a *non-missing* value outside ``values`` (missing
    values never match, mirroring SQL's three-valued ``NOT IN``).  This is
    the conjunctive-safe encoding of a SQL ``NOT IN (...)`` context; it is
    produced by :func:`repro.storage.sql.parse_where` and rendered back as
    ``NOT IN`` by :func:`repro.storage.sql.predicate_to_sql`.

    Parameters
    ----------
    values:
        The excluded values.  Must be non-empty; duplicates are removed.
    """

    values: FrozenSet[Any] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "values", frozenset(self.values))
        if not self.values:
            raise PredicateError(
                f"exclusion predicate on {self.attribute!r} requires at least one value"
            )

    @property
    def is_constrained(self) -> bool:
        return True

    @property
    def sorted_values(self) -> tuple:
        """Excluded values in a deterministic order (display and signatures)."""
        return tuple(sorted(self.values, key=lambda v: (str(type(v)), str(v))))

    def to_sdl(self) -> str:
        inner = ", ".join(_format_literal(v) for v in self.sorted_values)
        return f"{self.attribute}: !{{{inner}}}"

    def matches_value(self, value: Any) -> bool:
        return value is not None and value not in self.values


def intersect_predicates(first: Predicate, second: Predicate) -> Optional[Predicate]:
    """Return the conjunction of two predicates on the same attribute.

    The CUT primitive refines an existing constraint with a tighter one
    computed from the values actually covered by the query.  Conjunction of
    two constraints on the same attribute is therefore the natural way to
    build the refined query.

    Returns
    -------
    Predicate or None
        ``None`` signals an empty (unsatisfiable) intersection.

    Raises
    ------
    PredicateError
        If the predicates constrain different attributes or mix range and
        set constraints in a way that cannot be reduced.
    """
    if first.attribute != second.attribute:
        raise PredicateError(
            "cannot intersect predicates on different attributes: "
            f"{first.attribute!r} vs {second.attribute!r}"
        )
    if isinstance(first, NoConstraint):
        return second
    if isinstance(second, NoConstraint):
        return first
    if isinstance(first, SetPredicate) and isinstance(second, SetPredicate):
        common = first.values & second.values
        if not common:
            return None
        return SetPredicate(first.attribute, common)
    if isinstance(first, ExclusionPredicate) or isinstance(second, ExclusionPredicate):
        return _intersect_with_exclusion(first, second)
    if isinstance(first, RangePredicate) and isinstance(second, RangePredicate):
        return _intersect_ranges(first, second)
    # Mixed range / set: keep the set values that satisfy the range.
    range_pred, set_pred = (
        (first, second) if isinstance(first, RangePredicate) else (second, first)
    )
    if not isinstance(range_pred, RangePredicate) or not isinstance(
        set_pred, SetPredicate
    ):
        raise PredicateError(
            f"cannot intersect {type(first).__name__} with {type(second).__name__}"
        )
    kept = frozenset(v for v in set_pred.values if range_pred.matches_value(v))
    if not kept:
        return None
    return SetPredicate(set_pred.attribute, kept)


def _intersect_with_exclusion(
    first: Predicate, second: Predicate
) -> Optional[Predicate]:
    """Conjunction rules involving at least one :class:`ExclusionPredicate`.

    * exclusion ∧ exclusion — exclude the union of both value sets;
    * exclusion ∧ set — keep the set values that are not excluded;
    * exclusion ∧ range — drop excluded values outside the range; if any
      excluded value remains *inside* the range the conjunction cannot be
      reduced to a single SDL predicate and a :class:`PredicateError` is
      raised (the CUT primitive treats this as "cannot cut").
    """
    if isinstance(first, ExclusionPredicate) and isinstance(second, ExclusionPredicate):
        return ExclusionPredicate(first.attribute, first.values | second.values)
    exclusion, other = (
        (first, second) if isinstance(first, ExclusionPredicate) else (second, first)
    )
    assert isinstance(exclusion, ExclusionPredicate)
    if isinstance(other, SetPredicate):
        kept = other.values - exclusion.values
        if not kept:
            return None
        return SetPredicate(other.attribute, kept)
    if isinstance(other, RangePredicate):
        def _in_range(value: Any) -> bool:
            try:
                return other.matches_value(value)
            except TypeError:  # not comparable with the bounds: outside
                return False

        inside = frozenset(value for value in exclusion.values if _in_range(value))
        if not inside:
            return other
        raise PredicateError(
            f"cannot reduce the conjunction of {other.to_sdl()!r} and "
            f"{exclusion.to_sdl()!r} to a single SDL predicate"
        )
    raise PredicateError(
        f"cannot intersect {type(first).__name__} with {type(second).__name__}"
    )  # pragma: no cover - exhaustive over the SDL grammar


def _intersect_ranges(
    first: RangePredicate, second: RangePredicate
) -> Optional[RangePredicate]:
    """Intersect two range predicates on the same attribute."""
    if first.low > second.low:
        low, include_low = first.low, first.include_low
    elif second.low > first.low:
        low, include_low = second.low, second.include_low
    else:
        low = first.low
        include_low = first.include_low and second.include_low

    if first.high < second.high:
        high, include_high = first.high, first.include_high
    elif second.high < first.high:
        high, include_high = second.high, second.include_high
    else:
        high = first.high
        include_high = first.include_high and second.include_high

    if low > high:
        return None
    if low == high and not (include_low and include_high):
        return None
    return RangePredicate(
        first.attribute,
        low=low,
        high=high,
        include_low=include_low,
        include_high=include_high,
    )


def predicate_from_values(attribute: str, values: Iterable[Any]) -> Predicate:
    """Build the tightest predicate describing an explicit set of values.

    Numeric collections become a closed range ``[min, max]``; everything
    else becomes a set constraint.  Used by workload helpers and tests.
    """
    materialised = list(values)
    if not materialised:
        raise PredicateError(f"cannot build a predicate on {attribute!r} from no values")
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in materialised):
        return RangePredicate(attribute, low=min(materialised), high=max(materialised))
    return SetPredicate(attribute, frozenset(materialised))
