"""Segmentation Description Language (SDL).

The paper introduces SDL as the language Charles uses both to receive
context queries from the user and to describe its answers.  This package
contains:

* the predicate and query objects (:mod:`repro.sdl.predicates`,
  :mod:`repro.sdl.query`);
* segmentations — partitions of a context into SDL queries
  (:mod:`repro.sdl.segmentation`);
* a parser and formatter for the textual syntax
  (:mod:`repro.sdl.parser`, :mod:`repro.sdl.formatter`);
* partition validation against Definition 3 (:mod:`repro.sdl.validation`).
"""

from repro.sdl.predicates import (
    ExclusionPredicate,
    NoConstraint,
    Predicate,
    RangePredicate,
    SetPredicate,
    intersect_predicates,
    predicate_from_values,
)
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segment, Segmentation
from repro.sdl.parser import parse_predicate, parse_query
from repro.sdl.formatter import (
    format_predicate,
    format_query,
    format_segment_label,
    format_segmentation,
    query_signature,
)
from repro.sdl.validation import (
    PartitionReport,
    check_partition,
    queries_are_disjoint,
    validate_partition,
)

__all__ = [
    "Predicate",
    "NoConstraint",
    "RangePredicate",
    "SetPredicate",
    "ExclusionPredicate",
    "intersect_predicates",
    "predicate_from_values",
    "SDLQuery",
    "Segment",
    "Segmentation",
    "parse_query",
    "parse_predicate",
    "format_predicate",
    "format_query",
    "format_segmentation",
    "format_segment_label",
    "query_signature",
    "PartitionReport",
    "check_partition",
    "validate_partition",
    "queries_are_disjoint",
]
