"""A bounded log of the worst (slowest) requests per operation.

Every service request is offered to the log; each operation keeps only
its ``per_op`` slowest entries (a min-heap on duration, so a fast
request on a full heap is rejected with one comparison).  When the
request was traced, the entry carries the full span tree — the
``slow_ops`` wire operation then answers "where did the worst advise
go?" with the complete router → node → engine breakdown; untraced
entries still record operation, duration, session and request id.

Logs from several nodes merge at the router by simply re-ranking the
union (:meth:`SlowOpLog.merge_documents`), the same fan-out-and-merge
shape the metrics registry uses.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SlowOpLog"]

#: Default number of worst entries kept per operation.
DEFAULT_PER_OP = 8


class SlowOpLog:
    """Per-operation ring of the N slowest requests.

    Thread-safe; the heaps are guarded by one lock and an offer on a
    full heap that does not displace anything is one comparison.
    """

    def __init__(self, per_op: int = DEFAULT_PER_OP) -> None:
        self.per_op = max(1, int(per_op))
        self._lock = threading.Lock()
        # op -> min-heap of (seconds, tick, entry); tick breaks ties so
        # heapq never compares the entry dicts themselves.
        self._heaps: Dict[str, List[Tuple[float, int, Dict[str, Any]]]] = {}
        self._ticks = itertools.count()

    def record(
        self,
        op: str,
        seconds: float,
        session: Optional[str] = None,
        request_id: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Offer one finished request; kept only if among the op's worst."""
        entry: Dict[str, Any] = {
            "op": op,
            "seconds": float(seconds),
            "recorded_at": time.time(),
        }
        if session is not None:
            entry["session"] = session
        if request_id is not None:
            entry["request_id"] = request_id
        if trace is not None:
            entry["trace"] = trace
        with self._lock:
            heap = self._heaps.setdefault(op, [])
            item = (float(seconds), next(self._ticks), entry)
            if len(heap) < self.per_op:
                heapq.heappush(heap, item)
            elif heap[0][0] < item[0]:
                heapq.heapreplace(heap, item)

    def document(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The log as a JSON-safe document, worst request first.

        ``limit`` caps the number of entries returned *per operation*
        (defaults to everything kept).
        """
        with self._lock:
            heaps = {op: list(heap) for op, heap in self._heaps.items()}
        per_op = self.per_op if limit is None else max(1, int(limit))
        ops: Dict[str, List[Dict[str, Any]]] = {}
        for op in sorted(heaps):
            ranked = sorted(heaps[op], key=lambda item: item[0], reverse=True)
            ops[op] = [dict(entry) for _, _, entry in ranked[:per_op]]
        return {"per_op": per_op, "ops": ops}

    def clear(self) -> None:
        with self._lock:
            self._heaps.clear()

    @staticmethod
    def merge_documents(
        documents: List[Dict[str, Any]], limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """Merge per-node slow-op documents by re-ranking the union."""
        per_op = 0
        pooled: Dict[str, List[Dict[str, Any]]] = {}
        for document in documents:
            per_op = max(per_op, int(document.get("per_op", 0)))
            for op, entries in document.get("ops", {}).items():
                pooled.setdefault(op, []).extend(entries)
        if limit is not None:
            per_op = max(1, int(limit))
        elif per_op == 0:
            per_op = DEFAULT_PER_OP
        ops: Dict[str, List[Dict[str, Any]]] = {}
        for op in sorted(pooled):
            ranked = sorted(
                pooled[op], key=lambda entry: float(entry.get("seconds", 0.0)), reverse=True
            )
            ops[op] = [dict(entry) for entry in ranked[:per_op]]
        return {"per_op": per_op, "ops": ops}
