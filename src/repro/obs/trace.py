"""Request tracing: span trees with an ambient context-var span.

A *span* is one timed piece of work — a service request, a session step,
one engine operation — with a name, wall-clock anchor, monotonic
duration, free-form attributes and child spans.  Spans form one tree per
request, stitched across processes by a shared ``trace_id``: the cluster
router opens the root, forwards its trace context in the request
envelope's ``trace`` field, the owning node builds its own subtree and
returns it in the response, and the router *adopts* that subtree back
under its forwarding span (:meth:`Span.adopt`).

Zero overhead by default
------------------------

Tracing costs nothing until the first trace starts in a process:

* :func:`tracing_active` short-circuits on a module-level boolean that
  is flipped (permanently) by the first :func:`start_trace` call — hot
  paths guard on one global read, not a context-var lookup;
* :func:`span` returns the shared no-op singleton when no trace is
  active, so instrumented blocks need no conditional of their own;
* leaf operations (engine count/median) use the *retroactive* child API
  — :meth:`Span.record` — measuring with a plain ``perf_counter`` pair
  and attaching the finished child afterwards, so the hot path never
  touches the context var.

Spans are built and finished on the request thread; work handed to
background threads (batch leaders, pool workers, refinement tasks) is
not traced — the ambient span deliberately does not cross threads.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar, Token
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "current_span",
    "format_span_tree",
    "span",
    "start_trace",
    "tracing_active",
]

_IDS = itertools.count(1)

#: Flipped (permanently) by the first ``start_trace`` in the process:
#: the one-global-read fast path of ``tracing_active``.
_SEEN = False

_ACTIVE: ContextVar[Optional["Span"]] = ContextVar("charles_active_span", default=None)


def _new_id(prefix: str) -> str:
    """A process-unique identifier (``<prefix><pid>-<n>``, hex)."""
    return f"{prefix}{os.getpid():x}-{next(_IDS):x}"


def tracing_active() -> bool:
    """Whether a span is ambient on the calling thread.

    The disabled path is one module-global boolean read — cheap enough
    for per-engine-operation guards.
    """
    return _SEEN and _ACTIVE.get() is not None


def current_span() -> Optional["Span"]:
    """The ambient span of the calling thread, or ``None``."""
    if not _SEEN:
        return None
    return _ACTIVE.get()


class Span:
    """One timed node of a trace tree.

    Use as a context manager: entering makes the span ambient (children
    created via :func:`span` nest under it), exiting records the
    duration — and the exception type, if one is in flight — and
    restores the previous ambient span.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "duration_seconds",
        "attributes",
        "children",
        "error",
        "_perf_start",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id else _new_id("t")
        self.span_id = _new_id("s")
        self.parent_id = parent_id
        self.started_at = time.time()
        self.duration_seconds: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes
        #: Finished child ``Span`` objects and adopted remote span
        #: documents, in creation order.
        self.children: List[Any] = []
        self.error: Optional[str] = None
        self._perf_start = time.perf_counter()
        self._token: Optional[Token[Optional[Span]]] = None

    # -- building the tree ---------------------------------------------------

    def child(self, name: str, **attributes: Any) -> "Span":
        """A new child span (not yet finished), appended to this one."""
        node = Span(name, trace_id=self.trace_id, parent_id=self.span_id, **attributes)
        self.children.append(node)
        return node

    def record(
        self, name: str, seconds: float, **attributes: Any
    ) -> "Span":
        """Attach an already-measured leaf child (the retroactive API).

        Hot paths measure with a bare ``perf_counter`` pair and call
        this once at the end, so nothing trace-related happens inside
        the measured region.
        """
        node = self.child(name, **attributes)
        node.started_at = time.time() - seconds
        node.duration_seconds = float(seconds)
        return node

    def adopt(self, document: Dict[str, Any]) -> None:
        """Attach a span tree *document* produced by another process.

        The remote subtree shares this span's ``trace_id`` (the wire
        trace context carried it over), so plain adoption yields one
        coherent tree for the whole routed request.
        """
        self.children.append(dict(document))

    def annotate(self, **attributes: Any) -> None:
        """Merge attributes into the span (latest value wins)."""
        self.attributes.update(attributes)

    def finish(self) -> "Span":
        """Freeze the duration (idempotent; keeps the first measurement)."""
        if self.duration_seconds is None:
            self.duration_seconds = time.perf_counter() - self._perf_start
        return self

    # -- ambient activation ----------------------------------------------------

    def __enter__(self) -> "Span":
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        if exc_type is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        self.finish()
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    def __bool__(self) -> bool:
        return True

    # -- wire form -------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The span tree as a plain JSON-safe document (wire ``trace``)."""
        document: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration_seconds": self.finish().duration_seconds,
        }
        if self.attributes:
            document["attributes"] = dict(self.attributes)
        if self.error is not None:
            document["error"] = self.error
        if self.children:
            document["children"] = [
                child.to_document() if isinstance(child, Span) else child
                for child in self.children
            ]
        return document

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span(name={self.name!r}, trace_id={self.trace_id!r}, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """The falsy do-nothing span served while tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def child(self, name: str, **attributes: Any) -> "_NoopSpan":
        return self

    def record(self, name: str, seconds: float, **attributes: Any) -> "_NoopSpan":
        return self

    def adopt(self, document: Dict[str, Any]) -> None:
        return None

    def annotate(self, **attributes: Any) -> None:
        return None

    def finish(self) -> "_NoopSpan":
        return self


NO_SPAN = _NoopSpan()


def start_trace(
    name: str,
    trace_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    **attributes: Any,
) -> Span:
    """Open a trace root (arms :func:`tracing_active` for the process).

    ``trace_id``/``parent_id`` join an existing distributed trace — the
    wire trace context a router put on the request envelope; omitted,
    a fresh trace id is issued.
    """
    global _SEEN
    _SEEN = True
    return Span(name, trace_id=trace_id, parent_id=parent_id, **attributes)


def span(name: str, **attributes: Any) -> Any:
    """A child of the ambient span, or the no-op singleton when inactive.

    Use as ``with span("session.advise", mode=mode) as sp:`` — the child
    becomes ambient inside the block (so nested instrumentation attaches
    under it) and ``sp`` is falsy when tracing is off.
    """
    parent = current_span()
    if parent is None:
        return NO_SPAN
    return parent.child(name, **attributes)


def format_span_tree(document: Dict[str, Any], indent: int = 0) -> str:
    """Render a span tree document as an indented text tree.

    One line per span: name, duration, then ``key=value`` attributes —
    the ``charles call --trace`` output.
    """
    duration = document.get("duration_seconds")
    timing = f"{duration * 1000.0:9.3f} ms" if isinstance(duration, (int, float)) else "        ? ms"
    line = f"{'  ' * indent}{timing}  {document.get('name', '?')}"
    attributes = document.get("attributes")
    if isinstance(attributes, dict) and attributes:
        rendered = " ".join(
            f"{key}={attributes[key]}" for key in sorted(attributes)
        )
        line += f"  [{rendered}]"
    if document.get("error"):
        line += f"  !error={document['error']}"
    lines = [line]
    for child in document.get("children", []) or []:
        if isinstance(child, dict):
            lines.append(format_span_tree(child, indent + 1))
    return "\n".join(lines)
