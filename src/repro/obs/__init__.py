"""Observability: request tracing, a metrics registry, and a slow-op log.

The production-scale half of the roadmap needs a window into a running
deployment; this package is that window, in three stdlib-only pieces:

* :mod:`repro.obs.trace` — :class:`~repro.obs.trace.Span` trees with
  monotonic timings and attributes, an ambient context-var span, and a
  zero-overhead-by-default activation model.  Spans ride the wire in the
  optional ``trace`` field of the request/response envelopes, so one
  trace id follows a request from the cluster router through the owning
  node down to individual engine operations.
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of named counters, gauge views and latency histograms backed by
  :class:`~repro.storage.sketches.MergeableQuantileSketch`, rendered in
  Prometheus text format (``GET /v1/metrics``) and mergeable across
  nodes (the router fans out and merges).
* :mod:`repro.obs.slowlog` — a :class:`~repro.obs.slowlog.SlowOpLog`
  ring of the N worst requests per operation, with their span trees when
  tracing was on (the ``slow_ops`` wire operation).

See ``docs/observability.md`` for the span model, the metric name
catalogue and scrape examples.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowOpLog
from repro.obs.trace import (
    Span,
    current_span,
    format_span_tree,
    span,
    start_trace,
    tracing_active,
)

__all__ = [
    "MetricsRegistry",
    "SlowOpLog",
    "Span",
    "current_span",
    "format_span_tree",
    "span",
    "start_trace",
    "tracing_active",
]
