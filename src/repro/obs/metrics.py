"""A process-local metrics registry with mergeable latency histograms.

Three instrument kinds, all exported in Prometheus text format by
``GET /v1/metrics`` and as a JSON *metrics document* (the mergeable form
the cluster router fans out for and combines):

* :class:`Counter` — a monotonically increasing count.  Built either
  *owned* (``inc()`` under a lock) or as a *view* over an existing tally
  (a zero-argument callback reading, say, an
  :class:`~repro.storage.engine.OperationCounter` field), so the
  scattered stats the system already keeps become scrapeable without
  double bookkeeping.
* :class:`Gauge` — a point-in-time value (cache entries, pool workers);
  same owned/view split.
* :class:`Histogram` — a latency summary backed by
  :class:`~repro.storage.sketches.MergeableQuantileSketch`.  Observations
  are appended to a small pending buffer and folded into the sketch
  lazily (sketch construction is vectorised, so folding a batch costs one
  sort), and because the sketch is mergeable the router can combine the
  per-node histograms into cluster-wide p50/p95/p99 with an honest rank
  bound.

Instruments are keyed by ``(name, sorted labels)``; asking for the same
key twice returns the same instrument, so modules can register views
idempotently.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.storage.sketches import MergeableQuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Quantiles every histogram exposes in the Prometheus rendering.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

#: Default sketch budget for latency histograms — 128 items keep the
#: rank error of a node-local histogram under ~1% while a full scrape
#: stays a few kilobytes per operation.
DEFAULT_HISTOGRAM_BUDGET = 128

_LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Mapping[str, str]]) -> _LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: _LabelsKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count, owned or a view.

    A *view* counter is constructed with ``fn`` — a zero-argument
    callback returning the current tally from whichever structure already
    owns it; calling :meth:`inc` on a view raises, keeping ownership
    unambiguous.
    """

    __slots__ = ("name", "labels", "help", "_fn", "_lock", "_value")

    def __init__(
        self,
        name: str,
        labels: _LabelsKey,
        help_text: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help_text
        self._fn = fn
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError(f"counter {self.name!r} is a view; increment its source")
        with self._lock:
            self._value = self._value + float(amount)

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value, owned (``set``) or a view (callback)."""

    __slots__ = ("name", "labels", "help", "_fn", "_lock", "_value")

    def __init__(
        self,
        name: str,
        labels: _LabelsKey,
        help_text: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help_text
        self._fn = fn
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is a view; set its source")
        with self._lock:
            self._value = float(value)

    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Histogram:
    """A sketch-backed latency summary.

    ``observe`` appends to a pending buffer under the lock; the buffer is
    folded into the :class:`MergeableQuantileSketch` lazily — on scrape,
    or whenever it reaches the fold threshold — so the observation path
    stays an append plus an occasional vectorised batch sort.
    """

    __slots__ = ("name", "labels", "help", "budget", "_lock", "_pending", "_sketch", "_count", "_sum")

    #: Pending observations folded into the sketch once this many queue up.
    FOLD_THRESHOLD = 256

    def __init__(
        self,
        name: str,
        labels: _LabelsKey,
        help_text: str,
        budget: int = DEFAULT_HISTOGRAM_BUDGET,
    ) -> None:
        self.name = name
        self.labels = labels
        self.help = help_text
        self.budget = max(2, int(budget))
        self._lock = threading.Lock()
        self._pending: List[float] = []
        self._sketch = MergeableQuantileSketch.empty(self.budget)
        self._count = 0
        self._sum = 0.0

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        with self._lock:
            self._pending.append(value)
            self._count = self._count + 1
            self._sum = self._sum + value
            if len(self._pending) >= self.FOLD_THRESHOLD:
                self._fold_locked()

    def _fold_locked(self) -> None:
        if not self._pending:
            return
        batch = MergeableQuantileSketch.from_values(
            np.asarray(self._pending, dtype=np.float64), self.budget
        )
        self._sketch = self._sketch.merge(batch)
        self._pending = []

    def snapshot(self) -> Tuple[int, float, MergeableQuantileSketch]:
        """``(count, sum, sketch)`` with all pending observations folded."""
        with self._lock:
            self._fold_locked()
            return self._count, self._sum, self._sketch


class MetricsRegistry:
    """A keyed collection of instruments with document/Prometheus output.

    ``namespace`` prefixes every metric name in the rendered output
    (``charles_`` by default), keeping the registry's internal names
    short (``requests_total``) while the exposition stays conventional
    (``charles_requests_total``).
    """

    def __init__(self, namespace: str = "charles") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelsKey], Histogram] = {}

    # -- registration ----------------------------------------------------------

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._counters.get(key)
            if existing is not None:
                if fn is not None:
                    existing._fn = fn  # re-registering a view rebinds its source
                return existing
            created = Counter(name, key[1], help_text, fn=fn)
            self._counters[key] = created
            return created

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._gauges.get(key)
            if existing is not None:
                if fn is not None:
                    existing._fn = fn
                return existing
            created = Gauge(name, key[1], help_text, fn=fn)
            self._gauges[key] = created
            return created

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        budget: int = DEFAULT_HISTOGRAM_BUDGET,
    ) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._histograms.get(key)
            if existing is not None:
                return existing
            created = Histogram(name, key[1], help_text, budget=budget)
            self._histograms[key] = created
            return created

    # -- output ----------------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The registry as a JSON-safe, *mergeable* metrics document."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        document: Dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
        for counter in counters:
            document["counters"].append(
                {
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "help": counter.help,
                    "value": counter.value(),
                }
            )
        for gauge in gauges:
            document["gauges"].append(
                {
                    "name": gauge.name,
                    "labels": dict(gauge.labels),
                    "help": gauge.help,
                    "value": gauge.value(),
                }
            )
        for histogram in histograms:
            count, total, sketch = histogram.snapshot()
            document["histograms"].append(
                {
                    "name": histogram.name,
                    "labels": dict(histogram.labels),
                    "help": histogram.help,
                    "count": count,
                    "sum": total,
                    "budget": sketch.budget,
                    "values": [float(v) for v in sketch.values],
                    "weights": [int(w) for w in sketch.weights],
                    "total_weight": sketch.total_weight,
                    "rank_error": sketch.rank_error,
                }
            )
        return document

    def render_prometheus(self) -> str:
        """This registry in Prometheus text exposition format."""
        return render_document(self.to_document(), namespace=self.namespace)

    # -- merging ---------------------------------------------------------------

    @staticmethod
    def merge_documents(documents: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Combine per-node metrics documents into one cluster document.

        Counters and gauges sum by ``(name, labels)`` (a summed gauge is
        the cluster total — entries across nodes, workers across pools);
        histograms merge their quantile sketches, so the combined
        percentile lines carry an honest, tracked rank bound.
        """
        counters: Dict[Tuple[str, _LabelsKey], Dict[str, Any]] = {}
        gauges: Dict[Tuple[str, _LabelsKey], Dict[str, Any]] = {}
        histograms: Dict[Tuple[str, _LabelsKey], Dict[str, Any]] = {}
        for document in documents:
            for row in document.get("counters", []):
                key = (str(row["name"]), _labels_key(row.get("labels")))
                slot = counters.get(key)
                if slot is None:
                    counters[key] = dict(row)
                else:
                    slot["value"] = float(slot["value"]) + float(row["value"])
            for row in document.get("gauges", []):
                key = (str(row["name"]), _labels_key(row.get("labels")))
                slot = gauges.get(key)
                if slot is None:
                    gauges[key] = dict(row)
                else:
                    slot["value"] = float(slot["value"]) + float(row["value"])
            for row in document.get("histograms", []):
                key = (str(row["name"]), _labels_key(row.get("labels")))
                slot = histograms.get(key)
                if slot is None:
                    histograms[key] = dict(row)
                    continue
                merged = _sketch_from_row(slot).merge(_sketch_from_row(row))
                slot["count"] = int(slot["count"]) + int(row["count"])
                slot["sum"] = float(slot["sum"]) + float(row["sum"])
                slot["budget"] = merged.budget
                slot["values"] = [float(v) for v in merged.values]
                slot["weights"] = [int(w) for w in merged.weights]
                slot["total_weight"] = merged.total_weight
                slot["rank_error"] = merged.rank_error
        return {
            "counters": [counters[key] for key in sorted(counters)],
            "gauges": [gauges[key] for key in sorted(gauges)],
            "histograms": [histograms[key] for key in sorted(histograms)],
        }


def _sketch_from_row(row: Mapping[str, Any]) -> MergeableQuantileSketch:
    """Reconstruct a quantile sketch from its document row."""
    return MergeableQuantileSketch(
        int(row.get("budget", DEFAULT_HISTOGRAM_BUDGET)),
        np.asarray(row.get("values", []), dtype=np.float64),
        np.asarray(row.get("weights", []), dtype=np.int64),
        int(row.get("total_weight", 0)),
        int(row.get("rank_error", 0)),
    )


def render_document(document: Mapping[str, Any], namespace: str = "charles") -> str:
    """Render a metrics document (local or merged) as Prometheus text.

    Histograms render as summaries: one ``quantile=...`` line per entry
    of :data:`SUMMARY_QUANTILES` plus ``_sum`` and ``_count``.
    """
    prefix = f"{namespace}_" if namespace else ""
    lines: List[str] = []
    for row in document.get("counters", []):
        name = f"{prefix}{row['name']}"
        if row.get("help"):
            lines.append(f"# HELP {name} {row['help']}")
        lines.append(f"# TYPE {name} counter")
        labels = _render_labels(_labels_key(row.get("labels")))
        lines.append(f"{name}{labels} {_format_value(row['value'])}")
    for row in document.get("gauges", []):
        name = f"{prefix}{row['name']}"
        if row.get("help"):
            lines.append(f"# HELP {name} {row['help']}")
        lines.append(f"# TYPE {name} gauge")
        labels = _render_labels(_labels_key(row.get("labels")))
        lines.append(f"{name}{labels} {_format_value(row['value'])}")
    for row in document.get("histograms", []):
        name = f"{prefix}{row['name']}"
        if row.get("help"):
            lines.append(f"# HELP {name} {row['help']}")
        lines.append(f"# TYPE {name} summary")
        key = _labels_key(row.get("labels"))
        sketch = _sketch_from_row(row)
        for fraction in SUMMARY_QUANTILES:
            if sketch.total_weight:
                value = sketch.quantile(fraction)
            else:
                value = float("nan")
            labels = _render_labels(key, extra=("quantile", _format_value(fraction)))
            lines.append(f"{name}{labels} {_format_value(value)}")
        labels = _render_labels(key)
        lines.append(f"{name}_sum{labels} {_format_value(row['sum'])}")
        lines.append(f"{name}_count{labels} {int(row['count'])}")
    return "\n".join(lines) + "\n"


def _format_value(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)
