"""Exception hierarchy for the Charles reproduction.

All library-specific errors derive from :class:`CharlesError` so that
callers can catch a single base class.  Sub-classes are grouped by the
layer that raises them (SDL language, storage substrate, core advisor,
wire protocol).

Every class carries a stable machine-readable ``code`` — the identifier
the wire protocol (:mod:`repro.api`) ships in its error envelopes, so
remote clients can react to error *kinds* without parsing prose.  The
code is part of ``str()`` output (appended in brackets); the bare prose
is available as :attr:`CharlesError.message`.  Codes are API surface:
never re-used, renamed only with a protocol version bump.
"""

from __future__ import annotations

from typing import Dict, Iterator, Type


class CharlesError(Exception):
    """Base class for every error raised by the ``repro`` package.

    Attributes
    ----------
    code:
        Stable machine-readable identifier of the error kind, shipped in
        wire error envelopes and appended to ``str()`` output.
    """

    code = "charles"

    @property
    def message(self) -> str:
        """The prose message without the trailing ``[code]`` marker."""
        return Exception.__str__(self)

    def __str__(self) -> str:
        base = Exception.__str__(self)
        if base:
            return f"{base} [{self.code}]"
        return f"[{self.code}]"


class SDLError(CharlesError):
    """Base class for errors in the SDL language layer."""

    code = "sdl"


class SDLSyntaxError(SDLError):
    """Raised when an SDL expression cannot be parsed.

    Attributes
    ----------
    text:
        The offending input text.
    position:
        Character offset at which parsing failed, when known.
    """

    code = "sdl_syntax"

    def __init__(self, message: str, text: str = "", position: int | None = None) -> None:
        super().__init__(message)
        self.text = text
        self.position = position


class PredicateError(SDLError):
    """Raised when a predicate is constructed with invalid arguments."""

    code = "sdl_predicate"


class QueryError(SDLError):
    """Raised when an SDL query is malformed (e.g. duplicate attributes)."""

    code = "sdl_query"


class SegmentationError(SDLError):
    """Raised when a segmentation violates its structural constraints."""

    code = "sdl_segmentation"


class InvalidPartitionError(SegmentationError):
    """Raised when a candidate segmentation is not a partition of its context.

    A valid segmentation must consist of pairwise-disjoint queries whose
    union covers the context exactly (paper, Definition 3).
    """

    code = "sdl_invalid_partition"


class StorageError(CharlesError):
    """Base class for errors in the storage substrate."""

    code = "storage"


class SchemaError(StorageError):
    """Raised for schema violations: unknown columns, mismatched lengths."""

    code = "storage_schema"


class UnknownColumnError(SchemaError):
    """Raised when a query references a column the table does not have."""

    code = "storage_unknown_column"

    def __init__(self, column: str, available: tuple[str, ...] = ()) -> None:
        message = f"unknown column {column!r}"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)
        self.column = column
        self.available = tuple(available)


class TypeMismatchError(StorageError):
    """Raised when a predicate is applied to a column of incompatible type."""

    code = "storage_type_mismatch"


class EmptyColumnError(StorageError):
    """Raised when an aggregate (median, min, max) is requested on no rows."""

    code = "storage_empty_column"


class CSVFormatError(StorageError):
    """Raised when a CSV file cannot be loaded into a table."""

    code = "storage_csv_format"


class SQLGenerationError(StorageError):
    """Raised when an SDL query cannot be rendered as SQL."""

    code = "storage_sql_generation"


class SQLParseError(StorageError):
    """Raised when a WHERE-clause cannot be parsed back into SDL."""

    code = "storage_sql_parse"


class BackendError(StorageError):
    """Raised when an execution backend cannot be opened or operated.

    Covers malformed backend specs, unknown registry schemes and failures
    of external engines (e.g. a missing SQLite database file).
    """

    code = "storage_backend"


class CoreError(CharlesError):
    """Base class for errors in the core advisor algorithms."""

    code = "core"


class CannotCutError(CoreError):
    """Raised when the CUT primitive cannot split a query on an attribute.

    Typical causes: the attribute has fewer than two distinct values in the
    query's result set, or the query selects no rows at all.
    """

    code = "core_cannot_cut"

    def __init__(self, attribute: str, reason: str = "") -> None:
        message = f"cannot cut on attribute {attribute!r}"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.attribute = attribute
        self.reason = reason


class CompositionError(CoreError):
    """Raised when COMPOSE is applied to incompatible segmentations."""

    code = "core_composition"


class AdvisorError(CoreError):
    """Raised when the advisor cannot produce an answer for a context."""

    code = "core_advisor"


class SessionError(CoreError):
    """Raised on invalid interactive-session operations (e.g. back() at root)."""

    code = "core_session"


class WorkloadError(CharlesError):
    """Raised when a synthetic workload generator receives invalid parameters."""

    code = "workload"


class VisualizationError(CharlesError):
    """Raised when a renderer cannot lay out its input."""

    code = "visualization"


class ProtocolError(CharlesError):
    """Base class for wire-protocol errors (:mod:`repro.api`).

    Raised for malformed request envelopes, missing or ill-typed
    parameters, and version mismatches.
    """

    code = "protocol"


class UnknownOperationError(ProtocolError):
    """Raised when a request names an operation the service does not expose."""

    code = "protocol_unknown_op"


class WireFormatError(ProtocolError):
    """Raised when a wire payload cannot be encoded or decoded losslessly."""

    code = "protocol_wire_format"


class ClusterError(CharlesError):
    """Base class for errors raised by the cluster tier (:mod:`repro.cluster`).

    Covers node-supervision failures (a node process that never reports
    its port), malformed shard maps and router-side forwarding problems
    that are not plain transport errors.
    """

    code = "cluster"


class DegradedError(ClusterError):
    """Raised when neither a shard's owner nor any replica can answer.

    The structured "we are degraded, not hanging" signal: the router
    raises it (and ships it over the wire with this stable code) when a
    request's owning node is dead and every failover candidate is dead
    too, instead of letting the client see a raw socket error or an
    indefinite stall.
    """

    code = "cluster_degraded"


class RemoteError(CharlesError):
    """A server-side error reconstructed by a remote client.

    Used when the wire error code does not map onto a local class that can
    be rebuilt from its message alone; :attr:`code` then carries the
    server's original code rather than the generic ``"remote"``.
    """

    code = "remote"

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class RemoteTransportError(RemoteError):
    """A connection-level failure: the server never answered.

    Raised by :class:`~repro.api.client.RemoteAdvisor` after exhausting
    its transport retries (unreachable host, dropped connection, socket
    timeout).  Distinct from a plain :class:`RemoteError` — which means
    the server *answered* with an error — because the cluster router
    treats the two very differently: an unreachable node is marked dead
    and the request fails over to a replica, while an answered error is
    passed through to the client untouched.
    """

    code = "remote_unreachable"


def iter_error_classes() -> Iterator[Type[CharlesError]]:
    """Every class of the hierarchy, parents before children."""
    pending = [CharlesError]
    while pending:
        cls = pending.pop(0)
        yield cls
        pending.extend(sorted(cls.__subclasses__(), key=lambda c: c.__name__))


def error_code_registry() -> Dict[str, Type[CharlesError]]:
    """Map every stable error code to the class that owns it.

    Used by the wire protocol to turn error envelopes back into typed
    exceptions.  Codes are unique across the hierarchy (asserted by the
    test suite).
    """
    return {cls.code: cls for cls in iter_error_classes()}
