"""Exception hierarchy for the Charles reproduction.

All library-specific errors derive from :class:`CharlesError` so that
callers can catch a single base class.  Sub-classes are grouped by the
layer that raises them (SDL language, storage substrate, core advisor).
"""

from __future__ import annotations


class CharlesError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SDLError(CharlesError):
    """Base class for errors in the SDL language layer."""


class SDLSyntaxError(SDLError):
    """Raised when an SDL expression cannot be parsed.

    Attributes
    ----------
    text:
        The offending input text.
    position:
        Character offset at which parsing failed, when known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class PredicateError(SDLError):
    """Raised when a predicate is constructed with invalid arguments."""


class QueryError(SDLError):
    """Raised when an SDL query is malformed (e.g. duplicate attributes)."""


class SegmentationError(SDLError):
    """Raised when a segmentation violates its structural constraints."""


class InvalidPartitionError(SegmentationError):
    """Raised when a candidate segmentation is not a partition of its context.

    A valid segmentation must consist of pairwise-disjoint queries whose
    union covers the context exactly (paper, Definition 3).
    """


class StorageError(CharlesError):
    """Base class for errors in the storage substrate."""


class SchemaError(StorageError):
    """Raised for schema violations: unknown columns, mismatched lengths."""


class UnknownColumnError(SchemaError):
    """Raised when a query references a column the table does not have."""

    def __init__(self, column: str, available: tuple[str, ...] = ()):
        message = f"unknown column {column!r}"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)
        self.column = column
        self.available = tuple(available)


class TypeMismatchError(StorageError):
    """Raised when a predicate is applied to a column of incompatible type."""


class EmptyColumnError(StorageError):
    """Raised when an aggregate (median, min, max) is requested on no rows."""


class CSVFormatError(StorageError):
    """Raised when a CSV file cannot be loaded into a table."""


class SQLGenerationError(StorageError):
    """Raised when an SDL query cannot be rendered as SQL."""


class SQLParseError(StorageError):
    """Raised when a WHERE-clause cannot be parsed back into SDL."""


class BackendError(StorageError):
    """Raised when an execution backend cannot be opened or operated.

    Covers malformed backend specs, unknown registry schemes and failures
    of external engines (e.g. a missing SQLite database file).
    """


class CoreError(CharlesError):
    """Base class for errors in the core advisor algorithms."""


class CannotCutError(CoreError):
    """Raised when the CUT primitive cannot split a query on an attribute.

    Typical causes: the attribute has fewer than two distinct values in the
    query's result set, or the query selects no rows at all.
    """

    def __init__(self, attribute: str, reason: str = ""):
        message = f"cannot cut on attribute {attribute!r}"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.attribute = attribute
        self.reason = reason


class CompositionError(CoreError):
    """Raised when COMPOSE is applied to incompatible segmentations."""


class AdvisorError(CoreError):
    """Raised when the advisor cannot produce an answer for a context."""


class SessionError(CoreError):
    """Raised on invalid interactive-session operations (e.g. back() at root)."""


class WorkloadError(CharlesError):
    """Raised when a synthetic workload generator receives invalid parameters."""


class VisualizationError(CharlesError):
    """Raised when a renderer cannot lay out its input."""
