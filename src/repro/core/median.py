"""Median-point selection for the CUT primitive (paper, Definition 5).

The CUT operator splits a query in two along one attribute, at the
attribute's *median point* over the query's result set.  How the median
point is computed depends on the data type:

* **numeric, real and date columns** use the arithmetic median;
* **nominal columns** are ordered *by frequency of occurrence* when their
  cardinality is low and *alphabetically* otherwise, and the split point
  is the value at which the accumulated frequency is closest to 50%.

This module computes a :class:`SplitSpec` — the pair of predicates
(``[min, med[`` and ``[med, max]`` for numeric data, two complementary
value sets for nominal data) that the CUT primitive then conjoins with the
query being split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import CannotCutError
from repro.sdl.predicates import Predicate, RangePredicate, SetPredicate
from repro.sdl.query import SDLQuery
from repro.backends.base import ExecutionBackend

__all__ = [
    "SplitSpec",
    "DEFAULT_LOW_CARDINALITY_THRESHOLD",
    "median_split",
    "nominal_value_order",
    "nominal_split_point",
]

#: Below this number of distinct values a nominal column is ordered by
#: frequency of occurrence; at or above it, alphabetically (Definition 5:
#: "sort the values by order of occurrence for columns with low
#: cardinality, and alphabetically otherwise").  A dozen matches the
#: paper's recurring "a pie chart with more than a dozen slices is hard to
#: read" bound.
DEFAULT_LOW_CARDINALITY_THRESHOLD = 12


@dataclass(frozen=True)
class SplitSpec:
    """The outcome of median-point selection on one attribute.

    Attributes
    ----------
    attribute:
        The attribute being split.
    kind:
        ``"range"`` for numeric/date splits, ``"set"`` for nominal splits.
    lower, upper:
        The two complementary predicates.
    split_point:
        The numeric median (range splits) or the last value of the lower
        group (set splits); informational.
    """

    attribute: str
    kind: str
    lower: Predicate
    upper: Predicate

    split_point: Any = None

    @property
    def predicates(self) -> Tuple[Predicate, Predicate]:
        return (self.lower, self.upper)


def nominal_value_order(
    frequencies: dict,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
) -> List[Any]:
    """Order nominal values per Definition 5.

    Low-cardinality columns are ordered by decreasing frequency (ties broken
    alphabetically for determinism); high-cardinality columns alphabetically.
    """
    values = list(frequencies)
    if len(values) < low_cardinality_threshold:
        return sorted(values, key=lambda v: (-frequencies[v], str(v)))
    return sorted(values, key=str)


def nominal_split_point(ordered_values: List[Any], frequencies: dict) -> int:
    """Index ``k`` such that the first ``k`` ordered values accumulate closest to 50%.

    Returns a split index in ``[1, len(values) - 1]`` so both groups are
    non-empty.
    """
    total = sum(frequencies[value] for value in ordered_values)
    if total == 0:
        raise CannotCutError(
            "nominal", "no occurrences to split"
        )  # pragma: no cover - guarded by callers
    best_index = 1
    best_distance = None
    cumulative = 0
    for position, value in enumerate(ordered_values[:-1], start=1):
        cumulative += frequencies[value]
        distance = abs(cumulative / total - 0.5)
        if best_distance is None or distance < best_distance:
            best_distance = distance
            best_index = position
    return best_index


def median_split(
    engine: ExecutionBackend,
    query: SDLQuery,
    attribute: str,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
) -> SplitSpec:
    """Compute the two complementary predicates that cut ``query`` on ``attribute``.

    Raises
    ------
    CannotCutError
        When the attribute has fewer than two distinct values over the
        query's result set, or the result set is empty.
    """
    numeric = engine.is_numeric(attribute)
    count = engine.count(query)
    if count == 0:
        raise CannotCutError(attribute, "the query selects no rows")

    if numeric:
        return _numeric_split(engine, query, attribute)
    return _nominal_split(engine, query, attribute, low_cardinality_threshold)


def _numeric_split(engine: ExecutionBackend, query: SDLQuery, attribute: str) -> SplitSpec:
    minimum, maximum = engine.minmax(attribute, query)
    if minimum == maximum:
        raise CannotCutError(attribute, "a single distinct value remains")
    median = engine.median(attribute, query)
    split_point = median
    if split_point <= minimum:
        # More than half of the mass sits on the minimum value: the paper's
        # [min, med[ piece would be empty.  Move the split point up to the
        # smallest distinct value above the minimum so both pieces are
        # non-empty.
        split_point = _smallest_above(engine, query, attribute, minimum)
        if split_point is None:
            raise CannotCutError(attribute, "no value above the minimum")
    lower = RangePredicate(
        attribute, low=minimum, high=split_point, include_low=True, include_high=False
    )
    upper = RangePredicate(
        attribute, low=split_point, high=maximum, include_low=True, include_high=True
    )
    return SplitSpec(
        attribute=attribute,
        kind="range",
        lower=lower,
        upper=upper,
        split_point=split_point,
    )


def _smallest_above(
    engine: ExecutionBackend, query: SDLQuery, attribute: str, minimum: Any
) -> Optional[Any]:
    frequencies = engine.value_frequencies(attribute, query)
    candidates = [value for value in frequencies if value > minimum]
    if not candidates:
        return None
    return min(candidates)


def _nominal_split(
    engine: ExecutionBackend,
    query: SDLQuery,
    attribute: str,
    low_cardinality_threshold: int,
) -> SplitSpec:
    frequencies = engine.value_frequencies(attribute, query)
    if len(frequencies) < 2:
        raise CannotCutError(attribute, "fewer than two distinct values remain")
    ordered = nominal_value_order(frequencies, low_cardinality_threshold)
    split_index = nominal_split_point(ordered, frequencies)
    lower_values = frozenset(ordered[:split_index])
    upper_values = frozenset(ordered[split_index:])
    lower = SetPredicate(attribute, lower_values)
    upper = SetPredicate(attribute, upper_values)
    return SplitSpec(
        attribute=attribute,
        kind="set",
        lower=lower,
        upper=upper,
        split_point=ordered[split_index - 1],
    )
