"""The CUT primitive (paper, Definitions 5 and 6).

``CUT_attr(Q)`` splits a query in two pieces along one attribute, at the
attribute's median point over the query's result set.  Extended to a
segmentation, CUT splits every constituent query, (at most) doubling the
number of partitions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CannotCutError, PredicateError
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segment, Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.median import DEFAULT_LOW_CARDINALITY_THRESHOLD, median_split

__all__ = ["cut_query", "cut_segmentation", "can_cut"]


def can_cut(engine: ExecutionBackend, query: SDLQuery, attribute: str) -> bool:
    """Whether ``CUT_attribute(query)`` is defined (>= 2 distinct values)."""
    try:
        median_split(engine, query, attribute)
    except CannotCutError:
        return False
    return True


def cut_query(
    engine: ExecutionBackend,
    query: SDLQuery,
    attribute: str,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
    drop_empty: bool = True,
) -> Segmentation:
    """``CUT_attribute(query)``: a two-piece segmentation of the query.

    Each piece is the original query conjoined with one of the two
    complementary predicates computed by
    :func:`~repro.core.median.median_split`.

    Parameters
    ----------
    drop_empty:
        Remove pieces that select no rows (can happen on pathological
        splits); the remaining pieces still partition the query's extent.

    Raises
    ------
    CannotCutError
        When the attribute cannot be split over the query's result set.
    """
    spec = median_split(
        engine, query, attribute, low_cardinality_threshold=low_cardinality_threshold
    )
    context_count = engine.count(query)
    # Pieces refine the query being cut — tell the engine so mask reuse
    # can AND the query's cached mask with just the piece predicate
    # (engines without the feature have no hint_parent).
    hint = getattr(engine, "hint_parent", None)
    segments: List[Segment] = []
    for predicate in spec.predicates:
        try:
            piece = query.refine(predicate)
        except PredicateError as error:
            # E.g. an exclusion constraint on a numeric attribute whose
            # excluded values fall inside the cut range: the conjunction
            # has no single-predicate form, so the attribute cannot be cut.
            raise CannotCutError(attribute, str(error)) from error
        if piece is None:
            continue
        if hint is not None:
            hint(piece, query)
        count = engine.count(piece)
        if drop_empty and count == 0:
            continue
        segments.append(Segment(piece, count))
    if not segments:
        raise CannotCutError(attribute, "both pieces of the cut are empty")
    if len(segments) < 2:
        raise CannotCutError(attribute, "the cut produced a single non-empty piece")
    return Segmentation(
        context=query,
        segments=segments,
        context_count=context_count,
        cut_attributes=(attribute,),
    )


def cut_segmentation(
    engine: ExecutionBackend,
    segmentation: Segmentation,
    attribute: str,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
    drop_empty: bool = True,
    strict: bool = False,
) -> Segmentation:
    """``CUT_attribute(S)``: cut every query of a segmentation (Definition 6).

    Pieces that cannot be cut further (a single distinct value remains in
    their extent) are kept whole unless ``strict`` is true, so the result
    is always a valid partition of the same context.

    Parameters
    ----------
    strict:
        When true, a piece that cannot be cut raises
        :class:`~repro.errors.CannotCutError` instead of being kept whole.
    """
    new_segments: List[Segment] = []
    any_cut = False
    for segment in segmentation.segments:
        try:
            piece_segmentation = cut_query(
                engine,
                segment.query,
                attribute,
                low_cardinality_threshold=low_cardinality_threshold,
                drop_empty=drop_empty,
            )
        except CannotCutError:
            if strict:
                raise
            new_segments.append(segment)
            continue
        any_cut = True
        new_segments.extend(piece_segmentation.segments)
    if not any_cut and strict:
        raise CannotCutError(attribute, "no piece of the segmentation could be cut")
    cut_attributes = segmentation.cut_attributes
    if any_cut:
        cut_attributes = tuple(dict.fromkeys((*cut_attributes, attribute)))
    return Segmentation(
        context=segmentation.context,
        segments=new_segments,
        context_count=segmentation.context_count,
        cut_attributes=cut_attributes,
    )
