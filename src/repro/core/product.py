"""The SDL product (paper, Definition 8).

``S1 × S2`` intersects each piece of the first segmentation with each
piece of the second, creating up to ``K × L`` queries.  Its notable
feature (Proposition 1) is that the entropy of the product reveals the
dependency between the two segmentations' variables: for independent
variables ``E(S1 × S2) = E(S1) + E(S2)``.
"""

from __future__ import annotations

from typing import List

from repro.errors import CompositionError
from repro.sdl.segmentation import Segment, Segmentation
from repro.backends.base import ExecutionBackend

__all__ = ["product", "product_counts"]


def product(
    engine: ExecutionBackend,
    first: Segmentation,
    second: Segmentation,
    drop_empty: bool = True,
) -> Segmentation:
    """``first × second``: the pairwise-intersection segmentation.

    Parameters
    ----------
    drop_empty:
        Remove empty cells.  Empty cells contribute nothing to entropy
        (``0 · log 0 = 0``), so dropping them does not change any metric,
        but keeps the result legible.

    Raises
    ------
    CompositionError
        When the operands partition different contexts.
    """
    if first.context != second.context:
        raise CompositionError(
            "the SDL product requires both segmentations to partition the same context"
        )
    # Product cells refine the pieces they are merged from; the hint lets
    # mask reuse AND a piece's cached mask with just the other side's
    # predicate (engines without the feature have no hint_parent).
    hint = getattr(engine, "hint_parent", None)
    segments: List[Segment] = []
    for left in first.segments:
        for right in second.segments:
            merged = left.query.merge(right.query)
            if merged is None:
                continue
            if hint is not None:
                hint(merged, left.query)
            count = engine.count(merged)
            if drop_empty and count == 0:
                continue
            segments.append(Segment(merged, count))
    if not segments:
        raise CompositionError("the SDL product is empty")
    cut_attributes = tuple(
        dict.fromkeys((*first.cut_attributes, *second.cut_attributes))
    )
    return Segmentation(
        context=first.context,
        segments=segments,
        context_count=first.context_count,
        cut_attributes=cut_attributes,
    )


def product_counts(
    engine: ExecutionBackend, first: Segmentation, second: Segmentation
) -> List[List[int]]:
    """The full ``K × L`` contingency table of the product (including zeros).

    Row ``i`` corresponds to the ``i``-th piece of ``first``; column ``j``
    to the ``j``-th piece of ``second``.  Used by the dependence tests and
    by Proposition 1 checks, which need the complete table rather than the
    non-empty cells only.
    """
    if first.context != second.context:
        raise CompositionError(
            "the SDL product requires both segmentations to partition the same context"
        )
    table: List[List[int]] = []
    for left in first.segments:
        row: List[int] = []
        for right in second.segments:
            merged = left.query.merge(right.query)
            row.append(0 if merged is None else engine.count(merged))
        table.append(row)
    return table
