"""The COMPOSE primitive (paper, Definition 7).

``COMPOSE(S1, S2)`` cuts the queries of one segmentation on the attributes
of the other: if every query of ``S2`` is based on attributes
``att1 … attN`` then

    COMPOSE(S1, S2) = CUT_att1( CUT_att2( … CUT_attN(S1) … ) )

The cuts are median cuts *within each piece* of ``S1``, so composition
adapts the split points to the sub-populations — this is what makes the
result "semantically coherent" when the attributes are dependent.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CompositionError
from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.cut import cut_segmentation
from repro.core.median import DEFAULT_LOW_CARDINALITY_THRESHOLD

__all__ = ["compose", "compose_attributes"]


def compose_attributes(segmentation: Segmentation) -> Sequence[str]:
    """The attribute set a segmentation is based on (its cut attributes).

    COMPOSE requires all queries of its second operand to be based on the
    same attributes; segmentations produced by CUT and COMPOSE record them
    in :attr:`~repro.sdl.segmentation.Segmentation.cut_attributes`.
    """
    if not segmentation.cut_attributes:
        raise CompositionError(
            "the second operand of COMPOSE carries no cut attributes; "
            "only segmentations produced by CUT/COMPOSE can be composed"
        )
    return segmentation.cut_attributes


def compose(
    engine: ExecutionBackend,
    first: Segmentation,
    second: Segmentation,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
    drop_empty: bool = True,
) -> Segmentation:
    """``COMPOSE(first, second)``: cut ``first`` on the attributes of ``second``.

    Both segmentations must partition the same context.

    Raises
    ------
    CompositionError
        When the operands have different contexts or ``second`` carries no
        cut attributes.
    """
    if first.context != second.context:
        raise CompositionError(
            "COMPOSE requires both segmentations to partition the same context"
        )
    attributes = compose_attributes(second)
    result = first
    # Definition 7 applies CUT_attN first and CUT_att1 last; since each CUT
    # is applied to every piece, the final partition is the same for any
    # order, but we follow the listing for fidelity.
    for attribute in reversed(list(attributes)):
        result = cut_segmentation(
            engine,
            result,
            attribute,
            low_cardinality_threshold=low_cardinality_threshold,
            drop_empty=drop_empty,
        )
    combined = tuple(dict.fromkeys((*first.cut_attributes, *attributes)))
    return result.with_cut_attributes(combined)
