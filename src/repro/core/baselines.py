"""Baseline segmentation strategies for the comparative study (E9).

The paper positions Charles against faceted search, database
summarisation, query recommendation and subspace clustering (Section 6).
To quantify that positioning, this module implements comparable
segmentation generators:

* :func:`facet_segmentation` / :func:`all_facet_segmentations` — the
  faceted-search style answer: one segmentation per attribute, one segment
  per value (or per equal-width bin for numeric attributes);
* :func:`random_segmentation` — random attribute choices and random split
  points, the sanity-check baseline;
* :func:`full_product_segmentation` — the exhaustive product of every
  single-attribute binary cut (what a brute-force exploration of the query
  space would show first);
* :func:`clique_like_segmentation` — a CLIQUE-inspired dense-grid
  summary: equal-width bins per attribute, keep the densest cells.  Unlike
  Charles' answers it is *not* exhaustive, which is exactly the point the
  paper makes about subspace clustering (dense subspaces vs. general
  summaries).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CannotCutError, PredicateError, SegmentationError
from repro.sdl.predicates import RangePredicate, SetPredicate
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segment, Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.cut import cut_query, cut_segmentation
from repro.core.median import DEFAULT_LOW_CARDINALITY_THRESHOLD, nominal_value_order
from repro.core.product import product

__all__ = [
    "facet_segmentation",
    "all_facet_segmentations",
    "random_segmentation",
    "full_product_segmentation",
    "clique_like_segmentation",
]


def facet_segmentation(
    engine: ExecutionBackend,
    context: SDLQuery,
    attribute: str,
    max_groups: int = 12,
    drop_empty: bool = True,
) -> Segmentation:
    """A faceted-search style segmentation: one segment per value (or bin).

    Nominal attributes get one segment per distinct value, most frequent
    first, with the tail merged into a single "other values" segment once
    ``max_groups`` is reached.  Numeric attributes are binned into
    ``max_groups`` equal-width intervals.
    """
    context_count = engine.count(context)
    if context_count == 0:
        raise CannotCutError(attribute, "the context selects no rows")
    if engine.is_numeric(attribute):
        predicates = _equal_width_predicates(engine, context, attribute, max_groups)
    else:
        predicates = _per_value_predicates(engine, context, attribute, max_groups)
    segments: List[Segment] = []
    for predicate in predicates:
        try:
            piece = context.refine(predicate)
        except PredicateError as error:
            raise CannotCutError(attribute, str(error)) from error
        if piece is None:
            continue
        count = engine.count(piece)
        if drop_empty and count == 0:
            continue
        segments.append(Segment(piece, count))
    if not segments:
        raise CannotCutError(attribute, "the facet produced no non-empty group")
    return Segmentation(
        context=context,
        segments=segments,
        context_count=context_count,
        cut_attributes=(attribute,),
    )


def _per_value_predicates(
    engine: ExecutionBackend, context: SDLQuery, attribute: str, max_groups: int
) -> List[SetPredicate]:
    frequencies = engine.value_frequencies(attribute, context)
    if len(frequencies) < 2:
        raise CannotCutError(attribute, "fewer than two distinct values remain")
    ordered = nominal_value_order(frequencies, DEFAULT_LOW_CARDINALITY_THRESHOLD)
    ordered = sorted(ordered, key=lambda v: (-frequencies[v], str(v)))
    if len(ordered) <= max_groups:
        return [SetPredicate(attribute, frozenset({value})) for value in ordered]
    head = ordered[: max_groups - 1]
    tail = ordered[max_groups - 1 :]
    predicates = [SetPredicate(attribute, frozenset({value})) for value in head]
    predicates.append(SetPredicate(attribute, frozenset(tail)))
    return predicates


def _equal_width_predicates(
    engine: ExecutionBackend, context: SDLQuery, attribute: str, bins: int
) -> List[RangePredicate]:
    minimum, maximum = engine.minmax(attribute, context)
    if minimum == maximum:
        raise CannotCutError(attribute, "a single distinct value remains")
    low = float(minimum) if not hasattr(minimum, "toordinal") else float(minimum.toordinal())
    high = float(maximum) if not hasattr(maximum, "toordinal") else float(maximum.toordinal())
    edges = np.linspace(low, high, bins + 1)
    predicates: List[RangePredicate] = []
    for index in range(bins):
        is_last = index == bins - 1
        predicates.append(
            RangePredicate(
                attribute,
                low=edges[index],
                high=edges[index + 1],
                include_low=True,
                include_high=is_last,
            )
        )
    return predicates


def all_facet_segmentations(
    engine: ExecutionBackend,
    context: SDLQuery,
    attributes: Optional[Sequence[str]] = None,
    max_groups: int = 12,
) -> List[Segmentation]:
    """One facet segmentation per context attribute (skipping unusable ones)."""
    explored = list(attributes) if attributes is not None else list(context.attributes)
    results: List[Segmentation] = []
    for attribute in explored:
        try:
            results.append(
                facet_segmentation(engine, context, attribute, max_groups=max_groups)
            )
        except CannotCutError:
            continue
    return results


def random_segmentation(
    engine: ExecutionBackend,
    context: SDLQuery,
    depth: int = 4,
    seed: Optional[int] = None,
    attributes: Optional[Sequence[str]] = None,
) -> Segmentation:
    """Random baseline: successive median cuts on randomly chosen attributes.

    The segmentation stops growing once it holds at least ``depth`` pieces
    or no attribute can be cut further.
    """
    rng = np.random.default_rng(seed)
    explored = list(attributes) if attributes is not None else list(context.attributes)
    if not explored:
        raise SegmentationError("the context mentions no attribute to explore")
    current: Optional[Segmentation] = None
    attempts = 0
    while attempts < 8 * max(1, len(explored)):
        attempts += 1
        attribute = explored[int(rng.integers(0, len(explored)))]
        try:
            if current is None:
                current = cut_query(engine, context, attribute)
            else:
                current = cut_segmentation(engine, current, attribute)
        except CannotCutError:
            continue
        if current.depth >= depth:
            break
    if current is None:
        raise SegmentationError("no attribute of the context could be cut")
    return current


def full_product_segmentation(
    engine: ExecutionBackend,
    context: SDLQuery,
    attributes: Optional[Sequence[str]] = None,
    max_depth: Optional[int] = None,
) -> Segmentation:
    """The exhaustive product of every single-attribute binary cut.

    Grows as ``2^N`` with the number of cuttable attributes — the search
    space explosion the paper's heuristic avoids.  ``max_depth`` aborts the
    construction once the intermediate product exceeds that many pieces.
    """
    explored = list(attributes) if attributes is not None else list(context.attributes)
    cuts: List[Segmentation] = []
    for attribute in explored:
        try:
            cuts.append(cut_query(engine, context, attribute))
        except CannotCutError:
            continue
    if not cuts:
        raise SegmentationError("no attribute of the context could be cut")
    result = cuts[0]
    for other in cuts[1:]:
        result = product(engine, result, other)
        if max_depth is not None and result.depth > max_depth:
            break
    return result


def clique_like_segmentation(
    engine: ExecutionBackend,
    context: SDLQuery,
    attributes: Optional[Sequence[str]] = None,
    bins: int = 4,
    density_threshold: float = 0.05,
    max_cells: int = 12,
) -> Segmentation:
    """A CLIQUE-inspired dense-cell summary (non-exhaustive by design).

    Every attribute is binned (equal-width for numeric, per-value for
    nominal), the grid product is formed, and only cells holding at least
    ``density_threshold`` of the context are kept, densest first, up to
    ``max_cells``.
    """
    explored = list(attributes) if attributes is not None else list(context.attributes)
    context_count = engine.count(context)
    if context_count == 0:
        raise SegmentationError("the context selects no rows")
    grids: List[Segmentation] = []
    for attribute in explored:
        try:
            grids.append(
                facet_segmentation(engine, context, attribute, max_groups=bins)
            )
        except CannotCutError:
            continue
    if not grids:
        raise SegmentationError("no attribute of the context could be binned")
    grid = grids[0]
    for other in grids[1:]:
        grid = product(engine, grid, other)
    dense = [
        segment
        for segment in grid.segments
        if segment.count / context_count >= density_threshold
    ]
    dense.sort(key=lambda segment: segment.count, reverse=True)
    dense = dense[:max_cells]
    if not dense:
        raise SegmentationError(
            f"no grid cell reaches the density threshold {density_threshold}"
        )
    return Segmentation(
        context=context,
        segments=dense,
        context_count=context_count,
        cut_attributes=grid.cut_attributes,
    )
