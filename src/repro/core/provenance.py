"""Exploration provenance: export a session (or one advice) as a record.

A production query advisor needs to hand its findings to the next tool in
the chain: a notebook, a dashboard, or the SQL database itself.  This
module serialises advice and exploration sessions into plain dictionaries
(JSON-ready) that carry, for every step, the context, the ranked answers,
the chosen segment and its SQL form — so an exploration performed with
Charles can be replayed, audited, or turned into a report.

Nothing here is specific to the paper; it packages the Figure 1 loop's
outcome the way a downstream user would need it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.advisor import Advice, RankedAnswer
from repro.core.session import ExplorationSession
from repro.sdl.formatter import format_segment_label
from repro.sdl.segmentation import Segmentation
from repro.storage.sql import query_to_sql, query_to_where

__all__ = [
    "segmentation_record",
    "answer_record",
    "advice_record",
    "session_record",
    "session_to_json",
]


def segmentation_record(
    segmentation: Segmentation, table_name: str = "table"
) -> Dict[str, Any]:
    """A JSON-ready description of one segmentation."""
    segments: List[Dict[str, Any]] = []
    for segment, cover in zip(segmentation.segments, segmentation.covers):
        segments.append(
            {
                "sdl": segment.query.to_sdl(),
                "label": format_segment_label(segment.query, segmentation.context),
                "where": query_to_where(segment.query),
                "sql": query_to_sql(segment.query, table_name),
                "rows": segment.count,
                "cover": round(cover, 6),
            }
        )
    return {
        "context": segmentation.context.to_sdl(),
        "context_rows": segmentation.context_count,
        "cut_attributes": list(segmentation.cut_attributes),
        "segments": segments,
    }


def answer_record(answer: RankedAnswer, table_name: str = "table") -> Dict[str, Any]:
    """A JSON-ready description of one ranked answer."""
    return {
        "rank": answer.rank,
        "score": round(answer.score, 6),
        "attributes": list(answer.attributes),
        "metrics": {
            key: round(value, 6) for key, value in answer.scores.as_dict().items()
        },
        "segmentation": segmentation_record(answer.segmentation, table_name),
    }


def advice_record(advice: Advice, table_name: str = "table") -> Dict[str, Any]:
    """A JSON-ready description of one full advice (ranked answer list)."""
    return {
        "context": advice.context.to_sdl(),
        "ranker": advice.ranker_name,
        "database_operations": advice.engine_operations.get("total_database_operations"),
        "answers": [answer_record(answer, table_name) for answer in advice.answers],
    }


def session_record(
    session: ExplorationSession, table_name: Optional[str] = None
) -> Dict[str, Any]:
    """A JSON-ready description of an exploration session.

    Records every level of the drill-down: its context (SDL, WHERE clause
    and row count), the advice produced there (if any was requested), and
    which answer/segment the user chose to descend into.
    """
    table = table_name or session.advisor.engine.name
    steps: List[Dict[str, Any]] = []
    for level, step in enumerate(session.history()):
        record: Dict[str, Any] = {
            "level": level,
            "label": step.label,
            "context_sdl": step.context.to_sdl(),
            "context_where": query_to_where(step.context),
            "rows": session.advisor.count(step.context),
            "chosen_answer": step.chosen_answer,
            "chosen_segment": step.chosen_segment,
        }
        if step.advice is not None:
            record["advice"] = advice_record(step.advice, table)
        steps.append(record)
    return {
        "table": table,
        "depth": session.depth,
        "breadcrumbs": session.breadcrumbs(),
        "steps": steps,
    }


def session_to_json(
    session: ExplorationSession, table_name: Optional[str] = None, indent: int = 2
) -> str:
    """The session record serialised as a JSON string."""
    return json.dumps(session_record(session, table_name), indent=indent, default=str)
