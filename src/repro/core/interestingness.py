"""Interestingness and surprise scores (paper, Section 5.2).

"The overall evaluation and ranking process can be greatly improved with
other types of knowledge.  We do not use any notion of 'interestingness'
or 'surprise'."  This module supplies that missing notion, in the spirit
of the discovery-driven exploration work the paper cites (Sarawagi et al.,
Dash et al.): a segment is *surprising* when the distribution of some
attribute inside it deviates from the distribution over the whole context.

Provided pieces:

* :func:`segment_surprise` — Jensen-Shannon-style divergence between a
  segment's distribution of an attribute and the context's;
* :func:`segmentation_interestingness` — cover-weighted surprise of a
  segmentation over a set of probe attributes (attributes *not* used for
  cutting reveal the most);
* :class:`SurpriseRanker` — a drop-in :class:`~repro.core.ranking.Ranker`
  that blends the paper's entropy ordering with the surprise score, so the
  advisor can optionally prefer answers that reveal unexpected structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.metrics import SegmentationScores
from repro.core.ranking import Ranker

__all__ = [
    "divergence_from_counts",
    "segment_surprise",
    "segmentation_interestingness",
    "SurpriseRanker",
]


def _normalise(counts: Dict, keys: Sequence) -> List[float]:
    total = float(sum(counts.get(key, 0) for key in keys))
    if total <= 0:
        return [0.0 for _ in keys]
    return [counts.get(key, 0) / total for key in keys]


def divergence_from_counts(segment_counts: Dict, context_counts: Dict) -> float:
    """Jensen-Shannon divergence (natural log) between two value histograms.

    Symmetric, bounded by ``log 2``, and zero exactly when the segment's
    distribution matches the context's.  Values present in only one of the
    histograms are handled naturally (probability zero on the other side).
    """
    keys = sorted(set(segment_counts) | set(context_counts), key=str)
    if not keys:
        return 0.0
    p = _normalise(segment_counts, keys)
    q = _normalise(context_counts, keys)
    if sum(p) == 0.0 or sum(q) == 0.0:
        return 0.0
    divergence = 0.0
    for p_i, q_i in zip(p, q):
        m_i = 0.5 * (p_i + q_i)
        if p_i > 0:
            divergence += 0.5 * p_i * math.log(p_i / m_i)
        if q_i > 0:
            divergence += 0.5 * q_i * math.log(q_i / m_i)
    return max(0.0, divergence)


def segment_surprise(
    engine: ExecutionBackend,
    segment_query: SDLQuery,
    context: SDLQuery,
    attribute: str,
) -> float:
    """How much ``attribute``'s distribution inside the segment deviates from the context."""
    segment_counts = engine.value_frequencies(attribute, segment_query)
    context_counts = engine.value_frequencies(attribute, context)
    return divergence_from_counts(segment_counts, context_counts)


def segmentation_interestingness(
    engine: ExecutionBackend,
    segmentation: Segmentation,
    probe_attributes: Optional[Sequence[str]] = None,
) -> float:
    """Cover-weighted mean surprise of a segmentation.

    Parameters
    ----------
    probe_attributes:
        Attributes whose within-segment distributions are compared against
        the context.  Defaults to the context attributes *not* used for
        cutting — a segmentation is interesting when it implies something
        about columns it never mentions.  When every context attribute is
        used for cutting, the cut attributes themselves are probed.
    """
    if probe_attributes is None:
        cut = set(segmentation.cut_attributes)
        probe_attributes = [
            attribute for attribute in segmentation.context.attributes if attribute not in cut
        ]
        if not probe_attributes:
            probe_attributes = list(segmentation.cut_attributes)
    if not probe_attributes:
        return 0.0
    total_weight = 0.0
    accumulated = 0.0
    for segment, weight in zip(segmentation.segments, segmentation.covers):
        if segment.count == 0 or weight == 0.0:
            continue
        for attribute in probe_attributes:
            surprise = segment_surprise(
                engine, segment.query, segmentation.context, attribute
            )
            accumulated += weight * surprise
            total_weight += weight
    if total_weight == 0.0:
        return 0.0
    return accumulated / total_weight


@dataclass
class SurpriseRanker(Ranker):
    """Blend the paper's entropy ranking with an interestingness bonus.

    The score is ``entropy + surprise_weight * interestingness``; with
    ``surprise_weight = 0`` it degenerates to the paper's ordering.  Because
    interestingness needs the engine (it issues frequency queries), the
    ranker is bound to one engine and caches scores per segmentation
    identity within a ranking pass.
    """

    engine: ExecutionBackend = None  # type: ignore[assignment]
    surprise_weight: float = 1.0
    probe_attributes: Optional[Sequence[str]] = None
    _cache: Dict[int, float] = field(default_factory=dict, repr=False)

    name = "surprise"

    def __post_init__(self) -> None:
        if self.engine is None:
            raise ValueError("SurpriseRanker requires an execution backend")
        if self.surprise_weight < 0:
            raise ValueError("surprise_weight must be non-negative")

    def interestingness(self, segmentation: Segmentation) -> float:
        key = id(segmentation)
        if key not in self._cache:
            self._cache[key] = segmentation_interestingness(
                self.engine, segmentation, self.probe_attributes
            )
        return self._cache[key]

    def score(self, scores: SegmentationScores) -> float:
        # Without the segmentation the surprise bonus is unknown; fall back
        # to the entropy part so the base-class API stays usable.
        return scores.entropy

    def score_for(self, segmentation: Segmentation, scores: SegmentationScores) -> float:
        return scores.entropy + self.surprise_weight * self.interestingness(segmentation)

    def rank(self, segmentations: Sequence[Segmentation]):
        from repro.core.metrics import score_segmentation

        scored = []
        for segmentation in segmentations:
            scores = score_segmentation(segmentation)
            scored.append((self.score_for(segmentation, scores), segmentation, scores))
        scored.sort(key=lambda item: item[0], reverse=True)
        return [(segmentation, scores) for _, segmentation, scores in scored]
