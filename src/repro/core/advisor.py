"""The Charles facade: answer a query with ranked segmentations.

This is the public entry point a downstream user interacts with.  It ties
together the storage engine, the HB-cuts generator, the ranking policies
and the formatting helpers, mirroring the interaction loop of Figure 1:
the user provides a context (an SDL statement, a SQL WHERE clause, a list
of columns, or nothing at all for the whole table), Charles generates
several segmentations, ranks them, and returns them as an
:class:`Advice` object ready for display or drill-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.backends.base import ExecutionBackend
from repro.backends.pool import parallel_requested
from repro.backends.registry import open_backend
from repro.errors import AdvisorError, SDLSyntaxError
from repro.sdl.formatter import format_segment_label, format_segmentation
from repro.sdl.parser import parse_query
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation
from repro.storage.sampling import SampledEngine
from repro.storage.sql import parse_where
from repro.storage.statistics import TableProfile, profile_backend, profile_table
from repro.storage.table import Table
from repro.core.hbcuts import HBCuts, HBCutsConfig, HBCutsResult, HBCutsTrace
from repro.core.metrics import SegmentationScores
from repro.core.ranking import EntropyRanker, Ranker

__all__ = ["ContextLike", "RankedAnswer", "Advice", "Charles"]

#: The ways a caller can express an exploration context.
ContextLike = Union[None, str, SDLQuery, Sequence[str]]


@dataclass(frozen=True)
class RankedAnswer:
    """One entry of Charles' ranked answer list.

    Attributes
    ----------
    rank:
        1-based position in the answer list.
    segmentation:
        The segmentation itself.
    scores:
        Its quality metrics (entropy, breadth, simplicity, balance, ...).
    score:
        The scalar ranking score assigned by the active ranker.
    """

    rank: int
    segmentation: Segmentation
    scores: SegmentationScores
    score: float

    @property
    def attributes(self) -> tuple:
        """The attributes the segmentation cuts on (the pie chart's title)."""
        return self.segmentation.cut_attributes or self.segmentation.attributes

    def labels(self) -> List[str]:
        """Short per-segment labels as shown on Figure 1's pie slices."""
        return [
            format_segment_label(segment.query, self.segmentation.context)
            for segment in self.segmentation.segments
        ]

    def describe(self) -> str:
        """Multi-line description of this answer."""
        title = ", ".join(self.attributes) or "(no attribute)"
        header = (
            f"#{self.rank} [{title}]  entropy={self.scores.entropy:.3f}  "
            f"breadth={self.scores.breadth}  simplicity={self.scores.simplicity}  "
            f"depth={self.scores.depth}"
        )
        return header + "\n" + format_segmentation(self.segmentation)


@dataclass
class Advice:
    """Charles' full answer to one context query.

    ``approximate`` advice was ranked from merged sketch estimates
    (:class:`~repro.backends.approx.ApproxEngine`); ``error_bound`` is
    then the worst marginal error fraction any estimate reported during
    the run.  Exact advice carries the defaults (``False`` / ``None``),
    so pre-existing payloads decode unchanged.

    ``degraded`` advice was served by a cluster node whose table copy is
    known to lag the newest data version (a failover target that missed
    an ingest while dead): the answers are internally consistent but may
    predate the latest mutations.  Local advisors never set it.
    """

    context: SDLQuery
    answers: List[RankedAnswer]
    trace: HBCutsTrace
    ranker_name: str = "entropy"
    engine_operations: Dict[str, int] = field(default_factory=dict)
    approximate: bool = False
    error_bound: Optional[float] = None
    degraded: bool = False

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[RankedAnswer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> RankedAnswer:
        return self.answers[index]

    def best(self) -> RankedAnswer:
        """The top-ranked answer."""
        if not self.answers:
            raise AdvisorError("Charles produced no answer for this context")
        return self.answers[0]

    def segmentations(self) -> List[Segmentation]:
        return [answer.segmentation for answer in self.answers]

    def describe(self, limit: Optional[int] = 5) -> str:
        """Multi-line report of the top answers (all of them when ``limit`` is None)."""
        shown = self.answers if limit is None else self.answers[:limit]
        lines = [
            f"Charles' advice for {self.context.to_sdl()} — "
            f"{len(self.answers)} segmentation(s), ranked by {self.ranker_name}"
        ]
        for answer in shown:
            lines.append("")
            lines.append(answer.describe())
        return "\n".join(lines)


class Charles:
    """The query advisor.

    Parameters
    ----------
    table:
        The relation to explore — a :class:`~repro.storage.table.Table`
        (executed through the backend selected by ``backend``) or an
        already-built :class:`~repro.backends.base.ExecutionBackend`
        (useful to share caches, or to plug a
        :class:`~repro.storage.sampling.SampledEngine` or
        :class:`~repro.backends.sqlite.SQLiteBackend` directly).
    config:
        HB-cuts parameters; defaults follow the paper (``max_indep=0.99``,
        ``max_depth=12``).
    ranker:
        Ranking policy; defaults to the paper's entropy ordering.
    sample_fraction:
        When set (0 < f < 1), statistics are computed on a uniform sample
        of the data (Section 5.2's sampling extension) regardless of the
        backend.
    seed:
        Random seed of the sampling engine.
    backend:
        Backend spec resolved through
        :func:`repro.backends.open_backend` when ``table`` is a
        :class:`Table` — e.g. ``"memory"`` (default),
        ``"memory?sample=0.1"``, ``"memory?partitions=4&workers=4"`` or
        ``"sqlite"``.
    partitions:
        Shard the table into this many row-range partitions and evaluate
        them through the worker pool (only meaningful for backends built
        from a ``Table``; spec parameters take precedence).  Results are
        identical for every partition count.
    workers:
        Size of the executor pool.  ``workers > 1`` additionally runs the
        HB-cuts INDEP evaluations of each iteration concurrently —
        bit-for-bit the same answers, on more cores.
    pool:
        Share an existing :class:`~repro.backends.pool.ExecutorPool`
        instead of creating one (the service layer passes its own).  When
        omitted and the opened backend carries a pool (e.g. a
        ``memory?workers=4`` spec), that pool also drives the INDEP
        evaluations.

    Examples
    --------
    >>> from repro.workloads import generate_voc
    >>> advisor = Charles(generate_voc(rows=2000, seed=7))
    >>> advice = advisor.advise(["type_of_boat", "departure_harbour", "tonnage"])
    >>> advice.best().attributes  # doctest: +SKIP
    ('departure_harbour', 'tonnage')
    """

    def __init__(
        self,
        table: Union[Table, ExecutionBackend],
        config: Optional[HBCutsConfig] = None,
        ranker: Optional[Ranker] = None,
        sample_fraction: Optional[float] = None,
        seed: Optional[int] = None,
        cache_size: int = 256,
        use_index: Union[bool, str] = False,
        backend: Optional[str] = None,
        partitions: Optional[int] = None,
        workers: Optional[int] = None,
        pool: Optional[Any] = None,
    ):
        wants_parallel = parallel_requested(partitions, workers, pool)
        if wants_parallel and pool is None:
            from repro.backends.pool import ExecutorPool

            pool = ExecutorPool(
                workers if workers is not None else partitions, name="charles"
            )
        if isinstance(table, Table):
            context: Dict[str, Any] = dict(
                cache_size=cache_size, use_index=use_index
            )
            if wants_parallel:
                context.update(partitions=partitions, workers=workers, pool=pool)
            self.engine = open_backend(backend or "memory", table, **context)
        else:
            if backend is not None:
                raise AdvisorError(
                    "pass either a backend spec or a backend instance, not both"
                )
            self.engine = open_backend(table)
        if sample_fraction is not None and sample_fraction < 1.0:
            if isinstance(self.engine, SampledEngine):
                raise AdvisorError(
                    "the backend already samples; pass either sample_fraction "
                    "or a sampled backend spec (e.g. 'memory?sample=0.1'), "
                    "not both"
                )
            # Sample whatever backend was opened (SQLite samples in SQL);
            # the plain-table fast path keeps the historical behaviour.
            source: Union[Table, ExecutionBackend] = (
                table
                if isinstance(table, Table) and (backend or "memory") == "memory"
                else self.engine
            )
            self.engine = SampledEngine(
                source, fraction=sample_fraction, seed=seed,
                cache_size=cache_size, use_index=use_index,
            )
        self.config = config or HBCutsConfig()
        self.ranker = ranker or EntropyRanker()
        # The pool driving parallel INDEP evaluation: an explicit one wins,
        # else whatever the backend itself runs on (e.g. a ParallelEngine's).
        self.pool = pool if pool is not None else getattr(self.engine, "pool", None)
        self._generator = HBCuts(self.config, pool=self.pool)
        # Lazily built approximate tier for advise(mode="interactive");
        # wraps a sibling so approximate runs keep private counters and
        # never touch the exact engine's cache.
        self._approx: Optional[ExecutionBackend] = None

    @property
    def table(self) -> Optional[Table]:
        """The backend's current in-memory snapshot (``None`` for pure SQL).

        A property rather than a captured reference: live backends swap
        snapshots on ingest, and :meth:`profile` must see the newest one.
        """
        return getattr(self.engine, "table", None)

    # -- live data --------------------------------------------------------------

    @property
    def data_version(self) -> Optional[int]:
        """The backend's monotonic data version (``None`` when unversioned)."""
        return getattr(self.engine, "data_version", None)

    def ingest(self, rows: Sequence[Any]) -> int:
        """Append a batch of row mappings through the backend (new version)."""
        return self.engine.ingest(rows)

    def delete_where(self, context: ContextLike) -> int:
        """Delete the rows a context selects; returns the number removed."""
        return self.engine.delete_where(self.resolve_context(context))

    # -- context handling -------------------------------------------------------

    def resolve_context(self, context: ContextLike) -> SDLQuery:
        """Turn any supported context form into an :class:`SDLQuery`.

        * ``None`` — the whole table over every column;
        * a list of column names — an unconstrained context over them;
        * an :class:`SDLQuery` — used as-is;
        * a string — parsed as SDL first, then as a SQL WHERE clause.
        """
        if context is None:
            return SDLQuery.over(self.engine.column_names)
        if isinstance(context, SDLQuery):
            return context
        if isinstance(context, str):
            return self._parse_text_context(context)
        if isinstance(context, Sequence):
            names = list(context)
            available = set(self.engine.column_names)
            unknown = [name for name in names if str(name) not in available]
            if unknown:
                raise AdvisorError(
                    f"unknown column(s) in context: {unknown}; "
                    f"available: {self.engine.column_names}"
                )
            return SDLQuery.over([str(name) for name in names])
        raise AdvisorError(f"unsupported context type: {type(context).__name__}")

    def _parse_text_context(self, text: str) -> SDLQuery:
        try:
            return parse_query(text)
        except SDLSyntaxError:
            pass
        try:
            return parse_where(text)
        except Exception as exc:
            raise AdvisorError(
                f"could not parse context {text!r} as SDL or as a SQL WHERE clause"
            ) from exc

    # -- main entry points -------------------------------------------------------

    def _advice_engine(self, mode: str) -> ExecutionBackend:
        """The engine one advise run executes against.

        ``exact`` uses the configured backend — unwrapped to its inner
        engine when the backend itself is approximate (a
        ``memory?approx=...`` spec), so refinement is always truly exact.
        ``interactive`` routes through the sketch tier: the configured
        backend if it already *is* approximate, else a lazily built
        :class:`~repro.backends.approx.ApproxEngine` over a **sibling**
        of the exact engine — private counters, private sketch cache,
        zero traffic on the exact result cache, so a later exact run is
        byte-identical to one that never went approximate.
        """
        if mode == "exact":
            if hasattr(self.engine, "take_error_bound"):
                inner = getattr(self.engine, "inner", None)
                if inner is not None:
                    return inner
            return self.engine
        if hasattr(self.engine, "take_error_bound"):
            return self.engine
        if self._approx is None:
            from repro.backends.approx import ApproxEngine
            from repro.errors import BackendError

            sibling = getattr(self.engine, "sibling", None)
            if sibling is None:
                raise AdvisorError(
                    "interactive advise requires a memory-backed engine "
                    f"(got {type(self.engine).__name__})"
                )
            try:
                self._approx = ApproxEngine(sibling())
            except BackendError as exc:
                raise AdvisorError(
                    f"interactive advise is unavailable on this backend: "
                    f"{exc.message}"
                ) from exc
        return self._approx

    def advise(
        self,
        context: ContextLike = None,
        max_answers: Optional[int] = 10,
        attributes: Optional[Sequence[str]] = None,
        mode: str = "exact",
    ) -> Advice:
        """Answer a context query with ranked segmentations.

        Parameters
        ----------
        context:
            The exploration context (see :meth:`resolve_context`).
        max_answers:
            Keep only the best ``max_answers`` segmentations (None = all).
        attributes:
            Restrict exploration to these attributes instead of every
            attribute the context mentions.
        mode:
            ``"exact"`` (default) scans; ``"interactive"`` ranks from
            merged sketches and stamps the advice ``approximate`` with
            its worst reported ``error_bound`` — the fast first answer
            an exact refinement then replaces.
        """
        if mode not in ("exact", "interactive"):
            raise AdvisorError(
                f"unknown advise mode {mode!r}; expected 'exact' or 'interactive'"
            )
        resolved = self.resolve_context(context)
        engine = self._advice_engine(mode)
        approximate = hasattr(engine, "take_error_bound")
        if approximate:
            engine.take_error_bound()  # drain bounds left by earlier runs
        operations_before = engine.counter.snapshot()
        result: HBCutsResult = self._generator.run(engine, resolved, attributes)
        ranked = self.ranker.rank(result.segmentations)
        if max_answers is not None:
            ranked = ranked[:max_answers]
        answers = [
            RankedAnswer(
                rank=position,
                segmentation=segmentation,
                scores=scores,
                score=self.ranker.score_for(segmentation, scores),
            )
            for position, (segmentation, scores) in enumerate(ranked, start=1)
        ]
        operations_after = engine.counter.snapshot()
        operations = {
            key: operations_after[key] - operations_before.get(key, 0)
            for key in operations_after
        }
        return Advice(
            context=resolved,
            answers=answers,
            trace=result.trace,
            ranker_name=self.ranker.name,
            engine_operations=operations,
            approximate=approximate,
            error_bound=engine.take_error_bound() if approximate else None,
        )

    def segment(
        self, context: ContextLike, attributes: Sequence[str]
    ) -> Segmentation:
        """Directly build one segmentation by cutting on the given attributes.

        Bypasses the dependence-driven search: the attributes are composed
        in the given order.  Useful for reproducing hand-picked answers
        such as Figure 1's ``departure_harbour × tonnage`` view.
        """
        from repro.core.cut import cut_query, cut_segmentation

        resolved = self.resolve_context(context)
        if not attributes:
            raise AdvisorError("segment() requires at least one attribute")
        segmentation = cut_query(
            self.engine,
            resolved,
            attributes[0],
            low_cardinality_threshold=self.config.low_cardinality_threshold,
            drop_empty=self.config.drop_empty,
        )
        for attribute in attributes[1:]:
            segmentation = cut_segmentation(
                self.engine,
                segmentation,
                attribute,
                low_cardinality_threshold=self.config.low_cardinality_threshold,
                drop_empty=self.config.drop_empty,
            )
        return segmentation

    def profile(self, context: ContextLike = None) -> TableProfile:
        """Statistical profile of the context's result set (CLI ``profile``).

        Backends exposing their in-memory table use the mask-based fast
        path; pure SQL backends are profiled through aggregates only.
        """
        resolved = self.resolve_context(context)
        if self.table is not None:
            return profile_table(self.table, context=resolved, engine=self.engine)
        return profile_backend(self.engine, context=resolved)

    def count(self, context: ContextLike) -> int:
        """Cardinality of a context (convenience wrapper over the engine)."""
        return self.engine.count(self.resolve_context(context))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Charles(table={self.engine.name!r}, rows={self.engine.num_rows}, "
            f"max_indep={self.config.max_indep}, max_depth={self.config.max_depth})"
        )
