"""Quality metrics for segmentations (paper, Section 3 and Proposition 1).

The paper ranks segmentations along four orthogonal criteria:

* **homogeneity** — deliberately *not* quantified (the heuristic is
  responsible for producing "good enough" groups); a cheap proxy is still
  provided for the baseline study (E9);
* **simplicity** ``P(S)`` — the maximum number of constraints among the
  segmentation's queries (lower is simpler / more legible);
* **breadth** — the number of distinct columns across the queries
  (higher is more informative);
* **entropy** ``E(S) = -Σ C(Qj) · log C(Qj)`` — grows with the number of
  queries and with how balanced they are.

Proposition 1 links the entropy of an SDL product to variable dependence:
``E(S1 × S2) = E(S1) + E(S2)`` iff the segment variables are independent.
``INDEP(S1, S2) = E(S1 × S2) / (E(S1) + E(S2))`` decreases with the degree
of dependence and drives the HB-cuts composition order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.product import product

__all__ = [
    "entropy",
    "max_entropy",
    "balance",
    "simplicity",
    "breadth",
    "cover",
    "indep",
    "indep_from_entropies",
    "homogeneity_proxy",
    "SegmentationScores",
    "score_segmentation",
]


def entropy(segmentation: Segmentation, base: Optional[float] = None) -> float:
    """``E(S) = -Σ C(Qj) · log C(Qj)`` with covers relative to the context.

    Natural logarithm by default; pass ``base=2`` for bits.  The value is
    0 for a single-piece segmentation and reaches ``log M`` for ``M``
    perfectly balanced segments (paper, Definition 4).
    """
    value = 0.0
    for cover_j in segmentation.covers:
        if cover_j <= 0.0:
            continue
        value -= cover_j * math.log(cover_j)
    if base is not None:
        value /= math.log(base)
    return value


def max_entropy(segmentation: Segmentation, base: Optional[float] = None) -> float:
    """``log M``: the entropy of a perfectly balanced M-piece segmentation."""
    pieces = sum(1 for count in segmentation.counts if count > 0)
    if pieces <= 1:
        return 0.0
    value = math.log(pieces)
    if base is not None:
        value /= math.log(base)
    return value


def balance(segmentation: Segmentation) -> float:
    """Normalised entropy ``E(S) / log M`` in ``[0, 1]`` (1 = perfectly balanced)."""
    upper = max_entropy(segmentation)
    if upper == 0.0:
        return 1.0
    return entropy(segmentation) / upper


def simplicity(segmentation: Segmentation, relative_to_context: bool = True) -> int:
    """``P(S)``: the maximum number of constraints among the queries.

    The paper measures the *complexity* of a segmentation this way and asks
    for it to be as low as possible (Principle 1).  With
    ``relative_to_context`` (the default) constraints already present in
    the context are not charged to the segmentation, since the interface
    only displays the added predicates.
    """
    context_predicates = set(segmentation.context.predicates)
    worst = 0
    for query in segmentation.queries:
        if relative_to_context:
            charge = sum(
                1
                for predicate in query.predicates
                if predicate.is_constrained and predicate not in context_predicates
            )
        else:
            charge = query.n_constraints
        worst = max(worst, charge)
    return worst


def breadth(segmentation: Segmentation) -> int:
    """The number of distinct columns across the segmentation's queries (Principle 2)."""
    return len(segmentation.attributes)


def cover(
    engine: ExecutionBackend, query: SDLQuery, context: Optional[SDLQuery] = None
) -> float:
    """The cover ``C(Q)``.

    Table-relative (``|R(Q)| / |T|``, the paper's Definition) without a
    context; context-relative otherwise (what segmentation entropy uses).
    """
    return engine.cover(query, context)


def indep_from_entropies(
    product_entropy: float, first_entropy: float, second_entropy: float
) -> float:
    """``INDEP = E(S1 × S2) / (E(S1) + E(S2))``, defined as 1.0 when the denominator is 0."""
    denominator = first_entropy + second_entropy
    if denominator <= 0.0:
        return 1.0
    return product_entropy / denominator


def indep(
    engine: ExecutionBackend,
    first: Segmentation,
    second: Segmentation,
    return_product: bool = False,
) -> float | Tuple[float, Segmentation]:
    """``INDEP(S1, S2)`` (Proposition 1), optionally returning the product.

    The quotient equals 1 for independent variables and decreases with the
    degree of dependence.
    """
    product_segmentation = product(engine, first, second, drop_empty=True)
    value = indep_from_entropies(
        entropy(product_segmentation), entropy(first), entropy(second)
    )
    if return_product:
        return value, product_segmentation
    return value


def homogeneity_proxy(engine: ExecutionBackend, segmentation: Segmentation) -> float:
    """A cheap homogeneity proxy: mean within-segment concentration.

    The paper purposely does not quantify homogeneity; this proxy exists
    only so the baseline study (E9) can report *something* comparable: for
    every segment and every cut attribute it measures how concentrated the
    attribute's distribution is inside the segment relative to the context
    (1 - normalised entropy), averaged with segment covers as weights.
    Returns 1.0 when there is nothing to measure.
    """
    attributes = segmentation.cut_attributes or segmentation.attributes
    if not attributes:
        return 1.0
    total_weight = 0.0
    accumulated = 0.0
    for segment, weight in zip(segmentation.segments, segmentation.covers):
        if segment.count == 0 or weight == 0.0:
            continue
        for attribute in attributes:
            frequencies = engine.value_frequencies(attribute, segment.query)
            distinct = len(frequencies)
            if distinct <= 1:
                concentration = 1.0
            else:
                total = sum(frequencies.values())
                segment_entropy = -sum(
                    (count / total) * math.log(count / total)
                    for count in frequencies.values()
                    if count > 0
                )
                concentration = 1.0 - segment_entropy / math.log(distinct)
            accumulated += weight * concentration
            total_weight += weight
    if total_weight == 0.0:
        return 1.0
    return accumulated / total_weight


@dataclass(frozen=True)
class SegmentationScores:
    """All quality metrics of one segmentation, bundled for ranking and reports."""

    entropy: float
    max_entropy: float
    balance: float
    simplicity: int
    breadth: int
    depth: int
    covered_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "entropy": self.entropy,
            "max_entropy": self.max_entropy,
            "balance": self.balance,
            "simplicity": float(self.simplicity),
            "breadth": float(self.breadth),
            "depth": float(self.depth),
            "covered_fraction": self.covered_fraction,
        }


def score_segmentation(segmentation: Segmentation) -> SegmentationScores:
    """Compute every count-derived metric of a segmentation in one pass."""
    covered = (
        segmentation.covered_count / segmentation.context_count
        if segmentation.context_count
        else 0.0
    )
    return SegmentationScores(
        entropy=entropy(segmentation),
        max_entropy=max_entropy(segmentation),
        balance=balance(segmentation),
        simplicity=simplicity(segmentation),
        breadth=breadth(segmentation),
        depth=segmentation.depth,
        covered_fraction=covered,
    )
