"""Lazy segmentation generation (paper, Section 5.2).

The prototype "generates all possible answers to a user query in one go,
then returns them"; the paper suggests spreading the computation instead:
produce a small set of queries quickly and create more on demand.  This
module implements that extension as a generator-driven advisor:

* the initial single-attribute cuts are emitted immediately (each is a
  ready-to-display answer);
* composed segmentations are then produced one greedy composition at a
  time, each emitted as soon as it exists.

Benchmark E10 measures the latency-to-first-answer advantage over the
eager :class:`~repro.core.advisor.Charles` facade.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AdvisorError, CannotCutError
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.compose import compose
from repro.core.cut import cut_query
from repro.core.hbcuts import HBCutsConfig
from repro.core.metrics import entropy, indep_from_entropies
from repro.core.product import product

__all__ = ["LazyAdvisor"]


class LazyAdvisor:
    """Generates segmentations incrementally, best-effort first.

    Parameters
    ----------
    engine:
        Query engine over the table to explore.
    config:
        HB-cuts parameters (the same stopping rules apply).

    Examples
    --------
    >>> advisor = LazyAdvisor(engine)                      # doctest: +SKIP
    >>> stream = advisor.stream(context)                   # doctest: +SKIP
    >>> first = next(stream)                               # fast: one cut only
    >>> more = advisor.next_batch(stream, 3)               # three more answers
    """

    def __init__(self, engine: ExecutionBackend, config: Optional[HBCutsConfig] = None):
        self.engine = engine
        self.config = config or HBCutsConfig()

    # -- streaming generation ----------------------------------------------------

    def stream(
        self,
        context: SDLQuery,
        attributes: Optional[Sequence[str]] = None,
    ) -> Iterator[Segmentation]:
        """Yield segmentations of ``context`` as they are discovered.

        The first yields are the single-attribute binary cuts (cheapest,
        available almost immediately); afterwards, each greedy composition
        is yielded as soon as it is built, until a stopping rule fires.
        """
        explored = list(attributes) if attributes is not None else list(context.attributes)
        if not explored:
            raise AdvisorError("the context mentions no attribute to explore")

        candidates: List[Segmentation] = []
        for attribute in explored:
            try:
                candidate = cut_query(
                    self.engine,
                    context,
                    attribute,
                    low_cardinality_threshold=self.config.low_cardinality_threshold,
                    drop_empty=self.config.drop_empty,
                )
            except CannotCutError:
                continue
            candidates.append(candidate)
            yield candidate

        indep_cache: Dict[frozenset, float] = {}
        while len(candidates) >= 2:
            pair, best_indep = self._most_dependent_pair(candidates, indep_cache)
            first, second = pair
            composed = compose(
                self.engine,
                first,
                second,
                low_cardinality_threshold=self.config.low_cardinality_threshold,
                drop_empty=self.config.drop_empty,
            )
            if best_indep >= self.config.max_indep or composed.depth >= self.config.max_depth:
                return
            candidates = [c for c in candidates if c is not first and c is not second]
            candidates.append(composed)
            yield composed

    def next_batch(self, stream: Iterator[Segmentation], size: int) -> List[Segmentation]:
        """Pull up to ``size`` more segmentations from a stream."""
        batch: List[Segmentation] = []
        for _ in range(size):
            try:
                batch.append(next(stream))
            except StopIteration:
                break
        return batch

    def first_answer(
        self, context: SDLQuery, attributes: Optional[Sequence[str]] = None
    ) -> Segmentation:
        """The very first segmentation available (latency-to-first-answer probe)."""
        stream = self.stream(context, attributes)
        try:
            return next(stream)
        except StopIteration:
            raise AdvisorError("no attribute of the context could be cut") from None

    def top(
        self,
        context: SDLQuery,
        count: int,
        attributes: Optional[Sequence[str]] = None,
    ) -> List[Segmentation]:
        """The best ``count`` segmentations among those generated so far.

        Generates at most ``2 * count`` candidates lazily, then keeps the
        ``count`` with the highest entropy — a bounded-effort approximation
        of the eager advisor's ranking.
        """
        stream = self.stream(context, attributes)
        produced = self.next_batch(stream, 2 * count)
        produced.sort(key=entropy, reverse=True)
        return produced[:count]

    # -- internals ------------------------------------------------------------------

    def _pair_key(self, first: Segmentation, second: Segmentation) -> frozenset:
        return frozenset((id(first), id(second)))

    def _most_dependent_pair(
        self,
        candidates: Sequence[Segmentation],
        cache: Dict[frozenset, float],
    ) -> Tuple[Tuple[Segmentation, Segmentation], float]:
        best_pair: Optional[Tuple[Segmentation, Segmentation]] = None
        best_value = float("inf")
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                first, second = candidates[i], candidates[j]
                key = self._pair_key(first, second)
                value = cache.get(key)
                if value is None:
                    product_segmentation = product(
                        self.engine, first, second, drop_empty=self.config.drop_empty
                    )
                    value = indep_from_entropies(
                        entropy(product_segmentation), entropy(first), entropy(second)
                    )
                    cache[key] = value
                if value < best_value:
                    best_value = value
                    best_pair = (first, second)
        assert best_pair is not None
        return best_pair, best_value
