"""Ranking of candidate segmentations.

The paper's three principles (simplicity, breadth, entropy) "create a
3-dimensional space to navigate or rank segmentations"; the prototype
returns its output sorted by entropy (Figure 4, ``sort(output)``).  This
module provides that default plus two generalisations used by the ablation
benches:

* :class:`EntropyRanker` — the paper's behaviour;
* :class:`WeightedRanker` — a weighted sum of normalised entropy, breadth
  and (inverse) simplicity;
* :class:`LexicographicRanker` — strict priority ordering of the criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import AdvisorError
from repro.sdl.segmentation import Segmentation
from repro.core.metrics import SegmentationScores, score_segmentation

__all__ = [
    "Ranker",
    "EntropyRanker",
    "WeightedRanker",
    "LexicographicRanker",
    "rank_segmentations",
]


class Ranker:
    """Base class: turns a segmentation's scores into a sortable key."""

    #: Human-readable name used in reports and benchmark tables.
    name = "ranker"

    def score(self, scores: SegmentationScores) -> float:
        """A single scalar score; larger is better."""
        raise NotImplementedError

    def score_for(self, segmentation: Segmentation, scores: SegmentationScores) -> float:
        """Score with access to the segmentation itself.

        The default delegates to :meth:`score`; rankers that need more than
        the count-derived metrics (for example the surprise ranker, which
        issues extra queries) override this instead.
        """
        return self.score(scores)

    def sort_key(self, scores: SegmentationScores) -> Tuple:
        """Sort key (descending); defaults to the scalar score."""
        return (self.score(scores),)

    def rank(
        self, segmentations: Sequence[Segmentation]
    ) -> List[Tuple[Segmentation, SegmentationScores]]:
        """Sort segmentations best-first, pairing each with its scores."""
        scored = [(segmentation, score_segmentation(segmentation)) for segmentation in segmentations]
        scored.sort(key=lambda pair: self.sort_key(pair[1]), reverse=True)
        return scored


class EntropyRanker(Ranker):
    """The paper's ranking: order candidates by decreasing entropy."""

    name = "entropy"

    def score(self, scores: SegmentationScores) -> float:
        return scores.entropy


@dataclass
class WeightedRanker(Ranker):
    """Weighted combination of the three principles.

    The entropy term is normalised by ``log(max_depth)`` so the three terms
    are commensurate; simplicity enters inversely (fewer constraints is
    better), scaled by ``1 / (1 + P(S))``.
    """

    entropy_weight: float = 1.0
    breadth_weight: float = 0.5
    simplicity_weight: float = 0.5
    max_depth: int = 12

    name = "weighted"

    def __post_init__(self) -> None:
        if min(self.entropy_weight, self.breadth_weight, self.simplicity_weight) < 0:
            raise AdvisorError("ranking weights must be non-negative")
        if self.max_depth < 2:
            raise AdvisorError("max_depth must be at least 2")

    def score(self, scores: SegmentationScores) -> float:
        import math

        normalised_entropy = (
            scores.entropy / math.log(self.max_depth) if self.max_depth > 1 else 0.0
        )
        breadth_term = scores.breadth
        simplicity_term = 1.0 / (1.0 + scores.simplicity)
        return (
            self.entropy_weight * normalised_entropy
            + self.breadth_weight * breadth_term
            + self.simplicity_weight * simplicity_term
        )


@dataclass
class LexicographicRanker(Ranker):
    """Strict priority ordering over the criteria.

    ``priorities`` is a sequence of criterion names among ``"entropy"``,
    ``"breadth"``, ``"simplicity"`` and ``"balance"``; earlier entries
    dominate later ones.  Simplicity is compared inverted so that fewer
    constraints ranks higher, consistently with "larger key sorts first".
    """

    priorities: Tuple[str, ...] = ("entropy", "breadth", "simplicity")

    name = "lexicographic"

    _VALID = ("entropy", "breadth", "simplicity", "balance")

    def __post_init__(self) -> None:
        unknown = [p for p in self.priorities if p not in self._VALID]
        if unknown:
            raise AdvisorError(f"unknown ranking criteria: {unknown}")
        if not self.priorities:
            raise AdvisorError("at least one ranking criterion is required")

    def score(self, scores: SegmentationScores) -> float:
        return self.sort_key(scores)[0]

    def sort_key(self, scores: SegmentationScores) -> Tuple:
        key = []
        for criterion in self.priorities:
            if criterion == "entropy":
                key.append(scores.entropy)
            elif criterion == "breadth":
                key.append(float(scores.breadth))
            elif criterion == "balance":
                key.append(scores.balance)
            else:  # simplicity: fewer constraints is better
                key.append(-float(scores.simplicity))
        return tuple(key)


def rank_segmentations(
    segmentations: Sequence[Segmentation], ranker: Ranker | None = None
) -> List[Tuple[Segmentation, SegmentationScores]]:
    """Rank segmentations with the given ranker (entropy by default)."""
    return (ranker or EntropyRanker()).rank(segmentations)
