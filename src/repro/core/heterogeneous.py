"""Heterogeneous segmentations (paper, Section 5.2).

HB-cuts relies on "a heavy restriction: all queries in a segmentation are
based on the same attributes".  The paper suggests lifting it — "we could
cut each piece of a segmentation on a potentially different attribute" —
and notes that the resulting search-space explosion "may be tackled with
randomized algorithms".

This module implements that extension in two flavours:

* :func:`greedy_heterogeneous` — at every step, pick the (piece, attribute)
  pair whose cut increases the segmentation's entropy the most, until the
  depth bound is reached or no piece can be cut.  Pieces are free to split
  on different attributes.
* :func:`randomized_heterogeneous` — the randomized variant: sample a few
  (piece, attribute) candidates per step instead of scoring all of them,
  trading answer quality for a bounded number of database operations.

Both return ordinary :class:`~repro.sdl.segmentation.Segmentation` objects
(still valid partitions), so every metric, renderer and validator applies
unchanged.  Benchmark E11 compares them against plain HB-cuts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CannotCutError, SegmentationError
from repro.sdl.query import SDLQuery
from repro.sdl.segmentation import Segment, Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.cut import cut_query
from repro.core.median import DEFAULT_LOW_CARDINALITY_THRESHOLD

__all__ = [
    "HeterogeneousTrace",
    "greedy_heterogeneous",
    "randomized_heterogeneous",
]


@dataclass
class HeterogeneousTrace:
    """What a heterogeneous run did: one entry per accepted cut.

    Attributes
    ----------
    steps:
        ``(piece_index, attribute, entropy_after)`` for each accepted cut.
    candidate_evaluations:
        Number of (piece, attribute) cuts that were scored.
    """

    steps: List[Tuple[int, str, float]]
    candidate_evaluations: int


def _segmentation_entropy(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total <= 0:
        return 0.0
    value = 0.0
    for count in counts:
        if count <= 0:
            continue
        p = count / total
        value -= p * math.log(p)
    return value


def _try_cut(
    engine: ExecutionBackend,
    query: SDLQuery,
    attribute: str,
    low_cardinality_threshold: int,
) -> Optional[List[Segment]]:
    """The two pieces of a cut, or ``None`` when the cut is undefined."""
    try:
        piece_segmentation = cut_query(
            engine,
            query,
            attribute,
            low_cardinality_threshold=low_cardinality_threshold,
        )
    except CannotCutError:
        return None
    return list(piece_segmentation.segments)


def _apply_best_step(
    segments: List[Segment],
    replacements: Tuple[int, List[Segment]],
) -> List[Segment]:
    index, new_pieces = replacements
    return segments[:index] + new_pieces + segments[index + 1 :]


def greedy_heterogeneous(
    engine: ExecutionBackend,
    context: SDLQuery,
    attributes: Optional[Sequence[str]] = None,
    max_depth: int = 12,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
    return_trace: bool = False,
) -> Segmentation | Tuple[Segmentation, HeterogeneousTrace]:
    """Grow a segmentation by always taking the entropy-maximising cut.

    Every step scores *every* (piece, attribute) pair — exhaustive over the
    per-step choices, hence expensive, but it shows the quality ceiling of
    heterogeneous segmentations.

    Raises
    ------
    SegmentationError
        If no attribute of the context can be cut at all.
    """
    explored = list(attributes) if attributes is not None else list(context.attributes)
    if not explored:
        raise SegmentationError("the context mentions no attribute to explore")
    context_count = engine.count(context)
    segments: List[Segment] = [Segment(context, context_count)]
    steps: List[Tuple[int, str, float]] = []
    evaluations = 0

    while len(segments) < max_depth:
        best: Optional[Tuple[float, int, str, List[Segment]]] = None
        for index, segment in enumerate(segments):
            for attribute in explored:
                pieces = _try_cut(engine, segment.query, attribute, low_cardinality_threshold)
                evaluations += 1
                if pieces is None:
                    continue
                candidate_counts = (
                    [s.count for s in segments[:index]]
                    + [piece.count for piece in pieces]
                    + [s.count for s in segments[index + 1 :]]
                )
                candidate_entropy = _segmentation_entropy(candidate_counts)
                if best is None or candidate_entropy > best[0]:
                    best = (candidate_entropy, index, attribute, pieces)
        if best is None:
            break
        entropy_after, index, attribute, pieces = best
        segments = _apply_best_step(segments, (index, pieces))
        steps.append((index, attribute, entropy_after))

    if len(segments) == 1:
        raise SegmentationError("no attribute of the context could be cut")
    cut_attributes = tuple(dict.fromkeys(attribute for _, attribute, _ in steps))
    segmentation = Segmentation(
        context=context,
        segments=segments,
        context_count=context_count,
        cut_attributes=cut_attributes,
    )
    if return_trace:
        return segmentation, HeterogeneousTrace(steps=steps, candidate_evaluations=evaluations)
    return segmentation


def randomized_heterogeneous(
    engine: ExecutionBackend,
    context: SDLQuery,
    attributes: Optional[Sequence[str]] = None,
    max_depth: int = 12,
    samples_per_step: int = 3,
    seed: Optional[int] = None,
    low_cardinality_threshold: int = DEFAULT_LOW_CARDINALITY_THRESHOLD,
    return_trace: bool = False,
) -> Segmentation | Tuple[Segmentation, HeterogeneousTrace]:
    """The randomized variant: sample a few candidate cuts per step.

    Each step draws ``samples_per_step`` (piece, attribute) pairs — pieces
    weighted by their cover, so large pieces are refined first — scores
    only those, and applies the best.  The number of candidate evaluations
    per step is therefore constant instead of ``pieces × attributes``.

    Raises
    ------
    SegmentationError
        If no attribute of the context can be cut at all.
    """
    if samples_per_step < 1:
        raise SegmentationError("samples_per_step must be at least 1")
    explored = list(attributes) if attributes is not None else list(context.attributes)
    if not explored:
        raise SegmentationError("the context mentions no attribute to explore")
    rng = np.random.default_rng(seed)
    context_count = engine.count(context)
    segments: List[Segment] = [Segment(context, context_count)]
    steps: List[Tuple[int, str, float]] = []
    evaluations = 0
    stalled_rounds = 0

    while len(segments) < max_depth and stalled_rounds < 3:
        weights = np.array([max(segment.count, 1) for segment in segments], dtype=float)
        weights /= weights.sum()
        best: Optional[Tuple[float, int, str, List[Segment]]] = None
        for _ in range(samples_per_step):
            index = int(rng.choice(len(segments), p=weights))
            attribute = explored[int(rng.integers(0, len(explored)))]
            pieces = _try_cut(
                engine, segments[index].query, attribute, low_cardinality_threshold
            )
            evaluations += 1
            if pieces is None:
                continue
            candidate_counts = (
                [s.count for s in segments[:index]]
                + [piece.count for piece in pieces]
                + [s.count for s in segments[index + 1 :]]
            )
            candidate_entropy = _segmentation_entropy(candidate_counts)
            if best is None or candidate_entropy > best[0]:
                best = (candidate_entropy, index, attribute, pieces)
        if best is None:
            stalled_rounds += 1
            continue
        stalled_rounds = 0
        entropy_after, index, attribute, pieces = best
        segments = _apply_best_step(segments, (index, pieces))
        steps.append((index, attribute, entropy_after))

    if len(segments) == 1:
        raise SegmentationError("no attribute of the context could be cut")
    cut_attributes = tuple(dict.fromkeys(attribute for _, attribute, _ in steps))
    segmentation = Segmentation(
        context=context,
        segments=segments,
        context_count=context_count,
        cut_attributes=cut_attributes,
    )
    if return_trace:
        return segmentation, HeterogeneousTrace(steps=steps, candidate_evaluations=evaluations)
    return segmentation
