"""Dependence estimation between segmentations.

HB-cuts composes the *most dependent* pair of candidate segmentations at
every iteration, and stops when the remaining candidates look independent.
The paper uses the entropy quotient ``INDEP`` with a fixed threshold of
0.99, and mentions that the threshold could "possibly" be set through
statistical hypothesis testing.  This module provides both:

* information-theoretic measures computed from the product contingency
  table (mutual information, normalised INDEP);
* a chi-square (and G-test) independence test with p-values, plus Cramér's
  V as an effect size, usable as an alternative stopping rule (ablation E7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.sdl.segmentation import Segmentation
from repro.backends.base import ExecutionBackend
from repro.core.product import product_counts

__all__ = [
    "contingency_table",
    "mutual_information",
    "indep_from_table",
    "cramers_v",
    "chi_square_test",
    "g_test",
    "DependenceReport",
    "analyse_dependence",
]


def contingency_table(
    engine: ExecutionBackend, first: Segmentation, second: Segmentation
) -> np.ndarray:
    """The ``K × L`` contingency table of two segmentations of the same context."""
    return np.asarray(product_counts(engine, first, second), dtype=np.float64)


def _entropy_from_probabilities(probabilities: np.ndarray) -> float:
    positive = probabilities[probabilities > 0]
    return float(-(positive * np.log(positive)).sum())


def indep_from_table(table: np.ndarray) -> float:
    """``INDEP`` computed directly from a contingency table.

    Equivalent to ``E(S1 × S2) / (E(S1) + E(S2))`` where the entropies are
    taken over the table's joint and marginal distributions.
    """
    table = np.asarray(table, dtype=np.float64)
    total = table.sum()
    if total <= 0:
        return 1.0
    joint = table / total
    joint_entropy = _entropy_from_probabilities(joint.ravel())
    row_entropy = _entropy_from_probabilities(joint.sum(axis=1))
    column_entropy = _entropy_from_probabilities(joint.sum(axis=0))
    denominator = row_entropy + column_entropy
    if denominator <= 0:
        return 1.0
    return joint_entropy / denominator


def mutual_information(table: np.ndarray) -> float:
    """Mutual information I(X; Y) (nats) of the contingency table.

    Related to INDEP by ``I = E(S1) + E(S2) - E(S1 × S2)``, i.e.
    ``INDEP = 1 - I / (E(S1) + E(S2))`` when the denominator is positive.
    """
    table = np.asarray(table, dtype=np.float64)
    total = table.sum()
    if total <= 0:
        return 0.0
    joint = table / total
    joint_entropy = _entropy_from_probabilities(joint.ravel())
    row_entropy = _entropy_from_probabilities(joint.sum(axis=1))
    column_entropy = _entropy_from_probabilities(joint.sum(axis=0))
    return max(0.0, row_entropy + column_entropy - joint_entropy)


def _expected_counts(table: np.ndarray) -> np.ndarray:
    total = table.sum()
    if total <= 0:
        return np.zeros_like(table)
    row_sums = table.sum(axis=1, keepdims=True)
    column_sums = table.sum(axis=0, keepdims=True)
    return row_sums @ column_sums / total


def chi_square_test(table: np.ndarray) -> Tuple[float, float, int]:
    """Pearson chi-square independence test.

    Returns ``(statistic, p_value, degrees_of_freedom)``.  Cells with zero
    expected counts are skipped (their observed counts are necessarily
    zero as well).
    """
    table = np.asarray(table, dtype=np.float64)
    expected = _expected_counts(table)
    mask = expected > 0
    statistic = float(((table[mask] - expected[mask]) ** 2 / expected[mask]).sum())
    rows = int((table.sum(axis=1) > 0).sum())
    columns = int((table.sum(axis=0) > 0).sum())
    dof = max(1, (rows - 1) * (columns - 1))
    p_value = float(stats.chi2.sf(statistic, dof))
    return statistic, p_value, dof


def g_test(table: np.ndarray) -> Tuple[float, float, int]:
    """Likelihood-ratio (G) independence test; same return shape as the chi-square."""
    table = np.asarray(table, dtype=np.float64)
    expected = _expected_counts(table)
    mask = (table > 0) & (expected > 0)
    statistic = float(2.0 * (table[mask] * np.log(table[mask] / expected[mask])).sum())
    rows = int((table.sum(axis=1) > 0).sum())
    columns = int((table.sum(axis=0) > 0).sum())
    dof = max(1, (rows - 1) * (columns - 1))
    p_value = float(stats.chi2.sf(statistic, dof))
    return statistic, p_value, dof


def cramers_v(table: np.ndarray) -> float:
    """Cramér's V effect size in ``[0, 1]`` (0 = independent)."""
    table = np.asarray(table, dtype=np.float64)
    total = table.sum()
    if total <= 0:
        return 0.0
    statistic, _, _ = chi_square_test(table)
    rows = int((table.sum(axis=1) > 0).sum())
    columns = int((table.sum(axis=0) > 0).sum())
    smallest_side = min(rows - 1, columns - 1)
    if smallest_side <= 0:
        return 0.0
    return float(math.sqrt(statistic / (total * smallest_side)))


@dataclass(frozen=True)
class DependenceReport:
    """Every dependence measure for one pair of segmentations."""

    indep: float
    mutual_information: float
    chi_square: float
    p_value: float
    degrees_of_freedom: int
    cramers_v: float

    def is_dependent(self, alpha: float = 0.01) -> bool:
        """Statistical-test verdict: reject independence at level ``alpha``."""
        return self.p_value < alpha


def analyse_dependence(
    engine: ExecutionBackend, first: Segmentation, second: Segmentation
) -> DependenceReport:
    """Compute the full dependence report for a pair of segmentations."""
    table = contingency_table(engine, first, second)
    statistic, p_value, dof = chi_square_test(table)
    return DependenceReport(
        indep=indep_from_table(table),
        mutual_information=mutual_information(table),
        chi_square=statistic,
        p_value=p_value,
        degrees_of_freedom=dof,
        cramers_v=cramers_v(table),
    )


def pairwise_indep_matrix(
    engine: ExecutionBackend,
    segmentations: Sequence[Segmentation],
    pool=None,
) -> List[List[float]]:
    """Symmetric matrix of INDEP values over a list of segmentations.

    Diagonal entries are set to 1.0 by convention.  Used by examples and
    the E4 benchmark to visualise the dependency structure of a dataset.

    The pairs are independent of one another, so an optional
    :class:`~repro.backends.pool.ExecutorPool` evaluates them
    concurrently; results are placed by index, making the matrix
    identical for every worker count.
    """
    size = len(segmentations)
    matrix = [[1.0] * size for _ in range(size)]
    pairs = [(i, j) for i in range(size) for j in range(i + 1, size)]

    def evaluate(pair: Tuple[int, int]) -> float:
        i, j = pair
        return indep_from_table(
            contingency_table(engine, segmentations[i], segmentations[j])
        )

    values = pool.map(evaluate, pairs) if pool is not None else [
        evaluate(pair) for pair in pairs
    ]
    for (i, j), value in zip(pairs, values):
        matrix[i][j] = value
        matrix[j][i] = value
    return matrix
